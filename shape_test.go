package repro

import (
	"fmt"
	"testing"

	"repro/internal/keys"
)

// The paper-shape regression suite. Each check encodes one qualitative
// target from DESIGN.md §3 / EXPERIMENTS.md as an executable assertion
// on a reduced grid, parameterized by an experiment modifier so the
// ablation test below can prove the checks actually depend on the
// memory-system model: under the `sweep -kind flatmem` configuration
// (Experiment.FlatMemory — uniform memory, no coherence) at least one
// target must demonstrably fail, guarding against the paper's effects
// silently disappearing from the simulator.

// shapeCheck is one named, self-contained shape target.
type shapeCheck struct {
	name  string
	check func(mod func(*Experiment)) error
}

// shapeRun executes one experiment with the modifier applied.
func shapeRun(e Experiment, mod func(*Experiment)) (*Outcome, error) {
	if e.Dist == 0 {
		e.Dist = keys.Gauss
	}
	if e.Radix == 0 {
		e.Radix = 8
	}
	mod(&e)
	return Run(e)
}

// shapeChecks is the suite. Grid kept small: classes 1M-16M (scaled),
// 16/32 processors.
var shapeChecks = []shapeCheck{
	{
		// Figure 3 / Table 3: SHMEM is the best large-class radix model;
		// MPI trails it (higher SYNC from send/receive handshakes).
		name: "radix SHMEM <= MPI at the 16M class",
		check: func(mod func(*Experiment)) error {
			n := SizeClasses[2].ScaledN
			shm, err := shapeRun(Experiment{Algorithm: Radix, Model: SHMEM, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			mp, err := shapeRun(Experiment{Algorithm: Radix, Model: MPI, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			if shm.TimeNs > mp.TimeNs {
				return fmt.Errorf("SHMEM %.0fns > MPI %.0fns", shm.TimeNs, mp.TimeNs)
			}
			return nil
		},
	},
	{
		// Figure 1 / §4.2: the authors' direct-copy MPI beats the staged
		// vendor library for radix sort — by a wide margin.
		name: "direct MPI faster than staged for radix",
		check: func(mod func(*Experiment)) error {
			n := SizeClasses[1].ScaledN
			direct, err := shapeRun(Experiment{Algorithm: Radix, Model: MPI, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			staged, err := shapeRun(Experiment{Algorithm: Radix, Model: MPISGI, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			if direct.TimeNs >= staged.TimeNs {
				return fmt.Errorf("direct %.0fns >= staged %.0fns", direct.TimeNs, staged.TimeNs)
			}
			return nil
		},
	},
	{
		// §4.4: below the keys/proc crossover (paper 64K, scaled 4K),
		// sample sort beats radix sort; above it, radix wins. Each
		// algorithm competes at its best model+radix on the reduced grid.
		name: "sample beats radix below the keys/proc crossover",
		check: func(mod func(*Experiment)) error {
			bestOf := func(alg Algorithm, n, procs int) (float64, error) {
				best := -1.0
				for _, mo := range Models(alg) {
					if mo == MPISGI {
						continue
					}
					for _, r := range []int{8, 11} {
						out, err := shapeRun(Experiment{Algorithm: alg, Model: mo, N: n, Procs: procs, Radix: r}, mod)
						if err != nil {
							return 0, err
						}
						if best < 0 || out.TimeNs < best {
							best = out.TimeNs
						}
					}
				}
				return best, nil
			}
			// 1M class at 32P: 2K keys/proc — sample territory.
			small := SizeClasses[0].ScaledN
			radixSmall, err := bestOf(Radix, small, 32)
			if err != nil {
				return err
			}
			sampleSmall, err := bestOf(Sample, small, 32)
			if err != nil {
				return err
			}
			if sampleSmall >= radixSmall {
				return fmt.Errorf("2K keys/proc: sample %.0fns >= radix %.0fns", sampleSmall, radixSmall)
			}
			// 16M class at 16P: 64K keys/proc — radix territory.
			big := SizeClasses[2].ScaledN
			radixBig, err := bestOf(Radix, big, 16)
			if err != nil {
				return err
			}
			sampleBig, err := bestOf(Sample, big, 16)
			if err != nil {
				return err
			}
			if radixBig >= sampleBig {
				return fmt.Errorf("64K keys/proc: radix %.0fns >= sample %.0fns", radixBig, sampleBig)
			}
			return nil
		},
	},
	{
		// Beyond-paper PSRS target (DESIGN.md §11): like the radix sorts,
		// PSRS's SHMEM program is at least as fast as its MPI program at
		// the large class — one-sided puts into the symmetric receive
		// buffers avoid MPI's per-pair send/receive handshakes.
		name: "psrs SHMEM <= MPI at the 16M class",
		check: func(mod func(*Experiment)) error {
			n := SizeClasses[2].ScaledN
			shm, err := shapeRun(Experiment{Algorithm: Psrs, Model: SHMEM, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			mp, err := shapeRun(Experiment{Algorithm: Psrs, Model: MPI, N: n, Procs: 16}, mod)
			if err != nil {
				return err
			}
			if shm.TimeNs > mp.TimeNs {
				return fmt.Errorf("SHMEM %.0fns > MPI %.0fns", shm.TimeNs, mp.TimeNs)
			}
			return nil
		},
	},
	{
		// Beyond-paper PSRS target (DESIGN.md §11): PSRS shifts the
		// sampling sorts' keys/proc crossover against radix (§4.4). The
		// multiway merge is cheaper than sample sort's second local sort,
		// so PSRS beats sample sort on both sides of the crossover, and at
		// 4K keys/proc — where sample sort has already lost to radix —
		// PSRS still wins. Above the crossover radix overtakes PSRS too.
		name: "psrs outlasts sample at the keys/proc crossover",
		check: func(mod func(*Experiment)) error {
			bestOf := func(alg Algorithm, n, procs int) (float64, error) {
				best := -1.0
				for _, mo := range Models(alg) {
					if mo == MPISGI {
						continue
					}
					for _, r := range []int{8, 11} {
						out, err := shapeRun(Experiment{Algorithm: alg, Model: mo, N: n, Procs: procs, Radix: r}, mod)
						if err != nil {
							return 0, err
						}
						if best < 0 || out.TimeNs < best {
							best = out.TimeNs
						}
					}
				}
				return best, nil
			}
			// 1M class at 16P: 4K keys/proc — the band where regular
			// sampling is the only sampling sort still ahead of radix.
			mid := SizeClasses[0].ScaledN
			psrsMid, err := bestOf(Psrs, mid, 16)
			if err != nil {
				return err
			}
			sampleMid, err := bestOf(Sample, mid, 16)
			if err != nil {
				return err
			}
			radixMid, err := bestOf(Radix, mid, 16)
			if err != nil {
				return err
			}
			if psrsMid >= sampleMid {
				return fmt.Errorf("4K keys/proc: psrs %.0fns >= sample %.0fns", psrsMid, sampleMid)
			}
			if psrsMid >= radixMid {
				return fmt.Errorf("4K keys/proc: psrs %.0fns >= radix %.0fns", psrsMid, radixMid)
			}
			if sampleMid < radixMid {
				return fmt.Errorf("4K keys/proc: sample %.0fns < radix %.0fns (sample should have crossed already)", sampleMid, radixMid)
			}
			// 16M class at 16P: 64K keys/proc — radix overtakes PSRS too,
			// but PSRS keeps its margin over sample sort.
			big := SizeClasses[2].ScaledN
			psrsBig, err := bestOf(Psrs, big, 16)
			if err != nil {
				return err
			}
			sampleBig, err := bestOf(Sample, big, 16)
			if err != nil {
				return err
			}
			radixBig, err := bestOf(Radix, big, 16)
			if err != nil {
				return err
			}
			if psrsBig >= sampleBig {
				return fmt.Errorf("64K keys/proc: psrs %.0fns >= sample %.0fns", psrsBig, sampleBig)
			}
			if radixBig >= psrsBig {
				return fmt.Errorf("64K keys/proc: radix %.0fns >= psrs %.0fns", radixBig, psrsBig)
			}
			return nil
		},
	},
	{
		// Beyond-paper interconnect target (DESIGN.md §12), gated on the
		// figtopo grid: on the two-tier chiplet NUMA the CC-SAS vs MPI gap
		// at 64 procs *narrows* relative to the hypercube. The naive
		// expectation is the opposite — fine-grained coherent accesses
		// should suffer most on an expensive inter-package link — but the
		// MPI radix exchange ships the full key volume through explicit
		// copies and pays the inter-package latency on every transferred
		// line, while the CC-SAS program's reads are partially cached and
		// partially package-local. So explicit message passing loses part
		// of its edge when the network gets lumpy, and the simulated
		// CC-SAS/MPI time ratio drops on numa2. Strict inequality: under
		// the flatmem ablation topology is priced uniformly, both ratios
		// coincide exactly, and this target fails — as it must.
		name: "numa2 narrows the CC-SAS vs MPI gap at 64 procs",
		check: func(mod func(*Experiment)) error {
			n := SizeClasses[1].ScaledN
			ratio := func(topo string) (float64, error) {
				cc, err := shapeRun(Experiment{Algorithm: Radix, Model: CCSAS, N: n, Procs: 64, Topo: topo}, mod)
				if err != nil {
					return 0, err
				}
				mp, err := shapeRun(Experiment{Algorithm: Radix, Model: MPI, N: n, Procs: 64, Topo: topo}, mod)
				if err != nil {
					return 0, err
				}
				return cc.TimeNs / mp.TimeNs, nil
			}
			cube, err := ratio("")
			if err != nil {
				return err
			}
			numa, err := ratio("numa2")
			if err != nil {
				return err
			}
			if numa >= cube {
				return fmt.Errorf("CC-SAS/MPI ratio on numa2 %.4f >= hypercube %.4f", numa, cube)
			}
			return nil
		},
	},
	{
		// Figure 4: the original scattered-write CC-SAS radix is
		// MEM-dominated at the largest class of the reduced grid — its
		// memory stall time exceeds both BUSY and SYNC. Asserted on the
		// new trace metrics.
		name: "original CC-SAS radix MEM-dominated at scale",
		check: func(mod func(*Experiment)) error {
			n := SizeClasses[2].ScaledN
			e := Experiment{Algorithm: Radix, Model: CCSAS, N: n, Procs: 16, Trace: true}
			out, err := shapeRun(e, mod)
			if err != nil {
				return err
			}
			tr := out.Trace()
			if tr == nil {
				return fmt.Errorf("no trace attached")
			}
			m := tr.Metrics()
			mem := m["breakdown.lmem_ns"] + m["breakdown.rmem_ns"]
			busy := m["breakdown.busy_ns"]
			sync := m["breakdown.sync_ns"]
			if mem <= busy {
				return fmt.Errorf("MEM %.0fns <= BUSY %.0fns", mem, busy)
			}
			if mem <= sync {
				return fmt.Errorf("MEM %.0fns <= SYNC %.0fns", mem, sync)
			}
			return nil
		},
	},
	{
		// Adversarial-workload target (DESIGN.md §14): the
		// splitter-defeating distribution at 64 procs at least doubles
		// sample sort's receive imbalance (max/mean keys per processor,
		// read off the partition.* trace metrics) over radix sort's,
		// which stays exactly flat — radix redistributes into the blocked
		// layout no matter what the keys look like. Two regimes:
		//
		//  - SampleSize 16 < Procs: the splitter pool has fewer than one
		//    rank per destination, so the attack (and any coarse
		//    distribution) drives the imbalance to ~P/(S+1): 3.75 here.
		//  - Default SampleSize 128 >= Procs: regular-position rank
		//    statistics cap ANY adversary at (S+P)/(S+1) — each
		//    destination absorbs at most one hidden inter-sample gap for
		//    free — and the attack lands on that cap exactly (1.4884 at
		//    S=128, P=64). Both sides are asserted: the attack must beat
		//    1.45x flat, and must not beat the cap (the sampler's
		//    worst case is bounded, which is the paper's argument for
		//    sample sort being safe at S >> P).
		//
		// Teeth: the straggler partition must also show up in the memory
		// system — the worst processor's remote stall time well above the
		// mean — which the flatmem ablation erases (CC-SAS remote misses
		// are all priced local, RMEM = 0).
		name: "adversarial doubles sample imbalance over radix at 64 procs",
		check: func(mod func(*Experiment)) error {
			imb := func(alg Algorithm, sampleSize int) (float64, []float64, error) {
				e := Experiment{
					Algorithm: alg, Model: CCSAS, N: 1 << 18, Procs: 64,
					Dist: keys.Adversarial, SampleSize: sampleSize, Seed: 1, Trace: true,
				}
				out, err := shapeRun(e, mod)
				if err != nil {
					return 0, nil, err
				}
				var rmem []float64
				for _, b := range out.Breakdowns() {
					rmem = append(rmem, b.RMem)
				}
				return out.Trace().Metric("partition.imbalance"), rmem, nil
			}
			sample16, rmem16, err := imb(Sample, 16)
			if err != nil {
				return err
			}
			radix16, _, err := imb(Radix, 16)
			if err != nil {
				return err
			}
			if radix16 > 1.01 {
				return fmt.Errorf("radix imbalance %.4f not flat", radix16)
			}
			if sample16 < 2*radix16 {
				return fmt.Errorf("S<P regime: sample imbalance %.4f < 2x radix %.4f", sample16, radix16)
			}
			sampleDef, _, err := imb(Sample, 0)
			if err != nil {
				return err
			}
			radixDef, _, err := imb(Radix, 0)
			if err != nil {
				return err
			}
			if sampleDef < 1.45*radixDef {
				return fmt.Errorf("default sampler: sample imbalance %.4f < 1.45x radix %.4f", sampleDef, radixDef)
			}
			// (S+P)/(S+1) = 192/129 = 1.4884: no adversary can exceed it.
			if sampleDef > 1.55 {
				return fmt.Errorf("default sampler: imbalance %.4f exceeds the (S+P)/(S+1) cap", sampleDef)
			}
			var maxR, sumR float64
			for _, r := range rmem16 {
				sumR += r
				if r > maxR {
					maxR = r
				}
			}
			if meanR := sumR / float64(len(rmem16)); maxR <= 1.5*meanR {
				return fmt.Errorf("straggler invisible in RMEM: max %.0fns <= 1.5x mean %.0fns", maxR, meanR)
			}
			return nil
		},
	},
	{
		// Adversarial-workload target (DESIGN.md §14): under Zipf skew,
		// PSRS's regular sampling (P-1 splitters from P*(P-1) evenly
		// spaced local ranks) keeps its theoretical <= 2x partition bound
		// while plain sample sort's random-position splitters break it at
		// the same cell — regular sampling is the better splitter
		// selector under skew, the classic Shi & Schaeffer result.
		//
		// Teeth: sample sort's oversized partition must cost real remote
		// traffic on the straggler (max RMEM above the mean), which the
		// flatmem ablation erases.
		name: "psrs holds its 2x partition bound under zipf where sample breaks it",
		check: func(mod func(*Experiment)) error {
			imb := func(alg Algorithm) (float64, []float64, error) {
				e := Experiment{
					Algorithm: alg, Model: CCSAS, N: 1 << 18, Procs: 64,
					Dist: keys.Zipf, Seed: 1, Trace: true,
				}
				out, err := shapeRun(e, mod)
				if err != nil {
					return 0, nil, err
				}
				var rmem []float64
				for _, b := range out.Breakdowns() {
					rmem = append(rmem, b.RMem)
				}
				return out.Trace().Metric("partition.imbalance"), rmem, nil
			}
			psrs, _, err := imb(Psrs)
			if err != nil {
				return err
			}
			sample, rmem, err := imb(Sample)
			if err != nil {
				return err
			}
			if psrs > 2.0 {
				return fmt.Errorf("psrs imbalance %.4f breaks the 2x regular-sampling bound", psrs)
			}
			if sample <= 2.0 {
				return fmt.Errorf("sample imbalance %.4f unexpectedly within 2x", sample)
			}
			if psrs >= sample {
				return fmt.Errorf("psrs imbalance %.4f >= sample %.4f", psrs, sample)
			}
			var maxR, sumR float64
			for _, r := range rmem {
				sumR += r
				if r > maxR {
					maxR = r
				}
			}
			if meanR := sumR / float64(len(rmem)); maxR <= 1.2*meanR {
				return fmt.Errorf("straggler invisible in RMEM: max %.0fns <= 1.2x mean %.0fns", maxR, meanR)
			}
			return nil
		},
	},
}

// TestShapeTargets runs the full suite on the real machine model: every
// target must hold.
func TestShapeTargets(t *testing.T) {
	for _, sc := range shapeChecks {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			if err := sc.check(func(*Experiment) {}); err != nil {
				t.Errorf("shape target violated: %v", err)
			}
		})
	}
}

// TestShapeTargetsFailUnderFlatMemory proves the suite has teeth: under
// the flat-memory ablation (`sweep -kind flatmem`: uniform miss cost, no
// coherence protocol, no NUMA) at least one paper-shape target must
// fail. If everything still passes, the shape suite is not actually
// sensitive to the memory-system effects the paper is about.
func TestShapeTargetsFailUnderFlatMemory(t *testing.T) {
	flat := func(e *Experiment) { e.FlatMemory = true }
	var failed []string
	for _, sc := range shapeChecks {
		if err := sc.check(flat); err != nil {
			failed = append(failed, fmt.Sprintf("%s (%v)", sc.name, err))
		}
	}
	if len(failed) == 0 {
		t.Fatal("every shape target still passes under the flatmem ablation; the suite does not depend on the memory model")
	}
	t.Logf("flatmem ablation breaks %d/%d shape targets: %v", len(failed), len(shapeChecks), failed)
}

// TestAdversarialShapeTargetsHaveTeeth pins the ablation sensitivity of
// the two adversarial-workload targets individually: their RMEM
// straggler clauses must each fail under the flatmem ablation (CC-SAS
// remote stalls go to exactly zero there), not just the suite as a
// whole.
func TestAdversarialShapeTargetsHaveTeeth(t *testing.T) {
	flat := func(e *Experiment) { e.FlatMemory = true }
	for _, name := range []string{
		"adversarial doubles sample imbalance over radix at 64 procs",
		"psrs holds its 2x partition bound under zipf where sample breaks it",
	} {
		found := false
		for _, sc := range shapeChecks {
			if sc.name != name {
				continue
			}
			found = true
			if err := sc.check(flat); err == nil {
				t.Errorf("%s: still passes under flatmem; RMEM teeth missing", name)
			} else {
				t.Logf("%s: flatmem breaks it as intended: %v", name, err)
			}
		}
		if !found {
			t.Errorf("shape check %q not found", name)
		}
	}
}
