package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestSimdLoad is the CI load test (vegeta-free, run under -race): it
// drives ≥1000 concurrent in-flight POST /v1/run requests spread over a
// small set of unique configurations and asserts the serving contract:
//
//   - zero duplicate simulations: the harness runs exactly one
//     simulation per unique config, however many requests race on it
//     (singleflight, verified via HarnessStats.Runs);
//   - warm responses are byte-identical to cold ones;
//   - a second server started on the same cache directory serves every
//     repeat from disk without re-simulating anything.
func TestSimdLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	cacheDir := t.TempDir()
	s, err := newServer(serverConfig{CacheDir: cacheDir, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	handler := s.handler()

	// 16 unique tiny configs; 1000 requests round-robin over them, all
	// in flight at once (driven straight through ServeHTTP so host fd
	// limits can't cap the concurrency).
	var configs []experimentRequest
	for _, model := range []string{"shmem", "mpi"} {
		for _, procs := range []int{2, 4} {
			for _, seed := range []uint64{0, 1} {
				for _, n := range []int{1 << 12, 1 << 13} {
					configs = append(configs, experimentRequest{
						Algorithm: "radix", Model: model, N: n, Procs: procs, Seed: seed,
					})
				}
			}
		}
	}
	bodies := make([][]byte, len(configs))
	for i, c := range configs {
		if bodies[i], err = json.Marshal(c); err != nil {
			t.Fatal(err)
		}
	}

	const requests = 1000
	type reply struct {
		config int
		status int
		body   []byte
	}
	replies := make([]reply, requests)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-gate
			ci := r % len(configs)
			req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(bodies[ci]))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			replies[r] = reply{config: ci, status: rec.Code, body: rec.Body.Bytes()}
		}(r)
	}
	close(gate) // release all 1000 at once
	wg.Wait()

	canonical := make([][]byte, len(configs))
	for r, rep := range replies {
		if rep.status != http.StatusOK {
			t.Fatalf("request %d (config %d): status %d, body %s", r, rep.config, rep.status, rep.body)
		}
		if canonical[rep.config] == nil {
			canonical[rep.config] = rep.body
		} else if !bytes.Equal(canonical[rep.config], rep.body) {
			t.Fatalf("config %d served two different documents:\n%s\n%s",
				rep.config, canonical[rep.config], rep.body)
		}
	}
	if runs := s.h.Stats().Runs; runs != len(configs) {
		t.Errorf("harness ran %d simulations for %d requests over %d configs, want exactly %d (zero duplicates)",
			runs, requests, len(configs), len(configs))
	}
	st := s.cache.Stats()
	if st.Computed != int64(len(configs)) {
		t.Errorf("cache computed %d results, want %d", st.Computed, len(configs))
	}
	if st.Errors != 0 {
		t.Errorf("cache recorded %d errors under load", st.Errors)
	}
	if total := st.MemHits + st.Shared + st.Computed; total != requests {
		t.Errorf("cache accounted for %d requests, want %d", total, requests)
	}

	// A fresh server on the same cache directory must serve every config
	// from the disk tier: byte-identical bytes, zero simulations.
	s2, err := newServer(serverConfig{CacheDir: cacheDir, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	handler2 := s2.handler()
	for ci := range configs {
		req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(bodies[ci]))
		rec := httptest.NewRecorder()
		handler2.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("restart config %d: status %d, body %s", ci, rec.Code, rec.Body.Bytes())
		}
		if got := rec.Header().Get("X-Simd-Source"); got != "disk" {
			t.Errorf("restart config %d served from %q, want disk", ci, got)
		}
		if !bytes.Equal(rec.Body.Bytes(), canonical[ci]) {
			t.Errorf("restart config %d bytes differ from first server's", ci)
		}
	}
	if runs := s2.h.Stats().Runs; runs != 0 {
		t.Errorf("restarted server re-simulated %d configs, want 0 (disk tier)", runs)
	}
}

// BenchmarkWarmRun measures the p99-dominating path: a fully warm
// cache hit through the HTTP handler.
func BenchmarkWarmRun(b *testing.B) {
	s, err := newServer(serverConfig{})
	if err != nil {
		b.Fatal(err)
	}
	handler := s.handler()
	body, _ := json.Marshal(experimentRequest{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4})
	warm := func() int {
		req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := warm(); code != http.StatusOK {
		b.Fatalf("prime: status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := warm(); code != http.StatusOK {
			b.Fatal(fmt.Errorf("status %d", code))
		}
	}
}
