package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/keys"
	"repro/internal/resultcache"
	"repro/internal/topology"
)

// experimentRequest is the wire form of one experiment cell, shared by
// POST /v1/run (one cell) and POST /v1/grid (a batch). All names are
// the lowercase strings the CLI tools use (ParseAlgorithm / ParseModel
// / keys.ParseDist).
type experimentRequest struct {
	Algorithm string `json:"algorithm"`
	Model     string `json:"model"`
	N         int    `json:"n"`
	Procs     int    `json:"procs"`
	// Radix defaults to 8, the paper's baseline digit size.
	Radix int `json:"radix,omitempty"`
	// Dist defaults to gauss, the paper's default distribution.
	Dist string `json:"dist,omitempty"`
	// Topo selects the machine interconnect by registered network kind
	// (hypercube, fattree, torus, torus3d, dragonfly, numa2); defaults
	// to the paper's Origin2000 hypercube.
	Topo     string `json:"topo,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	FullSize bool   `json:"full_size,omitempty"`
	// Trace embeds the run's deterministic flat trace metrics in the
	// result document (breakdown.*, phase.*, tx.*, traffic.*, …).
	Trace bool `json:"trace,omitempty"`
}

// cacheConfig is the canonical, fully-defaulted form of a request. Its
// JSON encoding (struct fields in declaration order, every field
// present) is the config half of the cache key, so two requests that
// normalize to the same cacheConfig are the same experiment — the cache
// key definition documented in the README.
type cacheConfig struct {
	Algorithm string `json:"algorithm"`
	Model     string `json:"model"`
	N         int    `json:"n"`
	Procs     int    `json:"procs"`
	Radix     int    `json:"radix"`
	Dist      string `json:"dist"`
	Topo      string `json:"topo"`
	Seed      uint64 `json:"seed"`
	FullSize  bool   `json:"full_size"`
	Trace     bool   `json:"trace"`
}

// runResult is the cached result document: a pure function of
// (cacheConfig, code version), serialized once at compute time and
// served byte-identically from every tier forever after.
type runResult struct {
	Key         string             `json:"key"`
	CodeVersion string             `json:"code_version"`
	Config      cacheConfig        `json:"config"`
	TimeNs      float64            `json:"time_ns"`
	Verified    bool               `json:"verified"`
	Breakdowns  []breakdownJSON    `json:"breakdowns"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// breakdownJSON is one processor's BUSY/LMEM/RMEM/SYNC split in
// simulated nanoseconds.
type breakdownJSON struct {
	Busy float64 `json:"busy_ns"`
	LMem float64 `json:"lmem_ns"`
	RMem float64 `json:"rmem_ns"`
	Sync float64 `json:"sync_ns"`
}

// gridRequest is the POST /v1/grid body.
type gridRequest struct {
	Cells []experimentRequest `json:"cells"`
}

// gridCellStatus is one NDJSON progress line of a /v1/grid response:
// cells report in completion order (each line carries its cell index),
// and every cell reports exactly once — errors are per-cell, a bad cell
// never aborts the batch.
type gridCellStatus struct {
	Index  int     `json:"index"`
	Key    string  `json:"key,omitempty"`
	Source string  `json:"source,omitempty"`
	TimeNs float64 `json:"time_ns,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// gridSummary is the final NDJSON line of a /v1/grid response.
type gridSummary struct {
	Done   bool `json:"done"`
	Cells  int  `json:"cells"`
	OK     int  `json:"ok"`
	Errors int  `json:"errors"`
}

// serverConfig configures a simd server.
type serverConfig struct {
	// CacheDir is the persistent result tier ("" = memory only).
	CacheDir string
	// CacheEntries bounds the in-memory result tier (default 4096).
	CacheEntries int
	// Jobs bounds concurrent simulations across all requests (default
	// GOMAXPROCS); excess computes queue on the semaphore while cache
	// hits keep flowing.
	Jobs int
	// MaxN rejects single experiments above this key count (default
	// 2^24, the scaled 256M class) before they can exhaust host memory.
	MaxN int
	// MaxGridCells bounds one /v1/grid batch (default 4096).
	MaxGridCells int
	// Paranoid shadows every simulation with the invariant-checking
	// reference models (DESIGN.md §9). Results are byte-identical, so
	// the cache key is unaffected; host time grows severalfold.
	Paranoid bool
	// Progress, when set, receives one serialized line per completed
	// simulation (wired to -v).
	Progress func(format string, args ...any)
}

func (c serverConfig) withDefaults() serverConfig {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.Jobs < 1 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 24
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	return c
}

// server is the simd experiment service: a content-addressed result
// cache in front of the deterministic simulation harness.
type server struct {
	cfg     serverConfig
	version string
	start   time.Time
	h       *repro.Harness
	cache   *resultcache.Store
	// sem bounds concurrent simulations; cache lookups don't take a slot.
	sem chan struct{}
	// simulate runs one experiment (normally (*server).runExperiment;
	// tests stub it to inject failures and panics).
	simulate func(repro.Experiment) (*repro.Outcome, error)
}

func newServer(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	cache, err := resultcache.New(resultcache.Config{Dir: cfg.CacheDir, MaxEntries: cfg.CacheEntries})
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:     cfg,
		version: resultcache.CodeVersion(),
		start:   time.Now(),
		h:       repro.NewHarness(repro.Options{Progress: cfg.Progress}),
		cache:   cache,
		sem:     make(chan struct{}, cfg.Jobs),
	}
	s.simulate = s.runExperiment
	return s, nil
}

// handler returns the service's routes.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/grid", s.handleGrid)
	mux.HandleFunc("GET /v1/result/{hash}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// parseRequest validates one wire cell and returns the experiment to
// run plus its canonical cache form. Every failure here is the client's
// fault and maps to 400.
func (s *server) parseRequest(req experimentRequest) (repro.Experiment, cacheConfig, error) {
	var zero repro.Experiment
	alg, err := repro.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return zero, cacheConfig{}, err
	}
	model, err := repro.ParseModel(req.Model)
	if err != nil {
		return zero, cacheConfig{}, err
	}
	dist := keys.Gauss
	if req.Dist != "" {
		if dist, err = keys.ParseDist(req.Dist); err != nil {
			return zero, cacheConfig{}, err
		}
	}
	topo, err := repro.ParseTopology(req.Topo)
	if err != nil {
		return zero, cacheConfig{}, err
	}
	radix := req.Radix
	if radix == 0 {
		radix = 8
	}
	if radix < 1 || radix > 24 {
		return zero, cacheConfig{}, fmt.Errorf("radix must be in [1, 24] bits, got %d", radix)
	}
	if req.N < 1 || req.N > s.cfg.MaxN {
		return zero, cacheConfig{}, fmt.Errorf("n must be in [1, %d], got %d", s.cfg.MaxN, req.N)
	}
	if req.Procs < 1 || req.Procs > 1024 {
		return zero, cacheConfig{}, fmt.Errorf("procs must be in [1, 1024], got %d", req.Procs)
	}
	if model == repro.Seq {
		if alg != repro.Radix || req.Procs != 1 {
			return zero, cacheConfig{}, fmt.Errorf("model seq is the sequential radix baseline: algorithm must be radix and procs must be 1")
		}
	} else {
		supported := false
		for _, m := range repro.Models(alg) {
			if m == model {
				supported = true
				break
			}
		}
		if !supported {
			return zero, cacheConfig{}, fmt.Errorf("algorithm %q has no %q program (supported: %v)", alg, model, repro.Models(alg))
		}
	}
	exp := repro.Experiment{
		Algorithm: alg, Model: model, N: req.N, Procs: req.Procs, Radix: radix,
		Dist: dist, Topo: topo, Seed: req.Seed, FullSize: req.FullSize, Trace: req.Trace,
	}
	// Canonical topo: an empty request field IS the hypercube, and the
	// two spellings must hit the same cache entry.
	canonTopo := topo
	if canonTopo == "" {
		canonTopo = topology.KindHypercube
	}
	canon := cacheConfig{
		Algorithm: string(alg), Model: string(model), N: req.N, Procs: req.Procs,
		Radix: radix, Dist: dist.String(), Topo: canonTopo, Seed: req.Seed,
		FullSize: req.FullSize, Trace: req.Trace,
	}
	return exp, canon, nil
}

// runExperiment executes one simulation under the global concurrency
// bound. Traced runs are drained from the harness buffer immediately
// (the trace still rides on the Outcome): a long-lived server must
// never let the per-request trace buffer accumulate.
func (s *server) runExperiment(e repro.Experiment) (*repro.Outcome, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	if s.cfg.Paranoid {
		e.Paranoid = true
	}
	out, err := s.h.RunExperiment(e)
	if e.Trace {
		s.h.TakeTraces()
	}
	return out, err
}

// computeCell simulates one validated cell and serializes its result
// document — the bytes that the cache will serve verbatim forever.
func (s *server) computeCell(e repro.Experiment, canon cacheConfig, key string) ([]byte, error) {
	out, err := s.simulate(e)
	if err != nil {
		return nil, err
	}
	doc := runResult{
		Key: key, CodeVersion: s.version, Config: canon,
		TimeNs: out.TimeNs, Verified: out.Verified,
	}
	for _, b := range out.Breakdowns() {
		doc.Breakdowns = append(doc.Breakdowns, breakdownJSON{
			Busy: b.Busy, LMem: b.LMem, RMem: b.RMem, Sync: b.Sync,
		})
	}
	if e.Trace {
		if tr := out.Trace(); tr != nil {
			// Metrics marshal with sorted keys, so the document stays
			// deterministic.
			doc.Metrics = tr.Metrics()
		}
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// runCell resolves one validated cell through the cache: memory, disk,
// a shared in-flight compute, or a fresh simulation.
func (s *server) runCell(e repro.Experiment, canon cacheConfig) (val []byte, key string, src resultcache.Source, err error) {
	key, err = resultcache.Key(s.version, canon)
	if err != nil {
		return nil, "", "", err
	}
	val, src, err = s.cache.Do(key, func() ([]byte, error) {
		return s.computeCell(e, canon, key)
	})
	return val, key, src, err
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req experimentRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp, canon, err := s.parseRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	val, key, src, err := s.runCell(exp, canon)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Simd-Key", key)
	h.Set("X-Simd-Source", string(src))
	if src == resultcache.SourceComputed {
		h.Set("X-Simd-Cache", "miss")
	} else {
		h.Set("X-Simd-Cache", "hit")
	}
	w.Write(val)
}

func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("grid has no cells"))
		return
	}
	if len(req.Cells) > s.cfg.MaxGridCells {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid has %d cells, limit %d", len(req.Cells), s.cfg.MaxGridCells))
		return
	}
	// Validation is all-or-nothing and 4xx: a malformed batch is the
	// client's bug. Runtime failures below are per-cell.
	exps := make([]repro.Experiment, len(req.Cells))
	canons := make([]cacheConfig, len(req.Cells))
	for i, cell := range req.Cells {
		exp, canon, err := s.parseRequest(cell)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
		exps[i], canons[i] = exp, canon
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var (
		writeMu sync.Mutex
		enc     = json.NewEncoder(w)
		emitted = make([]bool, len(exps))
		okCount int
		errs    int
	)
	emit := func(st gridCellStatus) {
		writeMu.Lock()
		defer writeMu.Unlock()
		emitted[st.Index] = true
		if st.Error == "" {
			okCount++
		} else {
			errs++
		}
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The harness's panic-contained worker pool: a panicking cell comes
	// back as a structured per-cell error, never a dead worker.
	panics := repro.ForEachIndex(s.cfg.Jobs, len(exps), func(i int) {
		val, key, src, err := s.runCell(exps[i], canons[i])
		if err != nil {
			emit(gridCellStatus{Index: i, Key: key, Error: err.Error()})
			return
		}
		var doc struct {
			TimeNs float64 `json:"time_ns"`
		}
		json.Unmarshal(val, &doc)
		emit(gridCellStatus{Index: i, Key: key, Source: string(src), TimeNs: doc.TimeNs})
	})
	for _, pe := range panics {
		if !emitted[pe.Index] {
			emit(gridCellStatus{Index: pe.Index, Error: pe.Error()})
		}
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	enc.Encode(gridSummary{Done: true, Cells: len(exps), OK: okCount, Errors: errs})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !resultcache.ValidKey(hash) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("malformed result key %q (want sha256:<64 hex>)", hash))
		return
	}
	val, src, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for %s", hash))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Simd-Key", hash)
	h.Set("X-Simd-Source", string(src))
	w.Write(val)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

// statszResponse is the GET /statsz schema.
type statszResponse struct {
	UptimeS     float64           `json:"uptime_s"`
	CodeVersion string            `json:"code_version"`
	Jobs        int               `json:"jobs"`
	Harness     repro.HarnessStats `json:"harness"`
	Cache       resultcache.Stats `json:"cache"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statszResponse{
		UptimeS:     time.Since(s.start).Seconds(),
		CodeVersion: s.version,
		Jobs:        s.cfg.Jobs,
		Harness:     s.h.Stats(),
		Cache:       s.cache.Stats(),
	})
}

// decodeJSON parses a bounded request body strictly: unknown fields and
// trailing garbage are client errors.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid request body: trailing data")
	}
	return nil
}

// writeError sends a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
