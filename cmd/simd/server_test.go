package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tinyRun is a request small enough to simulate in milliseconds.
func tinyRun(seed uint64) experimentRequest {
	return experimentRequest{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4, Seed: seed}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunColdWarmByteIdentical: the warm response must be the cold
// response's exact bytes, served as a cache hit without resimulating.
func TestRunColdWarmByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	cold := postJSON(t, ts.URL+"/v1/run", tinyRun(1))
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", cold.StatusCode)
	}
	if got := cold.Header.Get("X-Simd-Cache"); got != "miss" {
		t.Errorf("cold X-Simd-Cache = %q, want miss", got)
	}
	coldBody := readAll(t, cold)

	warm := postJSON(t, ts.URL+"/v1/run", tinyRun(1))
	if got := warm.Header.Get("X-Simd-Cache"); got != "hit" {
		t.Errorf("warm X-Simd-Cache = %q, want hit", got)
	}
	warmBody := readAll(t, warm)
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm body differs from cold body:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if runs := s.h.Stats().Runs; runs != 1 {
		t.Errorf("harness ran %d simulations for two identical requests, want 1", runs)
	}
	var doc runResult
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Verified || doc.TimeNs <= 0 || len(doc.Breakdowns) != 4 {
		t.Errorf("result document malformed: %+v", doc)
	}
	if doc.Key != cold.Header.Get("X-Simd-Key") {
		t.Errorf("document key %q != header key %q", doc.Key, cold.Header.Get("X-Simd-Key"))
	}
}

// TestRunValidation maps every malformed request to 400.
func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{MaxN: 1 << 16})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"bad json", `{"algorithm":`},
		{"unknown field", `{"algorithm":"radix","model":"shmem","n":4096,"procs":4,"bogus":1}`},
		{"trailing data", `{"algorithm":"radix","model":"shmem","n":4096,"procs":4} {}`},
		{"unknown algorithm", `{"algorithm":"bogo","model":"shmem","n":4096,"procs":4}`},
		{"unknown model", `{"algorithm":"radix","model":"openmp","n":4096,"procs":4}`},
		{"unknown dist", `{"algorithm":"radix","model":"shmem","n":4096,"procs":4,"dist":"weird"}`},
		{"zero n", `{"algorithm":"radix","model":"shmem","n":0,"procs":4}`},
		{"n over max", `{"algorithm":"radix","model":"shmem","n":131072,"procs":4}`},
		{"zero procs", `{"algorithm":"radix","model":"shmem","n":4096,"procs":0}`},
		{"procs over max", `{"algorithm":"radix","model":"shmem","n":4096,"procs":2048}`},
		{"radix out of range", `{"algorithm":"radix","model":"shmem","n":4096,"procs":4,"radix":25}`},
		{"seq with procs", `{"algorithm":"radix","model":"seq","n":4096,"procs":4}`},
		{"seq sample", `{"algorithm":"sample","model":"seq","n":4096,"procs":1}`},
		{"sample ccsas-new", `{"algorithm":"sample","model":"ccsas-new","n":4096,"procs":4}`},
		{"seq psrs", `{"algorithm":"psrs","model":"seq","n":4096,"procs":1}`},
		{"psrs ccsas-new", `{"algorithm":"psrs","model":"ccsas-new","n":4096,"procs":4}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, body)
		}
	}
}

// TestRunTopo covers the interconnect field of /v1/run: an unknown kind
// is rejected up front with 400, every registered kind simulates and
// verifies, and the empty string canonicalizes to "hypercube" in the
// cache key so the default spelled two ways is a single cache entry.
func TestRunTopo(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})

	resp := postJSON(t, ts.URL+"/v1/run", experimentRequest{
		Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4, Topo: "mesh"})
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown topo: status %d, want 400 (body %s)", resp.StatusCode, body)
	}

	for _, kind := range []string{"fattree", "torus", "torus3d", "dragonfly", "numa2"} {
		req := tinyRun(7)
		req.Topo = kind
		resp := postJSON(t, ts.URL+"/v1/run", req)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("topo %s: status %d (body %s)", kind, resp.StatusCode, body)
		}
		var doc runResult
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if !doc.Verified || doc.TimeNs <= 0 {
			t.Errorf("topo %s: result malformed: %+v", kind, doc)
		}
	}

	def := postJSON(t, ts.URL+"/v1/run", tinyRun(9))
	if got := def.Header.Get("X-Simd-Cache"); got != "miss" {
		t.Errorf("default topo cold request: X-Simd-Cache = %q, want miss", got)
	}
	defKey := def.Header.Get("X-Simd-Key")
	readAll(t, def)

	spelled := tinyRun(9)
	spelled.Topo = "hypercube"
	warm := postJSON(t, ts.URL+"/v1/run", spelled)
	readAll(t, warm)
	if got := warm.Header.Get("X-Simd-Cache"); got != "hit" {
		t.Errorf(`topo "hypercube" after default run: X-Simd-Cache = %q, want hit`, got)
	}
	if key := warm.Header.Get("X-Simd-Key"); key != defKey {
		t.Errorf(`topo "" and "hypercube" map to different cache keys %q vs %q`, defKey, key)
	}
	if runs := s.h.Stats().Runs; runs < 1 {
		t.Errorf("harness Runs = %d, want ≥ 1", runs)
	}
}

// TestRunPsrs: the service accepts the PSRS programs added beyond the
// paper's eight; a psrs cell must simulate, verify, and cache like any
// other algorithm/model combination.
func TestRunPsrs(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	for _, model := range []string{"ccsas", "mpi", "shmem"} {
		resp := postJSON(t, ts.URL+"/v1/run", experimentRequest{
			Algorithm: "psrs", Model: model, N: 1 << 12, Procs: 4, Seed: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("psrs-%s status %d: %s", model, resp.StatusCode, readAll(t, resp))
		}
		var doc runResult
		if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
			t.Fatal(err)
		}
		if !doc.Verified || doc.TimeNs <= 0 {
			t.Errorf("psrs-%s result malformed: %+v", model, doc)
		}
	}
}

// TestRunTraceMetrics: trace:true embeds deterministic flat metrics and
// the server drains the harness trace buffer (the unbounded-growth
// bugfix's service-side contract).
func TestRunTraceMetrics(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	req := tinyRun(3)
	req.Trace = true
	first := readAll(t, postJSON(t, ts.URL+"/v1/run", req))
	var doc runResult
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("traced run returned no metrics")
	}
	if doc.Metrics["breakdown.busy_ns"] <= 0 {
		t.Errorf("metrics lack breakdown.busy_ns: %v", doc.Metrics)
	}
	if got := len(s.h.Traces()); got != 0 {
		t.Errorf("harness buffer holds %d traces after a traced request, want 0 (drained)", got)
	}
	// An untraced request for the same config is a different document
	// (trace is part of the cache key), still deterministic.
	req2 := tinyRun(3)
	second := readAll(t, postJSON(t, ts.URL+"/v1/run", req2))
	if bytes.Equal(first, second) {
		t.Error("traced and untraced documents share cache entries")
	}
}

// TestResultEndpoint round-trips the content address.
func TestResultEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	resp := postJSON(t, ts.URL+"/v1/run", tinyRun(5))
	key := resp.Header.Get("X-Simd-Key")
	body := readAll(t, resp)

	got, err := http.Get(ts.URL + "/v1/result/" + key)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", got.StatusCode)
	}
	if !bytes.Equal(readAll(t, got), body) {
		t.Error("GET /v1/result bytes differ from the run response")
	}

	missing, err := http.Get(ts.URL + "/v1/result/sha256:" + strings.Repeat("a", 64))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, missing)
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("absent key: status %d, want 404", missing.StatusCode)
	}

	bad, err := http.Get(ts.URL + "/v1/result/not-a-hash")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, bad)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", bad.StatusCode)
	}
}

// TestGridPerCellErrors: one batch mixing good cells, a runtime-failing
// cell (procs=3 passes validation, fails in the topology), and
// duplicates. Every cell reports exactly once; failures stay per-cell.
func TestGridPerCellErrors(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{Jobs: 4})
	grid := gridRequest{Cells: []experimentRequest{
		tinyRun(1),
		{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 3}, // topology rejects procs=3
		tinyRun(2),
		tinyRun(1), // duplicate of cell 0: must not resimulate
	}}
	resp := postJSON(t, ts.URL+"/v1/grid", grid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	defer resp.Body.Close()
	seen := make(map[int]gridCellStatus)
	var summary gridSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var st gridCellStatus
		if err := json.Unmarshal(line, &st); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		var sum gridSummary
		json.Unmarshal(line, &sum)
		if sum.Done {
			summary = sum
			continue
		}
		if _, dup := seen[st.Index]; dup {
			t.Errorf("cell %d reported twice", st.Index)
		}
		seen[st.Index] = st
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("got %d cell lines, want 4 (%v)", len(seen), seen)
	}
	for _, i := range []int{0, 2, 3} {
		if seen[i].Error != "" || seen[i].TimeNs <= 0 {
			t.Errorf("cell %d should have succeeded: %+v", i, seen[i])
		}
	}
	if seen[1].Error == "" || !strings.Contains(seen[1].Error, "topology") {
		t.Errorf("cell 1 should carry the topology error, got %+v", seen[1])
	}
	if summary.Cells != 4 || summary.OK != 3 || summary.Errors != 1 {
		t.Errorf("summary = %+v, want 4 cells / 3 ok / 1 error", summary)
	}
	// Cells 0 and 3 are identical: exactly 2 unique simulations ran.
	if runs := s.h.Stats().Runs; runs != 2 {
		t.Errorf("harness ran %d simulations, want 2 (dedup of duplicate cells)", runs)
	}
}

// TestGridValidation: malformed batches are rejected whole, 4xx.
func TestGridValidation(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{MaxGridCells: 2})
	for name, body := range map[string]string{
		"empty":     `{"cells":[]}`,
		"bad cell":  `{"cells":[{"algorithm":"radix","model":"shmem","n":0,"procs":4}]}`,
		"too large": `{"cells":[{"algorithm":"radix","model":"shmem","n":4096,"procs":4},{"algorithm":"radix","model":"shmem","n":4096,"procs":4},{"algorithm":"radix","model":"shmem","n":4096,"procs":4}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/grid", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestPanicContainment: a panicking simulation becomes a 500 for that
// request only — the server stays up, the key is not poisoned, and the
// next request for the same config succeeds.
func TestPanicContainment(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	real := s.simulate
	s.simulate = func(e repro.Experiment) (*repro.Outcome, error) {
		panic(fmt.Sprintf("injected panic for n=%d", e.N))
	}
	resp := postJSON(t, ts.URL+"/v1/run", tinyRun(9))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run: status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "injected panic") {
		t.Errorf("500 body does not carry the panic: %s", body)
	}

	s.simulate = real
	resp = postJSON(t, ts.URL+"/v1/run", tinyRun(9))
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after panic, same config: status %d, want 200 (error poisoned the cache?)", resp.StatusCode)
	}

	// Same containment through /v1/grid: the panic surfaces as that
	// cell's error while other cells complete.
	s.simulate = func(e repro.Experiment) (*repro.Outcome, error) {
		if e.Seed == 77 {
			panic("injected grid panic")
		}
		return real(e)
	}
	gresp := postJSON(t, ts.URL+"/v1/grid", gridRequest{Cells: []experimentRequest{tinyRun(77), tinyRun(78)}})
	glines := readAll(t, gresp)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("grid with panicking cell: status %d", gresp.StatusCode)
	}
	if !strings.Contains(string(glines), "injected grid panic") {
		t.Errorf("grid stream does not report the panicking cell: %s", glines)
	}
	if !strings.Contains(string(glines), `"done":true`) {
		t.Errorf("grid stream has no summary: %s", glines)
	}
	s.simulate = real
}

// TestHealthzStatsz sanity-checks the operational endpoints.
func TestHealthzStatsz(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}

	readAll(t, postJSON(t, ts.URL+"/v1/run", tinyRun(11)))
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st statszResponse
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Harness.Runs != 1 || st.Harness.SimNs <= 0 {
		t.Errorf("statsz harness = %+v, want 1 run with positive sim time", st.Harness)
	}
	if st.Cache.Computed != 1 {
		t.Errorf("statsz cache = %+v, want 1 computed", st.Cache)
	}
	if st.CodeVersion == "" || st.Jobs < 1 {
		t.Errorf("statsz metadata incomplete: %+v", st)
	}
}

// TestMethodNotAllowed: the mux's method patterns reject mismatches.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestRunSkewDists: the four skew distributions are accepted
// end-to-end — simulated, verified, 200 — and every one of them (plus
// gauss) occupies a distinct cache key, so skew results can never
// shadow gauss results. An unknown dist stays a 400 (covered above);
// here the distinct-key half of the contract is pinned.
func TestRunSkewDists(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	keysSeen := map[string]string{}
	for _, dist := range []string{"gauss", "zipf", "selfsim", "dupheavy", "adversarial"} {
		req := tinyRun(1)
		req.Dist = dist
		resp := postJSON(t, ts.URL+"/v1/run", req)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dist %s: status %d (body %s)", dist, resp.StatusCode, body)
		}
		var doc runResult
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if !doc.Verified {
			t.Errorf("dist %s: output not verified", dist)
		}
		key := resp.Header.Get("X-Simd-Key")
		if key == "" {
			t.Fatalf("dist %s: missing cache key", dist)
		}
		if prev, dup := keysSeen[key]; dup {
			t.Errorf("dist %s shares a cache key with %s: %s", dist, prev, key)
		}
		keysSeen[key] = dist
	}
	if runs := s.h.Stats().Runs; runs != 5 {
		t.Errorf("harness ran %d simulations for five distinct dists, want 5", runs)
	}
}

// TestGridSkewCells: a /v1/grid batch over the skew distributions runs
// every cell under a distinct cache key, and a batch containing an
// unknown dist is rejected whole by the upfront validation (4xx) before
// anything simulates.
func TestGridSkewCells(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	grid := gridRequest{Cells: []experimentRequest{
		{Algorithm: "sample", Model: "ccsas", N: 1 << 12, Procs: 4, Dist: "zipf"},
		{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4, Dist: "adversarial"},
		{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4, Dist: "gauss"},
	}}
	resp := postJSON(t, ts.URL+"/v1/grid", grid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	seen := make(map[int]gridCellStatus)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var st gridCellStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", sc.Bytes(), err)
		}
		var sum gridSummary
		json.Unmarshal(sc.Bytes(), &sum)
		if sum.Done {
			if sum.OK != 3 || sum.Errors != 0 {
				t.Errorf("summary = %+v, want 3 ok / 0 errors", sum)
			}
			continue
		}
		seen[st.Index] = st
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	keysSeen := map[string]bool{}
	for i := 0; i < 3; i++ {
		st, ok := seen[i]
		if !ok || st.Error != "" || st.TimeNs <= 0 {
			t.Fatalf("cell %d missing or failed: %+v", i, st)
		}
		if keysSeen[st.Key] {
			t.Errorf("cell %d shares a cache key with an earlier cell", i)
		}
		keysSeen[st.Key] = true
	}
	if runs := s.h.Stats().Runs; runs != 3 {
		t.Errorf("harness ran %d simulations, want 3 (all cells distinct)", runs)
	}
	// Unknown dist in any cell: the whole batch is rejected upfront.
	bad := gridRequest{Cells: []experimentRequest{
		{Algorithm: "radix", Model: "shmem", N: 1 << 12, Procs: 4, Dist: "weird"},
	}}
	resp = postJSON(t, ts.URL+"/v1/grid", bad)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-dist batch: status %d, want 400 (body %s)", resp.StatusCode, body)
	}
}
