// Command simd is a long-running HTTP/JSON experiment service: "predict
// sort performance" queries against the deterministic simulator, served
// from a content-addressed result cache.
//
// Every simulation in this repository is a pure function of (experiment
// config, seed, code version) — byte-identical at any parallelism — so
// every result is cacheable forever. simd exploits that: results are
// keyed by a canonical hash of those inputs (internal/resultcache),
// identical in-flight requests are singleflight-deduplicated so a
// thundering herd costs one simulation, and completed results live in
// an LRU-bounded memory tier plus an optional persistent disk tier, so
// repeat queries cost ~0 across restarts.
//
// Usage:
//
//	simd [-addr host:port] [-cache-dir DIR] [-cache-entries N] [-j N]
//	     [-max-n N] [-grid-cells N] [-paranoid] [-v]
//
// Endpoints:
//
//	POST /v1/run            one experiment; response is the cached
//	                        result document (X-Simd-Cache: hit|miss,
//	                        X-Simd-Key, X-Simd-Source headers)
//	POST /v1/grid           a batch of cells; streams NDJSON progress
//	                        lines in completion order, one per cell
//	                        (per-cell errors — a bad cell never aborts
//	                        the batch), then a summary line
//	GET  /v1/result/{hash}  look up a result by its content address
//	GET  /healthz           liveness
//	GET  /statsz            harness run counters + cache tier stats
//
// Request validation failures are 4xx; simulation failures are 5xx. A
// panic in any cell is recovered per cell (repro.ForEachIndex /
// resultcache.Do) and reported as that cell's error — one poisoned
// request cannot take down the service. On SIGINT/SIGTERM the server
// stops accepting connections and drains in-flight runs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		cacheDir  = fs.String("cache-dir", "", "persistent result cache directory (empty = memory only)")
		cacheEnts = fs.Int("cache-entries", 4096, "in-memory result cache entries (LRU)")
		jobs      = fs.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (>= 1)")
		maxN      = fs.Int("max-n", 1<<24, "largest accepted key count per experiment")
		gridCells = fs.Int("grid-cells", 4096, "largest accepted /v1/grid batch")
		paranoid  = fs.Bool("paranoid", false, "shadow every simulation with the reference-model invariant checks (slow)")
		verbose   = fs.Bool("v", false, "log one line per completed simulation")
		drainFor  = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", *jobs)
	}
	logger := log.New(os.Stderr, "simd: ", log.LstdFlags)
	cfg := serverConfig{
		CacheDir:     *cacheDir,
		CacheEntries: *cacheEnts,
		Jobs:         *jobs,
		MaxN:         *maxN,
		MaxGridCells: *gridCells,
		Paranoid:     *paranoid,
	}
	if *verbose {
		cfg.Progress = func(format string, args ...any) {
			logger.Printf(format, args...)
		}
	}
	s, err := newServer(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	// The "listening" line is printed only after the port is bound, so
	// supervisors (and the CI smoke job) can poll for readiness safely.
	logger.Printf("listening on http://%s (cache dir %q, %d jobs, version %s)",
		ln.Addr(), *cacheDir, *jobs, s.version)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down: draining in-flight runs (budget %s)", *drainFor)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Printf("drained; bye")
		return nil
	}
}
