// Command paperfigs regenerates the tables and figures of "Parallel
// Sorting on Cache-coherent DSM Multiprocessors" (SC 1999) on the
// simulated machine.
//
// Usage:
//
//	paperfigs [-exp all|table1|fig1|...|figpsrs|table23|figtopo|figskew] [-sizes 1M,4M,16M]
//	          [-procs 16,32,64] [-seed N] [-j N] [-benchjson] [-v]
//	          [-paranoid] [-trace out.json] [-cpuprofile out.pprof]
//
// -paranoid runs every experiment cell with the invariant-checking
// reference models enabled (DESIGN.md §9): stdout stays byte-identical,
// host time grows severalfold, and the command fails on the first cell
// whose fast path disagrees with the reference models.
//
// -cpuprofile writes a pprof CPU profile of the run; refreshing
// default.pgo from a representative grid keeps the committed PGO profile
// honest (see DESIGN.md §8).
//
// -trace records a virtual-time event trace of every experiment cell and
// writes them all to one Chrome trace_event JSON file (one Perfetto
// process per cell, one track per simulated processor). The file is
// deterministic: byte-identical at any -j.
//
// By default every experiment runs on the scaled machine over all five
// size classes; use -sizes to restrict (the 64M/256M classes take
// minutes of host time on a small machine).
//
// Experiment cells run concurrently on -j worker goroutines (default
// GOMAXPROCS). The simulator's virtual time is independent of host
// scheduling and results are gathered in deterministic cell order, so
// stdout is byte-identical at any -j; only wall-clock changes.
//
// -benchjson additionally writes per-figure wall-clock and
// simulated-time metrics to BENCH_paperfigs.json (override the path with
// -benchout) so the performance trajectory is machine-readable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/trace"
)

// figureRun is one regenerable experiment: run returns the printable
// output blocks (each printed with one trailing newline, like the serial
// driver always did). extra marks beyond-paper experiments that -exp all
// skips: the committed paper grid (and its golden file) stays exactly
// the paper's figures, and the extras run only when named explicitly.
type figureRun struct {
	name  string
	run   func(h *repro.Harness) ([]string, error)
	extra bool
}

// runners lists every experiment in the order -exp all prints them.
var runners = []figureRun{
	{"table1", func(h *repro.Harness) ([]string, error) {
		t, _, err := h.Table1()
		if err != nil {
			return nil, err
		}
		return []string{t.String()}, nil
	}, false},
	{"fig1", speedupRunner((*repro.Harness).Figure1), false},
	{"fig2", speedupRunner((*repro.Harness).Figure2), false},
	{"fig3", speedupRunner((*repro.Harness).Figure3), false},
	{"fig7", speedupRunner((*repro.Harness).Figure7), false},
	{"figpsrs", speedupRunner((*repro.Harness).FigurePSRS), false},
	{"fig4", breakdownRunner((*repro.Harness).Figure4), false},
	{"fig8", breakdownRunner((*repro.Harness).Figure8), false},
	{"fig5", relativeRunner((*repro.Harness).Figure5), false},
	{"fig6", relativeRunner((*repro.Harness).Figure6), false},
	{"fig9", relativeRunner((*repro.Harness).Figure9), false},
	{"fig10", relativeRunner((*repro.Harness).Figure10), false},
	{"table23", func(h *repro.Harness) ([]string, error) {
		bt, err := h.Tables23()
		if err != nil {
			return nil, err
		}
		return []string{bt.Table2().String(), bt.Table3().String()}, nil
	}, false},
	{"figtopo", func(h *repro.Harness) ([]string, error) {
		figs, err := h.FigureTopo()
		if err != nil {
			return nil, err
		}
		var blocks []string
		for _, f := range figs {
			blocks = append(blocks, f.Table().String())
		}
		return blocks, nil
	}, true},
	{"figskew", relativeRunner((*repro.Harness).FigureSkew), true},
}

func speedupRunner(fn func(*repro.Harness) (*repro.SpeedupFigure, error)) func(*repro.Harness) ([]string, error) {
	return func(h *repro.Harness) ([]string, error) {
		f, err := fn(h)
		if err != nil {
			return nil, err
		}
		return []string{f.Table().String()}, nil
	}
}

func breakdownRunner(fn func(*repro.Harness) (*repro.BreakdownFigure, error)) func(*repro.Harness) ([]string, error) {
	return func(h *repro.Harness) ([]string, error) {
		f, err := fn(h)
		if err != nil {
			return nil, err
		}
		return []string{f.Chart()}, nil
	}
}

func relativeRunner(fn func(*repro.Harness) (*repro.RelativeFigure, error)) func(*repro.Harness) ([]string, error) {
	return func(h *repro.Harness) ([]string, error) {
		f, err := fn(h)
		if err != nil {
			return nil, err
		}
		return []string{f.Table().String()}, nil
	}
}

// benchEntry is one figure's metrics in the -benchjson report.
type benchEntry struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
	Runs   int     `json:"runs"`
	SimMs  float64 `json:"sim_ms"`
}

// benchReport is the BENCH_paperfigs.json schema (documented in README).
type benchReport struct {
	Parallelism int          `json:"parallelism"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Seed        uint64       `json:"seed"`
	Figures     []benchEntry `json:"figures"`
	TotalWallMs float64      `json:"total_wall_ms"`
	TotalRuns   int          `json:"total_runs"`
	TotalSimMs  float64      `json:"total_sim_ms"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

// run is the command body, parameterized over arguments and output
// streams so the golden-file test can drive it in-process. Figure/table
// blocks go to stdout; progress and bench summaries go to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: all, table1, fig1..fig10, figpsrs, table23, figtopo, figskew (figtopo/figskew are beyond-paper and excluded from all)")
		sizes     = fs.String("sizes", "", "comma-separated size classes (1M,4M,16M,64M,256M); default all")
		procs     = fs.String("procs", "", "comma-separated processor counts; default 16,32,64")
		radixes   = fs.String("radixes", "", "comma-separated radix sweep for fig6/fig10; default 6..12")
		seed      = fs.Uint64("seed", 0, "key generation seed")
		par       = fs.Int("j", runtime.GOMAXPROCS(0), "max concurrent experiment runs (>= 1)")
		benchjson = fs.Bool("benchjson", false, "write per-figure wall-clock/simulated metrics to -benchout")
		benchout  = fs.String("benchout", "BENCH_paperfigs.json", "output path for -benchjson")
		paranoid  = fs.Bool("paranoid", false, "shadow every access with the reference models and invariant checks (slow; fails on any violation)")
		paranoidN = fs.Int("paranoid-sample", 0, "spot-sample the paranoid checks every N priced events (0/1 = full per-access checks; N>1 implies -paranoid and keeps the fast kernels)")
		traceTo   = fs.String("trace", "", "write every cell's event trace to this Chrome trace_event JSON file")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file (feeds the default.pgo PGO profile)")
		verbose   = fs.Bool("v", false, "print one line per completed run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *par < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", *par)
	}
	if !validExp(*exp) {
		return fmt.Errorf("unknown experiment %q (want all, table1, fig1..fig10, figpsrs, table23, figtopo, or figskew)", *exp)
	}

	opts := repro.Options{Seed: *seed, Parallelism: *par, Trace: *traceTo != "", Paranoid: *paranoid, ParanoidSampleEvery: *paranoidN}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			sc, err := repro.SizeByLabel(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			opts.Sizes = append(opts.Sizes, sc)
		}
	}
	var err error
	if *procs != "" {
		if opts.Procs, err = parseInts("-procs", *procs); err != nil {
			return err
		}
	}
	if *radixes != "" {
		if opts.RadixSweep, err = parseInts("-radixes", *radixes); err != nil {
			return err
		}
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	h := repro.NewHarness(opts)

	rep := benchReport{Parallelism: *par, GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: *seed}
	for _, r := range runners {
		if *exp == "all" && r.extra {
			continue
		}
		if *exp != "all" && *exp != r.name {
			continue
		}
		before := h.Stats()
		start := time.Now()
		blocks, err := r.run(h)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		after := h.Stats()
		for _, b := range blocks {
			fmt.Fprintln(stdout, b)
		}
		rep.Figures = append(rep.Figures, benchEntry{
			Name:   r.name,
			WallMs: float64(wall.Nanoseconds()) / 1e6,
			Runs:   after.Runs - before.Runs,
			SimMs:  (after.SimNs - before.SimNs) / 1e6,
		})
	}
	for _, e := range rep.Figures {
		rep.TotalWallMs += e.WallMs
		rep.TotalRuns += e.Runs
		rep.TotalSimMs += e.SimMs
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, h.Traces()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "paperfigs: wrote %s (%d traces; open in Perfetto)\n",
			*traceTo, len(h.Traces()))
	}
	if *benchjson {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchout, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "paperfigs: wrote %s (%d runs, %.0f ms wall, -j %d)\n",
			*benchout, rep.TotalRuns, rep.TotalWallMs, *par)
	}
	return nil
}

// validExp reports whether name selects at least one runner.
func validExp(name string) bool {
	if name == "all" {
		return true
	}
	for _, r := range runners {
		if r.name == name {
			return true
		}
	}
	return false
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", flagName, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("%s: values must be >= 1, got %d", flagName, v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
