// Command paperfigs regenerates the tables and figures of "Parallel
// Sorting on Cache-coherent DSM Multiprocessors" (SC 1999) on the
// simulated machine.
//
// Usage:
//
//	paperfigs [-exp all|table1|fig1|...|table23] [-sizes 1M,4M,16M]
//	          [-procs 16,32,64] [-seed N] [-v]
//
// By default every experiment runs on the scaled machine over all five
// size classes; use -sizes to restrict (the 64M/256M classes take
// minutes of host time on a small machine).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig1..fig10, table23")
		sizes   = flag.String("sizes", "", "comma-separated size classes (1M,4M,16M,64M,256M); default all")
		procs   = flag.String("procs", "", "comma-separated processor counts; default 16,32,64")
		radixes = flag.String("radixes", "", "comma-separated radix sweep for fig6/fig10; default 6..12")
		seed    = flag.Uint64("seed", 0, "key generation seed")
		verbose = flag.Bool("v", false, "print one line per completed run")
	)
	flag.Parse()

	opts := repro.Options{Seed: *seed}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			sc, err := repro.SizeByLabel(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			opts.Sizes = append(opts.Sizes, sc)
		}
	}
	if *procs != "" {
		opts.Procs = parseInts(*procs)
	}
	if *radixes != "" {
		opts.RadixSweep = parseInts(*radixes)
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	h := repro.NewHarness(opts)

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		t, _, err := h.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	speedups := []struct {
		name string
		fn   func() (*repro.SpeedupFigure, error)
	}{
		{"fig1", h.Figure1}, {"fig2", h.Figure2}, {"fig3", h.Figure3}, {"fig7", h.Figure7},
	}
	for _, s := range speedups {
		if !want(s.name) {
			continue
		}
		ran = true
		f, err := s.fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Table())
	}
	breakdowns := []struct {
		name string
		fn   func() (*repro.BreakdownFigure, error)
	}{
		{"fig4", h.Figure4}, {"fig8", h.Figure8},
	}
	for _, s := range breakdowns {
		if !want(s.name) {
			continue
		}
		ran = true
		f, err := s.fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Chart())
	}
	relatives := []struct {
		name string
		fn   func() (*repro.RelativeFigure, error)
	}{
		{"fig5", h.Figure5}, {"fig6", h.Figure6}, {"fig9", h.Figure9}, {"fig10", h.Figure10},
	}
	for _, s := range relatives {
		if !want(s.name) {
			continue
		}
		ran = true
		f, err := s.fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Table())
	}
	if want("table23") {
		ran = true
		bt, err := h.Tables23()
		if err != nil {
			fatal(err)
		}
		fmt.Println(bt.Table2())
		fmt.Println(bt.Table3())
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
