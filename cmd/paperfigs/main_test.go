package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/paperfigs_tiny.golden from current output")

// tinyArgs is the reduced grid the golden file pins: every figure and
// table on the 1M class, 4/8 processors, a two-point radix sweep.
func tinyArgs(j string) []string {
	return []string{
		"-exp", "all",
		"-sizes", "1M",
		"-procs", "4,8",
		"-radixes", "7,8",
		"-seed", "0",
		"-j", j,
	}
}

// runTiny invokes the command body in-process and returns its stdout.
func runTiny(t *testing.T, j string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(tinyArgs(j), &stdout, &stderr); err != nil {
		t.Fatalf("paperfigs %v: %v\nstderr:\n%s", tinyArgs(j), err, stderr.String())
	}
	return stdout.Bytes()
}

// TestGoldenTinyGrid pins the full figure/table output of the tiny grid
// against testdata/paperfigs_tiny.golden, and proves stdout is
// byte-identical at -j 1 and -j 8 (deterministic gather order).
// Refresh the golden with: go test ./cmd/paperfigs -run Golden -update
func TestGoldenTinyGrid(t *testing.T) {
	golden := filepath.Join("testdata", "paperfigs_tiny.golden")
	got1 := runTiny(t, "1")
	got8 := runTiny(t, "8")
	if !bytes.Equal(got1, got8) {
		t.Fatalf("stdout differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(got1), len(got8))
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got1))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got1, want) {
		t.Errorf("output differs from %s (%d bytes got, %d want); rerun with -update if the change is intended\n--- got ---\n%s",
			golden, len(got1), len(want), diffHead(got1, want))
	}
}

// diffHead returns the first few lines around the first differing byte,
// so a golden mismatch is actionable without dumping megabytes.
func diffHead(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(got) {
		hi = len(got)
	}
	return string(got[lo:hi])
}

// TestFigTopoDeterministic proves the beyond-paper topology grid keeps
// the same determinism contract as the paper figures: `-exp figtopo` on
// a tiny grid is byte-identical at -j 1 and -j 4, and renders one
// speedup figure per registered interconnect kind.
func TestFigTopoDeterministic(t *testing.T) {
	runTopo := func(j string) []byte {
		t.Helper()
		args := []string{"-exp", "figtopo", "-sizes", "1M", "-procs", "4,8", "-seed", "0", "-j", j}
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("paperfigs %v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}
	got1 := runTopo("1")
	got4 := runTopo("4")
	if !bytes.Equal(got1, got4) {
		t.Fatalf("figtopo stdout differs between -j 1 (%d bytes) and -j 4 (%d bytes)\n%s",
			len(got1), len(got4), diffHead(got1, got4))
	}
	for _, kind := range []string{"hypercube", "fattree", "torus", "dragonfly", "numa2"} {
		if !bytes.Contains(got1, []byte("Figure T ("+kind+")")) {
			t.Errorf("figtopo output missing figure for %q", kind)
		}
	}
}

// TestRunRejectsBadFlags covers the error paths of the in-process
// entrypoint: unknown experiment, bad -j, stray arguments.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-j", "0"},
		{"stray"},
		{"-sizes", "3M"},
		{"-procs", "0"},
	} {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) = nil error, want failure", args)
		}
	}
}
