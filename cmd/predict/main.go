// Command predict runs the analytic performance model (the paper's
// stated future work): given a machine and a radix-sort workload, it
// predicts each programming model's execution time and phase breakdown
// without simulating, and optionally validates against the simulator.
// The analytic model covers radix sort only; sample sort and PSRS runs
// must go through the simulator (sortbench, paperfigs).
//
// Usage:
//
//	predict -n 1048576 -procs 16 -radix 8 [-full] [-validate] [-j N]
//
// With -validate, the per-model simulator runs are independent and run
// concurrently on -j workers (default GOMAXPROCS); reported numbers are
// identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/shmem"
)

func main() {
	var (
		n        = flag.Int("n", 1<<20, "key count")
		procs    = flag.Int("procs", 16, "processor count")
		radix    = flag.Int("radix", 8, "radix size in bits")
		full     = flag.Bool("full", false, "use the full-size Origin2000 parameters")
		topo     = flag.String("topo", "", "interconnect kind (hypercube, fattree, torus, torus3d, dragonfly, numa2); default hypercube")
		validate = flag.Bool("validate", false, "also run the simulator and report prediction error")
		par      = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulator runs for -validate (>= 1)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	if *par < 1 {
		fatal(fmt.Errorf("-j must be >= 1, got %d", *par))
	}
	if *n < 1 {
		fatal(fmt.Errorf("-n must be >= 1, got %d", *n))
	}
	if *procs < 1 {
		fatal(fmt.Errorf("-procs must be >= 1, got %d", *procs))
	}
	if *radix < 1 || *radix > 24 {
		fatal(fmt.Errorf("-radix must be in [1, 24], got %d", *radix))
	}

	tp, err := repro.ParseTopology(*topo)
	if err != nil {
		fatal(err)
	}
	var cfg machine.Config
	mpiCfg := mpi.DefaultDirect()
	shmCfg := shmem.DefaultConfig()
	if *full {
		cfg = machine.Origin2000(*procs)
	} else {
		cfg = machine.Origin2000Scaled(*procs)
		mpiCfg = mpiCfg.Scaled(machine.ScaleFactor)
		shmCfg = shmCfg.Scaled(machine.ScaleFactor)
	}
	cfg.Topology.Kind = tp
	pr, err := perfmodel.New(cfg, mpiCfg, shmCfg)
	if err != nil {
		fatal(err)
	}
	w := perfmodel.Workload{N: *n, Procs: *procs, Radix: *radix}
	ranked, err := pr.PredictAll(w)
	if err != nil {
		fatal(err)
	}
	if len(ranked) == 0 {
		fatal(fmt.Errorf("the performance model returned no predictions"))
	}

	// With -validate, run every predicted model through the simulator
	// concurrently before rendering.
	var sims []*repro.Outcome
	if *validate {
		exps := make([]repro.Experiment, len(ranked))
		for i, p := range ranked {
			exps[i] = repro.Experiment{
				Algorithm: repro.Radix, Model: repro.Model(p.Model),
				N: *n, Procs: *procs, Radix: *radix, FullSize: *full, Topo: tp,
			}
		}
		sims, err = repro.RunAll(*par, exps)
		if err != nil {
			fatal(err)
		}
	}

	t := &report.Table{
		Title:  fmt.Sprintf("Predicted radix sort times: n=%d procs=%d radix=%d", *n, *procs, *radix),
		Header: []string{"rank", "model", "predicted"},
	}
	if *validate {
		t.Header = append(t.Header, "simulated", "pred/sim")
	}
	for i, p := range ranked {
		row := []string{fmt.Sprintf("%d", i+1), string(p.Model), report.Ms(p.TimeNs)}
		if *validate {
			out := sims[i]
			row = append(row, report.Ms(out.TimeNs), report.F(p.TimeNs/out.TimeNs))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)

	// Phase detail for the predicted winner.
	best := ranked[0]
	pt := &report.Table{
		Title:  fmt.Sprintf("Predicted phases for %s", best.Model),
		Header: []string{"phase", "time"},
	}
	names := make([]string, 0, len(best.Phases))
	for name := range best.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pt.AddRow(name, report.Ms(best.Phases[name]))
	}
	fmt.Println(pt)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
