// Command sortbench runs one sorting experiment on the simulated DSM
// machine and prints its simulated time and per-processor breakdown.
//
// Usage:
//
//	sortbench -algo radix -model shmem -n 262144 -procs 16 -radix 8 \
//	          -dist gauss [-seed N] [-seeds K] [-confidence 0.95] \
//	          [-full] [-perproc] [-paranoid] \
//	          [-trace out.json] [-metrics out.json] \
//	          [-benchjson] [-benchout BENCH_sim.json] [-benchlabel rev]
//
// -seeds K (K >= 2) switches to ensemble mode: the experiment runs at K
// consecutive seeds starting from -seed, and the output is each
// metric's mean, sample stddev and Student-t confidence interval
// (internal/stats; -confidence selects 0.95 or 0.99) instead of a
// single point estimate. Ensemble mode is about the statistics of the
// simulated metrics, so it excludes the single-run outputs -trace,
// -metrics, -benchjson and -perproc.
//
// -paranoid shadows every simulated access with the slow reference
// models and invariant checks of internal/check (DESIGN.md §9). Output
// is byte-identical to a normal run; if any check is violated the
// command fails with a structured error naming the processor, phase and
// address of the first disagreement.
//
// -trace writes a Chrome trace_event JSON file of the run (open it in
// Perfetto or chrome://tracing; one track per simulated processor).
// -metrics writes the run's flat metrics map as JSON. Both outputs are
// deterministic: the same experiment always produces identical bytes.
//
// -benchjson records host-performance metrics of the run — wall-clock,
// simulated memory accesses, ns per simulated access, accesses/sec — by
// appending an entry to -benchout (default BENCH_sim.json, schema in
// README). The simulation itself is deterministic, so the access count
// is stable across hosts and the wall-clock fields are the only
// machine-dependent numbers; -benchlabel tags the entry with the code
// revision being measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchRun is one -benchjson entry: the host cost of one simulation run.
type benchRun struct {
	Label             string  `json:"label"`
	Revision          string  `json:"revision"`
	WallMs            float64 `json:"wall_ms"`
	SimMs             float64 `json:"sim_ms"`
	SimulatedAccesses uint64  `json:"simulated_accesses"`
	NsPerAccess       float64 `json:"ns_per_access"`
	AccessesPerSec    float64 `json:"accesses_per_sec"`
}

// benchFile is the BENCH_sim.json schema. Grids holds curated
// before/after wall-clock comparisons (edited by hand when a perf PR
// lands); Runs accumulates -benchjson entries.
type benchFile struct {
	Note  string            `json:"note,omitempty"`
	Grids []json.RawMessage `json:"grids,omitempty"`
	Micro []json.RawMessage `json:"micro,omitempty"`
	Runs  []benchRun        `json:"runs"`
}

func main() {
	var (
		algo       = flag.String("algo", "radix", "algorithm: radix, sample, or psrs")
		model      = flag.String("model", "shmem", "model: seq, ccsas, ccsas-new, mpi, mpi-sgi, shmem")
		n          = flag.Int("n", 1<<18, "key count")
		procs      = flag.Int("procs", 16, "processor count (power of two)")
		radix      = flag.Int("radix", 8, "radix size in bits")
		dist       = flag.String("dist", "gauss", "key distribution")
		topo       = flag.String("topo", "", "interconnect kind (hypercube, fattree, torus, torus3d, dragonfly, numa2); default hypercube")
		seed       = flag.Uint64("seed", 0, "key generation seed")
		seedsK     = flag.Int("seeds", 0, "ensemble mode: run K >= 2 consecutive seeds starting at -seed and print mean/stddev/CI per metric")
		confidence = flag.Float64("confidence", 0.95, "ensemble confidence level: 0.95 or 0.99")
		full       = flag.Bool("full", false, "use the full-size (unscaled) Origin2000 parameters")
		paranoid   = flag.Bool("paranoid", false, "shadow every access with the reference models and invariant checks (slow; fails on any violation)")
		paranoidN  = flag.Int("paranoid-sample", 0, "spot-sample the paranoid checks every N priced events (0/1 = full per-access checks; N>1 implies -paranoid and keeps the fast kernels)")
		perproc    = flag.Bool("perproc", false, "print the per-processor breakdown")
		traceTo    = flag.String("trace", "", "write a Chrome trace_event JSON trace to this file")
		metrics    = flag.String("metrics", "", "write the flat metrics map as JSON to this file")
		benchjson  = flag.Bool("benchjson", false, "append host metrics (ns/simulated access, accesses/sec) to -benchout")
		benchout   = flag.String("benchout", "BENCH_sim.json", "output path for -benchjson")
		benchlabel = flag.String("benchlabel", "worktree", "revision tag for the -benchjson entry")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	a, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	m, err := repro.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	d, err := keys.ParseDist(*dist)
	if err != nil {
		fatal(err)
	}
	tp, err := repro.ParseTopology(*topo)
	if err != nil {
		fatal(err)
	}
	if *seedsK != 0 {
		if *traceTo != "" || *metrics != "" || *benchjson || *perproc {
			fatal(fmt.Errorf("-seeds is incompatible with -trace, -metrics, -benchjson and -perproc"))
		}
		if err := runEnsemble(a, m, d, tp, *n, *procs, *radix, *seed, *seedsK, *confidence, *full, *paranoid); err != nil {
			fatal(err)
		}
		return
	}
	start := time.Now()
	out, err := repro.Run(repro.Experiment{
		Algorithm: a, Model: m, N: *n, Procs: *procs, Radix: *radix,
		Dist: d, Topo: tp, Seed: *seed, FullSize: *full, Paranoid: *paranoid,
		ParanoidSampleEvery: *paranoidN,
		Trace:               *traceTo != "" || *metrics != "",
	})
	wall := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if *benchjson {
		if err := appendBench(*benchout, *benchlabel, out, wall,
			fmt.Sprintf("%s/%s n=%d procs=%d radix=%d dist=%s", a, m, *n, *procs, *radix, d)); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: appended to %s\n", *benchout)
	}
	if *traceTo != "" {
		if err := writeFile(*traceTo, func(w io.Writer) error {
			return trace.WriteChrome(w, out.Trace())
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %s (Chrome trace_event JSON; open in Perfetto)\n", *traceTo)
	}
	if *metrics != "" {
		if err := writeFile(*metrics, out.Trace().WriteMetrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: wrote %s\n", *metrics)
	}

	fmt.Printf("%s/%s  n=%d  procs=%d  radix=%d  dist=%s\n",
		a, m, *n, *procs, *radix, d)
	fmt.Printf("simulated time: %s  (verified sorted: %v)\n",
		report.Ms(out.TimeNs), out.Verified)

	bds := out.Breakdowns()
	var sum, maxTotal float64
	for _, b := range bds {
		sum += b.Total()
		if b.Total() > maxTotal {
			maxTotal = b.Total()
		}
	}
	mean := sum / float64(len(bds))
	fmt.Printf("per-proc mean: %s  max: %s\n", report.Ms(mean), report.Ms(maxTotal))

	if *perproc {
		t := &report.Table{
			Title:  "Per-processor breakdown (ms)",
			Header: []string{"proc", "BUSY", "LMEM", "RMEM", "SYNC", "total"},
		}
		for i, b := range bds {
			t.AddRow(fmt.Sprintf("%d", i),
				report.F(b.Busy/1e6), report.F(b.LMem/1e6),
				report.F(b.RMem/1e6), report.F(b.Sync/1e6), report.F(b.Total()/1e6))
		}
		fmt.Println(t)
	}
}

// runEnsemble is the -seeds mode: one experiment across K consecutive
// seeds, reduced to per-metric mean/stddev/CI by internal/stats.
func runEnsemble(a repro.Algorithm, m repro.Model, d keys.Dist, topo string,
	n, procs, radix int, seed uint64, seedsK int, confidence float64, full, paranoid bool) error {
	label := fmt.Sprintf("%s/%s", a, m)
	ens, err := stats.RunEnsemble(
		stats.Config{Seeds: seedsK, BaseSeed: seed, Confidence: confidence},
		[]stats.Variant{{Label: label, Exp: repro.Experiment{
			Algorithm: a, Model: m, N: n, Procs: procs, Radix: radix,
			Dist: d, Topo: topo, FullSize: full, Paranoid: paranoid,
		}}})
	if err != nil {
		return err
	}
	fmt.Printf("%s  n=%d  procs=%d  radix=%d  dist=%s  seeds=%d..%d  confidence=%g\n",
		label, n, procs, radix, d, seed, seed+uint64(seedsK)-1, ens.Confidence)
	t := &report.Table{
		Title:  "Ensemble summary (ms, breakdown summed over processors)",
		Header: []string{"metric", "mean", "stddev", "ci lo", "ci hi"},
	}
	for _, mt := range ens.Variant(label).Metrics {
		t.AddRow(mt.Name, report.F(mt.Mean/1e6), report.F(mt.Std/1e6),
			report.F(mt.CILo/1e6), report.F(mt.CIHi/1e6))
	}
	fmt.Println(t)
	return nil
}

// appendBench loads path (if it exists), appends one benchRun entry
// computed from the outcome, and rewrites the file, preserving the
// curated grids/micro sections.
func appendBench(path, label string, out *repro.Outcome, wall time.Duration, desc string) error {
	var bf benchFile
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &bf); err != nil {
			return fmt.Errorf("benchjson: %s exists but is not a bench file: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var accesses uint64
	for _, ps := range out.Result.Run.PerProc {
		accesses += ps.CacheAccesses
	}
	e := benchRun{
		Label:             desc,
		Revision:          label,
		WallMs:            float64(wall.Nanoseconds()) / 1e6,
		SimMs:             out.TimeNs / 1e6,
		SimulatedAccesses: accesses,
	}
	if accesses > 0 {
		e.NsPerAccess = float64(wall.Nanoseconds()) / float64(accesses)
		e.AccessesPerSec = float64(accesses) / wall.Seconds()
	}
	bf.Runs = append(bf.Runs, e)
	buf, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeFile creates path and streams write's output into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sortbench:", err)
	os.Exit(1)
}
