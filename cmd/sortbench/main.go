// Command sortbench runs one sorting experiment on the simulated DSM
// machine and prints its simulated time and per-processor breakdown.
//
// Usage:
//
//	sortbench -algo radix -model shmem -n 262144 -procs 16 -radix 8 \
//	          -dist gauss [-seed N] [-full] [-perproc] \
//	          [-trace out.json] [-metrics out.json]
//
// -trace writes a Chrome trace_event JSON file of the run (open it in
// Perfetto or chrome://tracing; one track per simulated processor).
// -metrics writes the run's flat metrics map as JSON. Both outputs are
// deterministic: the same experiment always produces identical bytes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		algo    = flag.String("algo", "radix", "algorithm: radix or sample")
		model   = flag.String("model", "shmem", "model: seq, ccsas, ccsas-new, mpi, mpi-sgi, shmem")
		n       = flag.Int("n", 1<<18, "key count")
		procs   = flag.Int("procs", 16, "processor count (power of two)")
		radix   = flag.Int("radix", 8, "radix size in bits")
		dist    = flag.String("dist", "gauss", "key distribution")
		seed    = flag.Uint64("seed", 0, "key generation seed")
		full    = flag.Bool("full", false, "use the full-size (unscaled) Origin2000 parameters")
		perproc = flag.Bool("perproc", false, "print the per-processor breakdown")
		traceTo = flag.String("trace", "", "write a Chrome trace_event JSON trace to this file")
		metrics = flag.String("metrics", "", "write the flat metrics map as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	a, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	m, err := repro.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	d, err := keys.ParseDist(*dist)
	if err != nil {
		fatal(err)
	}
	out, err := repro.Run(repro.Experiment{
		Algorithm: a, Model: m, N: *n, Procs: *procs, Radix: *radix,
		Dist: d, Seed: *seed, FullSize: *full,
		Trace: *traceTo != "" || *metrics != "",
	})
	if err != nil {
		fatal(err)
	}
	if *traceTo != "" {
		if err := writeFile(*traceTo, func(w io.Writer) error {
			return trace.WriteChrome(w, out.Trace())
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %s (Chrome trace_event JSON; open in Perfetto)\n", *traceTo)
	}
	if *metrics != "" {
		if err := writeFile(*metrics, out.Trace().WriteMetrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: wrote %s\n", *metrics)
	}

	fmt.Printf("%s/%s  n=%d  procs=%d  radix=%d  dist=%s\n",
		a, m, *n, *procs, *radix, d)
	fmt.Printf("simulated time: %s  (verified sorted: %v)\n",
		report.Ms(out.TimeNs), out.Verified)

	bds := out.Breakdowns()
	var sum, maxTotal float64
	for _, b := range bds {
		sum += b.Total()
		if b.Total() > maxTotal {
			maxTotal = b.Total()
		}
	}
	mean := sum / float64(len(bds))
	fmt.Printf("per-proc mean: %s  max: %s\n", report.Ms(mean), report.Ms(maxTotal))

	if *perproc {
		t := &report.Table{
			Title:  "Per-processor breakdown (ms)",
			Header: []string{"proc", "BUSY", "LMEM", "RMEM", "SYNC", "total"},
		}
		for i, b := range bds {
			t.AddRow(fmt.Sprintf("%d", i),
				report.F(b.Busy/1e6), report.F(b.LMem/1e6),
				report.F(b.RMem/1e6), report.F(b.Sync/1e6), report.F(b.Total()/1e6))
		}
		fmt.Println(t)
	}
}

// writeFile creates path and streams write's output into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sortbench:", err)
	os.Exit(1)
}
