// Command sweep runs the parameter sweeps and ablations DESIGN.md §4
// calls out: radix-size and buffer-depth sweeps, and the flat-memory /
// no-contention ablations that show which modeled mechanisms carry the
// paper's effects.
//
// Usage:
//
//	sweep -kind radix|bufdepth|flatmem|nocontention
//	      [-algo radix|sample|psrs] [-model shmem] [-n N] [-procs P] [-dist gauss]
//	      [-j N]
//
// Sweep points are independent deterministic simulations; -j runs them
// concurrently (default GOMAXPROCS) without changing any reported number.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	var (
		kind  = flag.String("kind", "radix", "sweep kind: radix, bufdepth, flatmem, nocontention")
		algo  = flag.String("algo", "radix", "algorithm: radix, sample, or psrs")
		model = flag.String("model", "shmem", "model")
		n     = flag.Int("n", 1<<18, "key count")
		procs = flag.Int("procs", 16, "processor count")
		dist  = flag.String("dist", "gauss", "key distribution")
		topo  = flag.String("topo", "", "interconnect kind (hypercube, fattree, torus, torus3d, dragonfly, numa2); default hypercube")
		seed  = flag.Uint64("seed", 0, "seed")
		par   = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent experiment runs (>= 1)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	if *par < 1 {
		fatal(fmt.Errorf("-j must be >= 1, got %d", *par))
	}
	if *n < 1 {
		fatal(fmt.Errorf("-n must be >= 1, got %d", *n))
	}
	if *procs < 1 {
		fatal(fmt.Errorf("-procs must be >= 1, got %d", *procs))
	}

	a, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	m, err := repro.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	d, err := keys.ParseDist(*dist)
	if err != nil {
		fatal(err)
	}
	tp, err := repro.ParseTopology(*topo)
	if err != nil {
		fatal(err)
	}
	base := repro.Experiment{
		Algorithm: a, Model: m, N: *n, Procs: *procs, Radix: 8, Dist: d, Topo: tp, Seed: *seed,
	}

	switch *kind {
	case "radix":
		radixes := []int{6, 7, 8, 9, 10, 11, 12}
		exps := make([]repro.Experiment, len(radixes))
		for i, r := range radixes {
			exps[i] = base
			exps[i].Radix = r
		}
		outs, err := repro.RunAll(*par, exps)
		if err != nil {
			fatal(err)
		}
		ref := 0.0
		for i, r := range radixes {
			if r == 8 {
				ref = outs[i].TimeNs
			}
		}
		t := &report.Table{
			Title:  fmt.Sprintf("Radix-size sweep: %s/%s n=%d procs=%d", a, m, *n, *procs),
			Header: []string{"radix", "passes", "time", "vs r=8"},
		}
		for i, r := range radixes {
			t.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%d", (31+r-1)/r),
				report.Ms(outs[i].TimeNs), report.F(outs[i].TimeNs/ref))
		}
		fmt.Println(t)

	case "bufdepth":
		// The paper §4.2: deeper per-pair buffers alleviate MPI's SYNC
		// stalls but do not eliminate them (and cost O(p^2) memory).
		depths := []int{1, 2, 4, 16, 64}
		exps := make([]repro.Experiment, len(depths))
		for i, depth := range depths {
			exps[i] = base
			exps[i].Model = repro.MPI
			exps[i].MPIBufDepth = depth
		}
		outs, err := repro.RunAll(*par, exps)
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title:  fmt.Sprintf("MPI window-depth ablation: %s n=%d procs=%d", a, *n, *procs),
			Header: []string{"depth", "time", "sum SYNC (ms)"},
		}
		for i, depth := range depths {
			var sync float64
			for _, b := range outs[i].Breakdowns() {
				sync += b.Sync
			}
			t.AddRow(fmt.Sprintf("%d", depth), report.Ms(outs[i].TimeNs), report.F(sync/1e6))
		}
		fmt.Println(t)

	case "flatmem", "nocontention":
		var models []repro.Model
		for _, mo := range repro.Models(a) {
			if mo != repro.MPISGI {
				models = append(models, mo)
			}
		}
		// Two cells per model: real then ablated.
		exps := make([]repro.Experiment, 0, 2*len(models))
		for _, mo := range models {
			e := base
			e.Model = mo
			exps = append(exps, e)
			if *kind == "flatmem" {
				e.FlatMemory = true
			} else {
				e.NoContention = true
			}
			exps = append(exps, e)
		}
		outs, err := repro.RunAll(*par, exps)
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title: fmt.Sprintf("%s ablation: %s n=%d procs=%d (all radix models)",
				*kind, a, *n, *procs),
			Header: []string{"model", "real", "ablated", "speedup lost"},
		}
		for i, mo := range models {
			real, abl := outs[2*i], outs[2*i+1]
			t.AddRow(string(mo), report.Ms(real.TimeNs), report.Ms(abl.TimeNs),
				report.F(real.TimeNs/abl.TimeNs))
		}
		fmt.Println(t)

	default:
		fatal(fmt.Errorf("unknown sweep kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
