// Command sweep runs the parameter sweeps and ablations DESIGN.md §4
// calls out: radix-size and buffer-depth sweeps, and the flat-memory /
// no-contention ablations that show which modeled mechanisms carry the
// paper's effects.
//
// Usage:
//
//	sweep -kind radix|bufdepth|flatmem|nocontention
//	      [-algo radix] [-model shmem] [-n N] [-procs P] [-dist gauss]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	var (
		kind  = flag.String("kind", "radix", "sweep kind: radix, bufdepth, flatmem, nocontention")
		algo  = flag.String("algo", "radix", "algorithm")
		model = flag.String("model", "shmem", "model")
		n     = flag.Int("n", 1<<18, "key count")
		procs = flag.Int("procs", 16, "processor count")
		dist  = flag.String("dist", "gauss", "key distribution")
		seed  = flag.Uint64("seed", 0, "seed")
	)
	flag.Parse()

	a, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	m, err := repro.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	d, err := keys.ParseDist(*dist)
	if err != nil {
		fatal(err)
	}
	base := repro.Experiment{
		Algorithm: a, Model: m, N: *n, Procs: *procs, Radix: 8, Dist: d, Seed: *seed,
	}

	switch *kind {
	case "radix":
		t := &report.Table{
			Title:  fmt.Sprintf("Radix-size sweep: %s/%s n=%d procs=%d", a, m, *n, *procs),
			Header: []string{"radix", "passes", "time", "vs r=8"},
		}
		ref := 0.0
		for _, r := range []int{6, 7, 8, 9, 10, 11, 12} {
			e := base
			e.Radix = r
			out, err := repro.Run(e)
			if err != nil {
				fatal(err)
			}
			if r == 8 {
				ref = out.TimeNs
			}
			t.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%d", (31+r-1)/r),
				report.Ms(out.TimeNs), report.F(out.TimeNs/refOr(ref, out.TimeNs)))
		}
		fmt.Println(t)

	case "bufdepth":
		// The paper §4.2: deeper per-pair buffers alleviate MPI's SYNC
		// stalls but do not eliminate them (and cost O(p^2) memory).
		e := base
		e.Model = repro.MPI
		t := &report.Table{
			Title:  fmt.Sprintf("MPI window-depth ablation: %s n=%d procs=%d", a, *n, *procs),
			Header: []string{"depth", "time", "sum SYNC (ms)"},
		}
		for _, depth := range []int{1, 2, 4, 16, 64} {
			e.MPIBufDepth = depth
			out, err := repro.Run(e)
			if err != nil {
				fatal(err)
			}
			var sync float64
			for _, b := range out.Breakdowns() {
				sync += b.Sync
			}
			t.AddRow(fmt.Sprintf("%d", depth), report.Ms(out.TimeNs), report.F(sync/1e6))
		}
		fmt.Println(t)

	case "flatmem", "nocontention":
		t := &report.Table{
			Title: fmt.Sprintf("%s ablation: %s n=%d procs=%d (all radix models)",
				*kind, a, *n, *procs),
			Header: []string{"model", "real", "ablated", "speedup lost"},
		}
		for _, mo := range repro.Models(a) {
			if mo == repro.MPISGI {
				continue
			}
			e := base
			e.Model = mo
			real, err := repro.Run(e)
			if err != nil {
				fatal(err)
			}
			if *kind == "flatmem" {
				e.FlatMemory = true
			} else {
				e.NoContention = true
			}
			abl, err := repro.Run(e)
			if err != nil {
				fatal(err)
			}
			t.AddRow(string(mo), report.Ms(real.TimeNs), report.Ms(abl.TimeNs),
				report.F(real.TimeNs/abl.TimeNs))
		}
		fmt.Println(t)

	default:
		fatal(fmt.Errorf("unknown sweep kind %q", *kind))
	}
}

func refOr(ref, v float64) float64 {
	if ref > 0 {
		return ref
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
