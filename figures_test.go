package repro

import (
	"strings"
	"testing"

	"repro/internal/keys"
)

// tinyOpts keeps harness tests fast: two small classes, two processor
// counts, a narrow radix sweep.
func tinyOpts() Options {
	return Options{
		Procs:        []int{4, 8},
		Sizes:        SizeClasses[:2],
		RadixSweep:   []int{7, 8},
		TableRadixes: []int{8},
	}
}

func TestHarnessTable1(t *testing.T) {
	h := NewHarness(tinyOpts())
	tab, times, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("got %d times", len(times))
	}
	if times[1] <= times[0] {
		t.Errorf("sequential time should grow with size: %v", times)
	}
	// 4x the keys must cost at least 4x the time (capacity effects only
	// add on top).
	if times[1] < 3.9*times[0] {
		t.Errorf("4x keys cost only %.2fx the time", times[1]/times[0])
	}
	if !strings.Contains(tab.String(), "1M") {
		t.Error("table missing size labels")
	}
}

func TestHarnessBaselineCaching(t *testing.T) {
	h := NewHarness(tinyOpts())
	a, err := h.BaselineTime(SizeClasses[0].ScaledN, keys.Gauss)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.BaselineTime(SizeClasses[0].ScaledN, keys.Gauss)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached baseline differs: %v vs %v", a, b)
	}
	if len(h.baseline) != 1 {
		t.Errorf("baseline cache holds %d entries, want 1", len(h.baseline))
	}
}

func TestHarnessFigure1Shape(t *testing.T) {
	h := NewHarness(tinyOpts())
	f, err := h.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// NEW must beat SGI in every cell for radix sort.
	for _, s := range f.Sizes {
		for _, p := range f.Procs {
			if f.Get("NEW", s, p) <= f.Get("SGI", s, p) {
				t.Errorf("%s@%dP: NEW (%v) should beat SGI (%v)",
					s, p, f.Get("NEW", s, p), f.Get("SGI", s, p))
			}
		}
	}
	if !strings.Contains(f.Table().String(), "NEW") {
		t.Error("rendered table missing variant")
	}
}

func TestHarnessFigure3Shape(t *testing.T) {
	h := NewHarness(tinyOpts())
	f, err := h.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// At the 4M class, SHMEM beats the original CC-SAS.
	if f.Get("SHMEM", "4M", 8) <= f.Get("CC-SAS", "4M", 8) {
		t.Errorf("SHMEM (%v) should beat CC-SAS (%v) at the 4M class",
			f.Get("SHMEM", "4M", 8), f.Get("CC-SAS", "4M", 8))
	}
	for _, v := range f.Variants {
		for _, s := range f.Sizes {
			for _, p := range f.Procs {
				if f.Get(v, s, p) <= 0 {
					t.Errorf("%s %s@%dP: nonpositive speedup", v, s, p)
				}
			}
		}
	}
}

func TestHarnessFigure4Breakdown(t *testing.T) {
	h := NewHarness(Options{Procs: []int{8}, Sizes: SizeClasses[:1]})
	f, err := h.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 4 {
		t.Fatalf("got %d panels, want 4", len(f.Panels))
	}
	for _, panel := range f.Panels {
		if len(panel.PerProc) != 8 {
			t.Errorf("panel %s has %d procs", panel.Name, len(panel.PerProc))
		}
		if panel.Mean().Total() <= 0 {
			t.Errorf("panel %s empty", panel.Name)
		}
	}
	if !strings.Contains(f.Chart(), "BUSY") {
		t.Error("chart missing legend")
	}
}

func TestHarnessFigure5Shape(t *testing.T) {
	h := NewHarness(Options{Procs: []int{8}, Sizes: SizeClasses[:1]})
	f, err := h.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Gauss is the reference: exactly 1.
	if got := f.Get("gauss", "1M"); got != 1 {
		t.Errorf("gauss relative time = %v, want 1", got)
	}
	// Local is fastest.
	for _, v := range f.Variants {
		if v == "local" {
			continue
		}
		if f.Get("local", "1M") > f.Get(v, "1M") {
			t.Errorf("local (%v) slower than %s (%v)", f.Get("local", "1M"), v, f.Get(v, "1M"))
		}
	}
}

func TestHarnessFigure6Shape(t *testing.T) {
	h := NewHarness(Options{Procs: []int{8}, Sizes: SizeClasses[:2], RadixSweep: []int{6, 8, 12}})
	f, err := h.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Get("r=8", "1M"); got != 1 {
		t.Errorf("r=8 must be the reference, got %v", got)
	}
	// A radix far too large for the data is worse than r=8 at the
	// smallest class (too many buckets per key).
	if f.Get("r=12", "1M") <= 1 {
		t.Errorf("r=12 at the smallest class should lose to r=8, got %v", f.Get("r=12", "1M"))
	}
}

func TestHarnessTables23(t *testing.T) {
	h := NewHarness(Options{Procs: []int{8}, Sizes: SizeClasses[:2], TableRadixes: []int{8, 11}})
	bt, err := h.Tables23()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Radix, Sample} {
		for _, s := range bt.Sizes {
			cell := bt.Best[alg][s][8]
			if cell.TimeNs <= 0 {
				t.Errorf("%s/%s: empty best cell", alg, s)
			}
			if cell.Model == "" || cell.Radix == 0 {
				t.Errorf("%s/%s: missing winner %+v", alg, s, cell)
			}
		}
	}
	t2 := bt.Table2().String()
	t3 := bt.Table3().String()
	if !strings.Contains(t2, "radix 8P") || !strings.Contains(t3, "sample 8P") {
		t.Error("rendered tables missing headers")
	}
}

func TestHarnessProgressCallback(t *testing.T) {
	var lines int
	opts := Options{
		Procs: []int{4}, Sizes: SizeClasses[:1],
		Progress: func(string, ...any) { lines++ },
	}
	h := NewHarness(opts)
	if _, _, err := h.Table1(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("progress callback never fired")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Procs) != 3 || len(o.Sizes) != 5 || len(o.RadixSweep) != 7 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.Progress == nil {
		t.Error("nil progress not defaulted")
	}
}

func TestHarnessFigureSkew(t *testing.T) {
	h := NewHarness(Options{Procs: []int{8}, Sizes: SizeClasses[:1]})
	f, err := h.FigureSkew()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Variants) != 1+len(keys.SkewDists) {
		t.Fatalf("got %d rows, want gauss + %d skew dists", len(f.Variants), len(keys.SkewDists))
	}
	if len(f.Sizes) != 3 {
		t.Fatalf("got %d program columns, want 3", len(f.Sizes))
	}
	for _, prog := range f.Sizes {
		if got := f.Get(keys.Gauss.String(), prog); got != 1 {
			t.Errorf("%s gauss reference cell = %v, want 1", prog, got)
		}
		for _, d := range keys.SkewDists {
			if v := f.Get(d.String(), prog); v <= 0 {
				t.Errorf("%s/%s relative time %v not positive", prog, d, v)
			}
		}
	}
	// The headline: zipf skew must cost sample sort more than radix sort
	// (splitter-directed exchange vs blocked redistribution).
	if zr, zs := f.Get("zipf", "radix/shmem"), f.Get("zipf", "sample/ccsas"); zs <= zr {
		t.Errorf("zipf: sample relative cost %v <= radix %v", zs, zr)
	}
}
