package repro

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/keys"
	"repro/internal/trace"
)

// exportTrace runs e with tracing and returns the Chrome and metrics
// exports.
func exportTrace(t *testing.T, e Experiment) ([]byte, []byte) {
	t.Helper()
	e.Trace = true
	out, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	tr := out.Trace()
	if tr == nil {
		t.Fatal("Experiment.Trace set but Outcome.Trace() == nil")
	}
	var chrome, metrics bytes.Buffer
	if err := trace.WriteChrome(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	return chrome.Bytes(), metrics.Bytes()
}

// TestTraceDeterminism is the tentpole's core guarantee: two runs of the
// same Experiment produce byte-identical trace and metrics exports, for
// every programming model.
func TestTraceDeterminism(t *testing.T) {
	cases := []Experiment{
		{Algorithm: Radix, Model: CCSAS, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Radix, Model: CCSASNew, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Radix, Model: MPI, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Radix, Model: SHMEM, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Sample, Model: CCSAS, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Sample, Model: MPI, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
		{Algorithm: Sample, Model: SHMEM, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss},
	}
	for _, e := range cases {
		e := e
		t.Run(e.Label(), func(t *testing.T) {
			t.Parallel()
			c1, m1 := exportTrace(t, e)
			c2, m2 := exportTrace(t, e)
			if !bytes.Equal(c1, c2) {
				t.Error("Chrome trace exports differ between identical runs")
			}
			if !bytes.Equal(m1, m2) {
				t.Error("metrics exports differ between identical runs")
			}
			// And the export is valid trace_event JSON.
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(c1, &doc); err != nil {
				t.Fatalf("invalid Chrome trace JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Error("empty traceEvents")
			}
		})
	}
}

// TestTraceModelEventKinds checks each programming model emits its own
// typed communication events: MPI send/recv (and flow stalls under the
// 1-deep Direct window), SHMEM put/get, CC-SAS message waits on flags,
// and barriers everywhere.
func TestTraceModelEventKinds(t *testing.T) {
	count := func(e Experiment) map[trace.EventKind]int {
		e.Trace = true
		out, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[trace.EventKind]int)
		for _, pt := range out.Trace().Procs {
			for _, ev := range pt.Events {
				got[ev.Kind]++
			}
		}
		return got
	}
	base := Experiment{Algorithm: Radix, N: 1 << 14, Procs: 8, Radix: 8, Dist: keys.Gauss}

	mpiE := base
	mpiE.Model = MPI
	mpiKinds := count(mpiE)
	if mpiKinds[trace.EvSend] == 0 || mpiKinds[trace.EvRecv] == 0 {
		t.Errorf("MPI radix emitted no send/recv events: %v", mpiKinds)
	}
	if mpiKinds[trace.EvFlowStall] == 0 {
		t.Errorf("Direct MPI (1-deep window) emitted no flow-stall events: %v", mpiKinds)
	}

	shE := base
	shE.Model = SHMEM
	shKinds := count(shE)
	if shKinds[trace.EvGet]+shKinds[trace.EvPut] == 0 {
		t.Errorf("SHMEM radix emitted no put/get events: %v", shKinds)
	}
	if shKinds[trace.EvBarrier] == 0 {
		t.Errorf("SHMEM radix emitted no barrier events: %v", shKinds)
	}

	ccE := base
	ccE.Model = CCSAS
	ccKinds := count(ccE)
	if ccKinds[trace.EvMsgWait] == 0 {
		t.Errorf("CC-SAS radix (prefix-tree flags) emitted no msg-wait events: %v", ccKinds)
	}
	if ccKinds[trace.EvBarrier] == 0 {
		t.Errorf("CC-SAS radix emitted no barrier events: %v", ccKinds)
	}
}

// TestTraceDisabledByDefault checks tracing stays off (nil sink) unless
// requested.
func TestTraceDisabledByDefault(t *testing.T) {
	out, err := Run(Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace() != nil {
		t.Error("Outcome.Trace() != nil for an untraced experiment")
	}
}

// TestHarnessTraceParallelismInvariance proves the harness's trace
// stream is byte-identical at -j 1 and -j 8 — collection order is
// submission order, never completion order.
func TestHarnessTraceParallelismInvariance(t *testing.T) {
	export := func(par int) []byte {
		opts := tinyOpts()
		opts.Sizes = SizeClasses[:1]
		opts.Trace = true
		opts.Parallelism = par
		h := NewHarness(opts)
		if _, err := h.Figure3(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, h.Traces()...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	j1 := export(1)
	j8 := export(8)
	if !bytes.Equal(j1, j8) {
		t.Error("harness trace bytes differ between -j 1 and -j 8")
	}
	if len(j1) == 0 {
		t.Error("empty export")
	}
}

// TestTracePhaseMetricsCoverTotal checks the per-phase metric breakdowns
// sum (within float tolerance) to the whole-run breakdown: no charge
// escapes phase attribution in any model's sort.
func TestTracePhaseMetricsCoverTotal(t *testing.T) {
	for _, model := range []Model{CCSAS, CCSASNew, MPI, SHMEM} {
		e := Experiment{Algorithm: Radix, Model: model, N: 1 << 13, Procs: 4, Radix: 8, Trace: true}
		out, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		m := out.Trace().Metrics()
		for _, bucket := range []string{"busy_ns", "lmem_ns", "rmem_ns", "sync_ns"} {
			total := m["breakdown."+bucket]
			var phased float64
			for k, v := range m {
				if len(k) > 6 && k[:6] == "phase." && k[len(k)-len(bucket):] == bucket {
					phased += v
				}
			}
			if diff := total - phased; diff > 1e-6*total+1e-3 || diff < -(1e-6*total+1e-3) {
				t.Errorf("%s: %s phases sum to %v, total %v (unlabeled charges?)",
					model, bucket, phased, total)
			}
		}
	}
}
