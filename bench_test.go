package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its table/figure through the same Harness
// the paperfigs command uses, on a reduced default grid (the two
// smallest size classes, 16 processors) so `go test -bench=.` finishes
// in minutes on a small host; run `go run ./cmd/paperfigs` for the full
// grids. Simulated times are attached as custom metrics so benchmark
// output doubles as a compact record of the reproduced numbers.

import (
	"runtime"
	"testing"

	"repro/internal/keys"
)

// benchOpts returns the reduced grid used by the benchmarks. The
// harness defaults to Parallelism = GOMAXPROCS, so these measure the
// concurrent scheduler; the *Serial variants below pin Parallelism to 1
// for a wall-clock comparison (simulated metrics are identical by
// construction).
func benchOpts() Options {
	return Options{
		Procs:      []int{16},
		Sizes:      SizeClasses[:2], // 1M, 4M classes
		RadixSweep: []int{7, 8, 11},
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := NewHarness(benchOpts())
		_, times, err := h.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(times[len(times)-1]/1e6, "simMs/seq-4Mclass")
	}
}

func benchSpeedup(b *testing.B, fn func(h *Harness) (*SpeedupFigure, error), variant string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := NewHarness(benchOpts())
		f, err := fn(h)
		if err != nil {
			b.Fatal(err)
		}
		last := f.Sizes[len(f.Sizes)-1]
		b.ReportMetric(f.Get(variant, last, 16), "speedup/"+variant)
	}
}

func BenchmarkFigure1(b *testing.B) {
	benchSpeedup(b, func(h *Harness) (*SpeedupFigure, error) { return h.Figure1() }, "NEW")
}

func BenchmarkFigure2(b *testing.B) {
	benchSpeedup(b, func(h *Harness) (*SpeedupFigure, error) { return h.Figure2() }, "NEW")
}

func BenchmarkFigure3(b *testing.B) {
	benchSpeedup(b, func(h *Harness) (*SpeedupFigure, error) { return h.Figure3() }, "SHMEM")
}

func BenchmarkFigure7(b *testing.B) {
	benchSpeedup(b, func(h *Harness) (*SpeedupFigure, error) { return h.Figure7() }, "CC-SAS")
}

func benchBreakdown(b *testing.B, fn func(h *Harness) (*BreakdownFigure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Breakdown figures run at the 64M class on the grid's largest
		// processor count; restrict to keep bench time bounded.
		h := NewHarness(Options{Procs: []int{16}, Sizes: SizeClasses[:2]})
		f, err := fn(h)
		if err != nil {
			b.Fatal(err)
		}
		m := f.Panels[0].Mean()
		b.ReportMetric(m.Mem()/1e3, "memUs/"+f.Panels[0].Name)
	}
}

func BenchmarkFigure4(b *testing.B) {
	benchBreakdown(b, func(h *Harness) (*BreakdownFigure, error) { return h.Figure4() })
}

func BenchmarkFigure8(b *testing.B) {
	benchBreakdown(b, func(h *Harness) (*BreakdownFigure, error) { return h.Figure8() })
}

func benchRelative(b *testing.B, fn func(h *Harness) (*RelativeFigure, error), variant string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := NewHarness(benchOpts())
		f, err := fn(h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Get(variant, f.Sizes[0]), "relTime/"+variant)
	}
}

func BenchmarkFigure5(b *testing.B) {
	benchRelative(b, func(h *Harness) (*RelativeFigure, error) { return h.Figure5() },
		keys.Local.String())
}

func BenchmarkFigure6(b *testing.B) {
	benchRelative(b, func(h *Harness) (*RelativeFigure, error) { return h.Figure6() }, "r=11")
}

func BenchmarkFigure9(b *testing.B) {
	benchRelative(b, func(h *Harness) (*RelativeFigure, error) { return h.Figure9() },
		keys.Local.String())
}

func BenchmarkFigure10(b *testing.B) {
	benchRelative(b, func(h *Harness) (*RelativeFigure, error) { return h.Figure10() }, "r=11")
}

func BenchmarkTable2And3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := NewHarness(Options{
			Procs:        []int{16},
			Sizes:        SizeClasses[:2],
			TableRadixes: []int{8, 11},
		})
		bt, err := h.Tables23()
		if err != nil {
			b.Fatal(err)
		}
		cell := bt.Best[Radix][bt.Sizes[0]][16]
		b.ReportMetric(cell.TimeNs/1e6, "bestMs/radix-1M-16P")
	}
}

// benchGridAtParallelism regenerates Figure 3's grid at a fixed
// scheduler width; the pair of benchmarks below records the concurrent
// scheduler's host-time win in benchmark output.
func benchGridAtParallelism(b *testing.B, par int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Parallelism = par
		h := NewHarness(opts)
		f, err := h.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Get("SHMEM", f.Sizes[len(f.Sizes)-1], 16), "speedup/SHMEM")
	}
}

func BenchmarkGridSchedulerSerial(b *testing.B) { benchGridAtParallelism(b, 1) }

func BenchmarkGridSchedulerParallel(b *testing.B) {
	benchGridAtParallelism(b, runtime.GOMAXPROCS(0))
}

// BenchmarkBigCellFig4 runs one fig4-representative cell (radix sort,
// CC-SAS-NEW, 4M keys, 64 processors) — the class of cell that
// dominates the full grids' host time. It is the headline number for
// the batched access-stream engine; wired into CI's bench-smoke step.
func BenchmarkBigCellFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Run(Experiment{
			Algorithm: Radix, Model: CCSASNew,
			N: 4194304, Procs: 64, Radix: 8, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out.TimeNs/1e6, "simMs")
	}
}

// BenchmarkBigCellFig8 runs one fig8-representative cell (sample sort,
// CC-SAS, 4M keys, 64 processors).
func BenchmarkBigCellFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Run(Experiment{
			Algorithm: Sample, Model: CCSAS,
			N: 4194304, Procs: 64, Radix: 8, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out.TimeNs/1e6, "simMs")
	}
}

// BenchmarkSingleSorts times each algorithm/model pair directly (the
// kernel the library exposes), one sub-benchmark per combination.
func BenchmarkSingleSorts(b *testing.B) {
	for _, alg := range []Algorithm{Radix, Sample} {
		for _, mo := range Models(alg) {
			b.Run(string(alg)+"/"+string(mo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := Run(Experiment{
						Algorithm: alg, Model: mo,
						N: SizeClasses[0].ScaledN, Procs: 16, Radix: 8,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(out.TimeNs/1e6, "simMs")
				}
			})
		}
	}
}
