// Package perfmodel implements the paper's stated future work: an
// analytic formula that predicts parallel radix sort performance per
// programming model from machine parameters and workload shape, without
// running the program.
//
// The model decomposes one radix pass into the paper's phases —
// histogram sweep, histogram accumulation/exchange, permutation, and
// synchronization — and prices each from first principles using the same
// machine constants the simulator uses. Its purpose is what the authors
// intended: given a profile-free description of machine and workload,
// say which programming model will win and by roughly how much. The
// package's tests validate the predictions against the simulator.
package perfmodel

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/shmem"
	"repro/internal/topology"
)

// Workload describes one radix sort run.
type Workload struct {
	// N is the total key count; Procs the processor count; Radix the
	// digit width in bits; KeyBits the key width (31 in the paper).
	N, Procs, Radix, KeyBits int
}

// Passes returns the pass count.
func (w Workload) Passes() int {
	kb := w.KeyBits
	if kb == 0 {
		kb = 31
	}
	return (kb + w.Radix - 1) / w.Radix
}

// Model names a predicted programming model.
type Model string

// Predicted models.
const (
	CCSAS    Model = "ccsas"
	CCSASNew Model = "ccsas-new"
	MPI      Model = "mpi"
	SHMEM    Model = "shmem"
)

// Prediction is the analytic estimate for one model.
type Prediction struct {
	Model Model
	// TimeNs is the predicted execution time.
	TimeNs float64
	// Phases itemizes per-pass costs (already multiplied by pass count),
	// keyed by phase name: "sweep", "histogram", "permute", "transfer",
	// "sync".
	Phases map[string]float64
}

// Predictor prices workloads on one machine configuration.
type Predictor struct {
	cfg   machine.Config
	mpi   mpi.Config
	shmem shmem.Config
	// remoteAvgNs is the mean uncontended remote read latency the
	// three-hop estimate uses. On the default hypercube it is the
	// historical closed form (RemoteBase + 2·Hop, preserved bit-for-bit);
	// on other interconnects it is the exact mean over all remote node
	// pairs of the built network.
	remoteAvgNs float64
}

// New builds a predictor. The mpi/shmem configs must match the ones the
// programs run with (scaled on the scaled machine).
func New(cfg machine.Config, mpiCfg mpi.Config, shmemCfg shmem.Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pr := &Predictor{cfg: cfg, mpi: mpiCfg, shmem: shmemCfg}
	if cfg.Topology.Kind == "" || cfg.Topology.Kind == topology.KindHypercube {
		pr.remoteAvgNs = cfg.Topology.RemoteBaseLatency + cfg.Topology.HopLatency*2
	} else {
		net, err := topology.New(cfg.Topology)
		if err != nil {
			return nil, err
		}
		sum, pairs := 0.0, 0
		for a := 0; a < net.Nodes(); a++ {
			for b := 0; b < net.Nodes(); b++ {
				if a != b {
					sum += net.ReadLatency(a, b)
					pairs++
				}
			}
		}
		pr.remoteAvgNs = cfg.Topology.RemoteBaseLatency
		if pairs > 0 {
			pr.remoteAvgNs = sum / float64(pairs)
		}
	}
	return pr, nil
}

// constants mirroring the simulator's per-key ALU charges.
const (
	sweepOpsPerKey   = 8 + 3 // digit extraction + histogram access bookkeeping
	permuteOpsPerKey = 13
)

// lineKeys returns keys per cache line.
func (pr *Predictor) lineKeys() float64 { return float64(pr.cfg.Cache.LineSize) / 4 }

// localMissNs prices a local two-hop fill.
func (pr *Predictor) localMissNs() float64 {
	return pr.cfg.Topology.LocalLatency + pr.cfg.Coherence.DirOccupancy +
		float64(pr.cfg.Coherence.DataBytes)/pr.cfg.Topology.LinkBandwidth
}

// remoteMissNs prices an average remote three-hop intervention.
func (pr *Predictor) remoteMissNs() float64 {
	avg := pr.remoteAvgNs
	return avg + pr.cfg.Coherence.DirOccupancy + avg +
		float64(pr.cfg.Coherence.DataBytes)/pr.cfg.Topology.LinkBandwidth
}

// missRatio estimates the fraction of per-key accesses that miss in a
// streaming pass: one miss per line when the working set exceeds the
// cache, vanishing when it fits comfortably.
func (pr *Predictor) missRatio(bytesPerProc int) float64 {
	perLine := 1 / pr.lineKeys()
	ratio := float64(2*bytesPerProc) / float64(pr.cfg.Cache.Size) // src+dst toggling
	if ratio >= 1 {
		return perLine
	}
	return perLine * ratio
}

// tlbMissRatio estimates scattered-write TLB misses per key: the writer
// cycles through one active page per bucket, competing with the read
// stream for the TLB, so misses ramp smoothly once the active set
// reaches about half the TLB and saturate as it dwarfs it.
func (pr *Predictor) tlbMissRatio(spanBytes, buckets int) float64 {
	pages := spanBytes / pr.cfg.TLB.PageSize
	active := buckets
	if active > pages {
		active = pages
	}
	pressure := float64(active) / float64(pr.cfg.TLB.Entries)
	if pressure <= 0.5 {
		return 0
	}
	return 1 - 1/(2*pressure)
}

// Predict returns the analytic estimate for one model.
func (pr *Predictor) Predict(model Model, w Workload) (*Prediction, error) {
	if w.N <= 0 || w.Procs <= 0 || w.Radix < 1 || w.Radix > 16 {
		return nil, fmt.Errorf("perfmodel: bad workload %+v", w)
	}
	passes := float64(w.Passes())
	np := float64(w.N / w.Procs)
	buckets := 1 << w.Radix
	opNs := pr.cfg.OpNs
	overlap := pr.cfg.MissOverlap

	phases := map[string]float64{}

	// Histogram sweep: busy + streamed key reads + TLB-free sequential
	// access.
	sweepBusy := np * sweepOpsPerKey * opNs
	sweepMem := np * pr.missRatio(int(np)*4) * pr.localMissNs() / overlap
	phases["sweep"] = passes * (sweepBusy + sweepMem)

	// Permutation: busy + the local write stream (all models permute
	// locally first except plain CC-SAS, which scatters remotely).
	permBusy := np * permuteOpsPerKey * opNs
	tlbLocal := np * pr.tlbMissRatio(int(np)*4, buckets) * pr.cfg.TLBMissNs
	phases["permute"] = passes * (permBusy + tlbLocal)

	remoteFrac := 1 - 1/float64(w.Procs) // fraction of keys leaving the processor
	bytesMoved := np * 4 * remoteFrac
	wire := bytesMoved / pr.cfg.Topology.LinkBandwidth

	switch model {
	case CCSAS:
		// Scattered remote writes: per-line three-hop ownership transfers
		// plus writebacks, under saturated-scatter contention; TLB misses
		// span the whole output array.
		cont := contentionScattered(pr.cfg, w.Procs, int(np)*4)
		lines := np / pr.lineKeys() * remoteFrac
		scatter := lines * (pr.remoteMissNs()/overlap + wbNs(pr.cfg)) * cont
		tlbGlobal := np * pr.tlbMissRatio(w.N*4, buckets) * pr.cfg.TLBMissNs
		phases["transfer"] = passes * scatter
		phases["permute"] = passes * (permBusy + tlbGlobal)
		phases["histogram"] = passes * pr.treeNs(w.Procs, buckets)
	case CCSASNew:
		cont := 1 + (contentionScattered(pr.cfg, w.Procs, int(np)*4)-1)/2
		lines := np / pr.lineKeys() * remoteFrac
		phases["transfer"] = passes * lines * (pr.remoteMissNs() / overlap) * cont
		phases["histogram"] = passes * pr.treeNs(w.Procs, buckets)
	case SHMEM:
		chunks := float64(buckets)
		get := pr.shmem.GetOverheadNs + pr.cfg.Topology.RemoteBaseLatency
		phases["transfer"] = passes * (chunks*get + wire)
		phases["histogram"] = passes * pr.collectNs(w.Procs, buckets)
	case MPI:
		chunks := float64(buckets)
		msg := pr.mpi.SendOverheadNs + pr.mpi.RecvOverheadNs + pr.cfg.Topology.RemoteBaseLatency
		phases["transfer"] = passes * (chunks*msg + wire)
		phases["histogram"] = passes * pr.allgatherNs(w.Procs, buckets)
	default:
		return nil, fmt.Errorf("perfmodel: unknown model %q", model)
	}

	// Synchronization: two barriers per pass.
	logp := 0
	for 1<<logp < w.Procs {
		logp++
	}
	barrier := pr.cfg.BarrierBaseNs + pr.cfg.BarrierPerLogNs*float64(logp)
	phases["sync"] = passes * 2 * barrier

	total := 0.0
	for _, v := range phases {
		total += v
	}
	return &Prediction{Model: model, TimeNs: total, Phases: phases}, nil
}

// PredictAll ranks all models for a workload, best first.
func (pr *Predictor) PredictAll(w Workload) ([]*Prediction, error) {
	models := []Model{SHMEM, MPI, CCSASNew, CCSAS}
	out := make([]*Prediction, 0, len(models))
	for _, m := range models {
		p, err := pr.Predict(m, w)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	// Insertion sort by predicted time.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TimeNs < out[j-1].TimeNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// treeNs prices the CC-SAS prefix tree's critical path.
func (pr *Predictor) treeNs(procs, buckets int) float64 {
	if procs == 1 {
		return 0
	}
	levels := 0
	for 1<<levels < procs {
		levels++
	}
	lines := float64(buckets*4) / float64(pr.cfg.Cache.LineSize)
	perLevel := lines*pr.remoteMissNs()/pr.cfg.MissOverlap +
		pr.cfg.Topology.RemoteBaseLatency + // flag transfer
		2*float64(buckets)*pr.cfg.OpNs
	return 2 * float64(levels) * perLevel
}

// collectNs prices the SHMEM histogram allgather.
func (pr *Predictor) collectNs(procs, buckets int) float64 {
	bytes := float64((procs - 1) * buckets * 4)
	gets := float64(procs - 1)
	return pr.shmem.CollectiveEntryNs +
		gets*(pr.shmem.GetOverheadNs+pr.cfg.Topology.RemoteBaseLatency) +
		bytes/pr.cfg.Topology.LinkBandwidth
}

// allgatherNs prices the MPI recursive-doubling histogram allgather.
func (pr *Predictor) allgatherNs(procs, buckets int) float64 {
	if procs == 1 {
		return 0
	}
	rounds := 0
	for 1<<rounds < procs {
		rounds++
	}
	bytes := float64((procs - 1) * buckets * 4)
	perRound := pr.mpi.SendOverheadNs + pr.mpi.RecvOverheadNs + pr.cfg.Topology.RemoteBaseLatency
	return float64(rounds)*perRound + bytes/pr.cfg.Topology.LinkBandwidth
}

// wbNs prices one writeback's charged share.
func wbNs(cfg machine.Config) float64 {
	return cfg.Coherence.DirOccupancy +
		float64(cfg.Coherence.DataBytes+cfg.Coherence.CtrlBytes)/cfg.Topology.LinkBandwidth
}

// contentionScattered mirrors the machine's saturation model.
func contentionScattered(cfg machine.Config, q, bytesPerProc int) float64 {
	if q <= 1 {
		return 1
	}
	load := float64(bytesPerProc) / float64(cfg.Cache.Size)
	if load < cfg.ContentionLoadFloor {
		load = cfg.ContentionLoadFloor
	}
	if load > 1 {
		load = 1
	}
	return 1 + cfg.ContentionScatteredPerProc*float64(q-1)*load
}
