package perfmodel

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/shmem"
	"repro/internal/sorts"
)

// scaledPredictor mirrors the experiment harness's scaled configuration.
func scaledPredictor(t *testing.T, procs int) *Predictor {
	t.Helper()
	cfg := machine.Origin2000Scaled(procs)
	pr, err := New(cfg,
		mpi.DefaultDirect().Scaled(machine.ScaleFactor),
		shmem.DefaultConfig().Scaled(machine.ScaleFactor))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pr
}

func TestPredictValidation(t *testing.T) {
	pr := scaledPredictor(t, 16)
	bad := []Workload{
		{N: 0, Procs: 16, Radix: 8},
		{N: 1 << 16, Procs: 0, Radix: 8},
		{N: 1 << 16, Procs: 16, Radix: 0},
		{N: 1 << 16, Procs: 16, Radix: 20},
	}
	for _, w := range bad {
		if _, err := pr.Predict(SHMEM, w); err == nil {
			t.Errorf("accepted %+v", w)
		}
	}
	if _, err := pr.Predict("bogus", Workload{N: 1 << 16, Procs: 16, Radix: 8}); err == nil {
		t.Error("accepted unknown model")
	}
}

func TestWorkloadPasses(t *testing.T) {
	if got := (Workload{Radix: 8}).Passes(); got != 4 {
		t.Errorf("radix 8 passes = %d", got)
	}
	if got := (Workload{Radix: 11}).Passes(); got != 3 {
		t.Errorf("radix 11 passes = %d", got)
	}
}

func TestPredictionPhasesSumToTotal(t *testing.T) {
	pr := scaledPredictor(t, 16)
	for _, m := range []Model{CCSAS, CCSASNew, MPI, SHMEM} {
		p, err := pr.Predict(m, Workload{N: 1 << 18, Procs: 16, Radix: 8})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p.Phases {
			sum += v
		}
		if d := sum - p.TimeNs; d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: phases sum %v != total %v", m, sum, p.TimeNs)
		}
	}
}

func TestPredictOrderingMatchesSimulatorAtScale(t *testing.T) {
	// The model's raison d'être: at a large size class the predicted
	// ranking must match the simulator's headline ordering — SHMEM/MPI
	// ahead of CC-SAS-NEW ahead of the original CC-SAS.
	const procs = 16
	const n = 1 << 20 // 16M class
	pr := scaledPredictor(t, procs)
	ranked, err := pr.PredictAll(Workload{N: n, Procs: procs, Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[len(ranked)-1].Model != CCSAS {
		t.Errorf("predicted worst = %s, want ccsas", ranked[len(ranked)-1].Model)
	}
	pos := map[Model]int{}
	for i, p := range ranked {
		pos[p.Model] = i
	}
	if pos[SHMEM] > pos[CCSASNew] {
		t.Errorf("predicted SHMEM (%d) behind CC-SAS-NEW (%d)", pos[SHMEM], pos[CCSASNew])
	}
}

func TestPredictWithinFactorOfSimulator(t *testing.T) {
	// Absolute accuracy target: within 3x of the simulated time for each
	// model at a mid-size configuration (an analytic model with no
	// cache simulation cannot do much better; the paper wanted ranking).
	const procs, n = 16, 1 << 18
	pr := scaledPredictor(t, procs)
	in := keys.MustGenerate(keys.Gauss, keys.GenConfig{N: n, Procs: procs, RadixBits: 8})
	cfg := sorts.Config{
		Radix: 8,
		MPI:   mpi.DefaultDirect().Scaled(machine.ScaleFactor),
		Shmem: shmem.DefaultConfig().Scaled(machine.ScaleFactor),
	}
	runSim := func(model Model) float64 {
		m, err := machine.New(machine.Origin2000Scaled(procs))
		if err != nil {
			t.Fatal(err)
		}
		var res *sorts.Result
		switch model {
		case CCSAS:
			res, err = sorts.RadixCCSAS(m, in, cfg, false)
		case CCSASNew:
			res, err = sorts.RadixCCSAS(m, in, cfg, true)
		case MPI:
			res, err = sorts.RadixMPI(m, in, cfg)
		case SHMEM:
			res, err = sorts.RadixSHMEM(m, in, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs()
	}
	for _, model := range []Model{CCSAS, CCSASNew, MPI, SHMEM} {
		pred, err := pr.Predict(model, Workload{N: n, Procs: procs, Radix: 8})
		if err != nil {
			t.Fatal(err)
		}
		sim := runSim(model)
		ratio := pred.TimeNs / sim
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: predicted %v vs simulated %v (ratio %.2f), want within 3x",
				model, pred.TimeNs, sim, ratio)
		}
	}
}

func TestPredictMorePassesCostMore(t *testing.T) {
	pr := scaledPredictor(t, 16)
	r8, _ := pr.Predict(SHMEM, Workload{N: 1 << 20, Procs: 16, Radix: 8})
	r6, _ := pr.Predict(SHMEM, Workload{N: 1 << 20, Procs: 16, Radix: 6})
	if r6.TimeNs <= r8.TimeNs {
		t.Errorf("radix 6 (6 passes, %v) should cost more than radix 8 (4 passes, %v) at scale",
			r6.TimeNs, r8.TimeNs)
	}
}

func TestPredictScalesWithN(t *testing.T) {
	pr := scaledPredictor(t, 16)
	small, _ := pr.Predict(SHMEM, Workload{N: 1 << 16, Procs: 16, Radix: 8})
	big, _ := pr.Predict(SHMEM, Workload{N: 1 << 20, Procs: 16, Radix: 8})
	if big.TimeNs < 8*small.TimeNs {
		t.Errorf("16x keys predicted only %.1fx the time", big.TimeNs/small.TimeNs)
	}
}
