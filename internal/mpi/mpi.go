// Package mpi implements a message-passing library on the simulated
// machine, with the two implementations the paper compares:
//
//   - Direct — the authors' "impure" MPICH variant (NEW): the sender
//     copies data straight into the receiver's address space, with a
//     shallow per-pair flow-control window (1-deep by default) whose
//     stalls show up as SYNC time, exactly as §4.2 of the paper observes.
//
//   - Staged — vendor-style pure message passing (SGI MPT): every
//     transfer is staged through a library buffer, costing an extra copy
//     at each end and a higher per-message overhead, but with deep
//     buffering (fully asynchronous sends).
//
// Collectives (Barrier, Allgather) are built from the point-to-point
// primitives so their costs emerge from the same model.
package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Engine selects the library implementation.
type Engine int

const (
	// Direct is the authors' improved MPICH ("NEW").
	Direct Engine = iota
	// Staged is the vendor-style staged-copy implementation ("SGI").
	Staged
)

// String returns the label the paper's figures use.
func (e Engine) String() string {
	switch e {
	case Direct:
		return "NEW"
	case Staged:
		return "SGI"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config sets the library's cost constants.
type Config struct {
	// Engine selects Direct or Staged.
	Engine Engine
	// BufDepth is the per-pair window of in-flight messages. The Direct
	// implementation uses 1-deep lock-free buffers (a sender of several
	// consecutive messages to one destination must wait for each to be
	// received); Staged uses deep library buffering.
	BufDepth int
	// SendOverheadNs / RecvOverheadNs are the fixed per-message CPU costs.
	SendOverheadNs float64
	RecvOverheadNs float64
	// CopyNsPerByte is the staging-copy cost per byte, paid at BOTH ends
	// by the Staged engine and not at all by Direct.
	CopyNsPerByte float64
	// DeliveryNs is the fixed wire/protocol latency from send completion
	// to receivability.
	DeliveryNs float64
}

// DefaultDirect returns the NEW implementation's constants.
func DefaultDirect() Config {
	return Config{
		Engine:         Direct,
		BufDepth:       1,
		SendOverheadNs: 4000,
		RecvOverheadNs: 4000,
		CopyNsPerByte:  0,
		DeliveryNs:     500,
	}
}

// DefaultStaged returns the SGI-style implementation's constants.
func DefaultStaged() Config {
	return Config{
		Engine:         Staged,
		BufDepth:       64,
		SendOverheadNs: 15000,
		RecvOverheadNs: 15000,
		CopyNsPerByte:  5.0,
		DeliveryNs:     500,
	}
}

// ConfigFor returns the default configuration for an engine.
func ConfigFor(e Engine) Config {
	if e == Staged {
		return DefaultStaged()
	}
	return DefaultDirect()
}

// Scaled divides the per-event fixed costs (overheads, delivery latency)
// by f, leaving per-byte costs untouched. A machine whose data sizes and
// cache are scaled down by f needs its fixed software costs scaled the
// same way to preserve the ratio of fixed to data-proportional work (see
// DESIGN.md §1).
func (c Config) Scaled(f float64) Config {
	c.SendOverheadNs /= f
	c.RecvOverheadNs /= f
	c.DeliveryNs /= f
	return c
}

// Message is one received message.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the sender-supplied tag (not matched on; delivered FIFO per
	// pair).
	Tag int
	// Payload is the sender's payload value.
	Payload any
	// Bytes is the payload's size for costing purposes.
	Bytes int

	availAt float64
	done    chan float64
}

type pairState struct {
	ch chan *Message
	// outstanding is the sender-side FIFO of messages not yet consumed;
	// only the sending processor's goroutine touches it.
	outstanding []*Message
}

// Comm is one MPI communicator over all the machine's processors.
type Comm struct {
	m    *machine.Machine
	cfg  Config
	mail [][]*pairState // [src][dst]
}

// New builds a communicator. cfg.BufDepth of 0 is replaced by 1.
func New(m *machine.Machine, cfg Config) *Comm {
	if cfg.BufDepth <= 0 {
		cfg.BufDepth = 1
	}
	n := m.Procs()
	mail := make([][]*pairState, n)
	for s := 0; s < n; s++ {
		mail[s] = make([]*pairState, n)
		for d := 0; d < n; d++ {
			// The Go channel is sized generously; logical flow control is
			// enforced via the outstanding window so that the stall time
			// is modeled in virtual time, not host scheduling.
			mail[s][d] = &pairState{ch: make(chan *Message, 4*cfg.BufDepth+4)}
		}
	}
	return &Comm{m: m, cfg: cfg, mail: mail}
}

// Machine returns the underlying machine.
func (c *Comm) Machine() *machine.Machine { return c.m }

// Config returns the library configuration.
func (c *Comm) Config() Config { return c.cfg }

// Ranks returns the communicator size.
func (c *Comm) Ranks() int { return c.m.Procs() }

// Barrier joins the machine-wide barrier.
func (c *Comm) Barrier(p *machine.Proc) { c.m.Barrier(p) }

// Send transmits payload (costed as bytes) from p to rank dst. The call
// returns when the library no longer needs the application buffer:
// after the remote copy for Direct, after the staging copy (plus any
// window stall) for Staged.
func (c *Comm) Send(p *machine.Proc, dst, tag int, payload any, bytes int) {
	if dst == p.ID {
		panic(fmt.Sprintf("mpi: rank %d sending to itself", dst))
	}
	ps := c.mail[p.ID][dst]
	sendStart := p.Now()
	p.ComputeNs(c.cfg.SendOverheadNs)

	// Flow control: wait for the window's oldest message to be consumed.
	stallStart := p.Now()
	for len(ps.outstanding) >= c.cfg.BufDepth {
		oldest := ps.outstanding[0]
		ps.outstanding = ps.outstanding[1:]
		t := <-oldest.done
		p.WaitUntil(t)
	}
	if stalled := p.Now() - stallStart; stalled > 0 {
		p.TraceEvent(trace.EvFlowStall, dst, bytes, stalled)
	}

	msg := &Message{Src: p.ID, Tag: tag, Payload: payload, Bytes: bytes,
		done: make(chan float64, 1)}
	dstNode := c.m.Topology().NodeOf(dst)
	wire := c.m.Topology().TransferTime(bytes)
	switch c.cfg.Engine {
	case Direct:
		// The sender itself streams the data into the receiver's memory.
		if bytes > 0 {
			if dstNode == p.Node {
				p.LocalMemNs(c.m.Topology().Config().LocalLatency + wire)
			} else {
				p.RemoteMemNs(c.m.Topology().ReadLatency(p.Node, dstNode) + wire)
			}
		}
		msg.availAt = p.Now() + c.cfg.DeliveryNs
	case Staged:
		// The sender copies into a staging buffer in the shared address
		// space near the receiver — an uncached PIO-rate copy across the
		// network, which is exactly the overhead the paper blames for the
		// vendor MPI's performance (the receiver copies out again below).
		if bytes > 0 {
			pio := float64(bytes) * c.cfg.CopyNsPerByte
			if dstNode == p.Node {
				p.LocalMemNs(c.m.Topology().Config().LocalLatency + pio)
			} else {
				p.RemoteMemNs(c.m.Topology().ReadLatency(p.Node, dstNode) + pio)
			}
		}
		msg.availAt = p.Now() + c.cfg.DeliveryNs
	}
	remoteBytes := 0
	if dstNode != p.Node {
		remoteBytes = bytes
	}
	p.AddMessageTraffic(remoteBytes, 1)
	p.TraceEvent(trace.EvSend, dst, bytes, p.Now()-sendStart)
	ps.outstanding = append(ps.outstanding, msg)
	ps.ch <- msg
}

// Recv receives the next message from rank src, blocking (in virtual
// time) until it is available. dstAddr/dstBytes describe where the
// application will place the data, so stale cached lines are dropped;
// pass 0,0 when the payload is metadata only.
func (c *Comm) Recv(p *machine.Proc, src int, dstAddr machine.Addr, dstBytes int) *Message {
	if src == p.ID {
		panic(fmt.Sprintf("mpi: rank %d receiving from itself", src))
	}
	msg := <-c.mail[src][p.ID].ch
	recvStart := p.Now()
	p.WaitUntil(msg.availAt)
	if waited := p.Now() - recvStart; waited > 0 {
		p.TraceEvent(trace.EvMsgWait, src, msg.Bytes, waited)
	}
	p.ComputeNs(c.cfg.RecvOverheadNs)
	if c.cfg.Engine == Staged && msg.Bytes > 0 {
		// Copy out of the library buffer into the application buffer.
		p.LocalMemNs(float64(msg.Bytes) * c.cfg.CopyNsPerByte)
	}
	if dstBytes > 0 {
		p.InvalidateRange(dstAddr, dstBytes)
	}
	p.TraceEvent(trace.EvRecv, src, msg.Bytes, p.Now()-recvStart)
	msg.done <- p.Now()
	return msg
}

// SendRecv sends to dst and then receives from src; the send is
// initiated first so symmetric exchanges cannot deadlock.
func (c *Comm) SendRecv(p *machine.Proc, dst, tag int, payload any, bytes int,
	src int, dstAddr machine.Addr, dstBytes int) *Message {
	c.Send(p, dst, tag, payload, bytes)
	return c.Recv(p, src, dstAddr, dstBytes)
}
