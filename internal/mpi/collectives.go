package mpi

import "reflect"

import "repro/internal/machine"

// sizeOf returns the in-memory size of T.
func sizeOf[T any]() int {
	var zero T
	return int(reflect.TypeOf(zero).Size())
}

// agBlock carries one rank's contribution inside an allgather payload.
type agBlock[T any] struct {
	idx  int
	data []T
}

// Allgather collects each rank's mine slice on every rank, returning
// out[r] = rank r's contribution. At power-of-two rank counts it uses
// recursive doubling (log2(p) rounds, XOR partners, doubling block
// counts each round); at other counts — reachable since the
// interconnect became pluggable and non-power-of-two machines
// constructible — XOR partners fall outside [0,p) and the exchange
// switches to a Bruck-style ring: each round every rank ships the
// blocks it holds to (me−step) mod p and receives from (me+step) mod p,
// which covers all p blocks in ⌈log2(p)⌉ rounds. Either way the cost
// emerges from the point-to-point model — including the staged engine's
// extra copies and the per-message overheads the paper blames for MPI's
// fixed costs on small data sets. All ranks must call it collectively.
func Allgather[T any](c *Comm, p *machine.Proc, mine []T) [][]T {
	ranks := c.Ranks()
	me := p.ID
	out := make([][]T, ranks)
	// Decouple from the caller's buffer, as MPI semantics require.
	own := make([]T, len(mine))
	copy(own, mine)
	out[me] = own
	if ranks == 1 {
		return out
	}
	pow2 := ranks&(ranks-1) == 0
	es := sizeOf[T]()
	for step := 1; step < ranks; step <<= 1 {
		sendTo, recvFrom := me^step, me^step
		if !pow2 {
			sendTo = (me + ranks - step) % ranks
			recvFrom = (me + step) % ranks
		}
		var blocks []agBlock[T]
		bytes := 0
		for i, b := range out {
			if b != nil {
				blocks = append(blocks, agBlock[T]{idx: i, data: b})
				bytes += len(b) * es
			}
		}
		c.Send(p, sendTo, step, blocks, bytes)
		msg := c.Recv(p, recvFrom, 0, 0)
		for _, b := range msg.Payload.([]agBlock[T]) {
			out[b.idx] = b.data
		}
	}
	return out
}
