package mpi

import "reflect"

import "repro/internal/machine"

// sizeOf returns the in-memory size of T.
func sizeOf[T any]() int {
	var zero T
	return int(reflect.TypeOf(zero).Size())
}

// agBlock carries one rank's contribution inside an allgather payload.
type agBlock[T any] struct {
	idx  int
	data []T
}

// Allgather collects each rank's mine slice on every rank, returning
// out[r] = rank r's contribution. It uses recursive doubling (log2(p)
// rounds, doubling block counts each round), so its cost emerges from
// the point-to-point model — including the staged engine's extra copies
// and the per-message overheads the paper blames for MPI's fixed costs
// on small data sets. All ranks must call it collectively; the rank
// count must be a power of two (machine sizes always are).
func Allgather[T any](c *Comm, p *machine.Proc, mine []T) [][]T {
	ranks := c.Ranks()
	me := p.ID
	out := make([][]T, ranks)
	// Decouple from the caller's buffer, as MPI semantics require.
	own := make([]T, len(mine))
	copy(own, mine)
	out[me] = own
	if ranks == 1 {
		return out
	}
	es := sizeOf[T]()
	for step := 1; step < ranks; step <<= 1 {
		partner := me ^ step
		var blocks []agBlock[T]
		bytes := 0
		for i, b := range out {
			if b != nil {
				blocks = append(blocks, agBlock[T]{idx: i, data: b})
				bytes += len(b) * es
			}
		}
		c.Send(p, partner, step, blocks, bytes)
		msg := c.Recv(p, partner, 0, 0)
		for _, b := range msg.Payload.([]agBlock[T]) {
			out[b.idx] = b.data
		}
	}
	return out
}
