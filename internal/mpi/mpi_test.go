package mpi

import (
	"testing"

	"repro/internal/machine"
)

func comm(t *testing.T, procs int, cfg Config) *Comm {
	t.Helper()
	m, err := machine.New(machine.Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return New(m, cfg)
}

func TestSendRecvDelivers(t *testing.T) {
	for _, cfg := range []Config{DefaultDirect(), DefaultStaged()} {
		c := comm(t, 2, cfg)
		c.Machine().Run(func(p *machine.Proc) {
			if p.ID == 0 {
				c.Send(p, 1, 7, []uint32{1, 2, 3}, 12)
			} else {
				msg := c.Recv(p, 0, 0, 0)
				if msg.Src != 0 || msg.Tag != 7 {
					t.Errorf("%v: msg meta = src %d tag %d", cfg.Engine, msg.Src, msg.Tag)
				}
				data := msg.Payload.([]uint32)
				if len(data) != 3 || data[2] != 3 {
					t.Errorf("%v: payload = %v", cfg.Engine, data)
				}
			}
		})
	}
}

func TestRecvWaitsForSender(t *testing.T) {
	c := comm(t, 2, DefaultDirect())
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			p.Compute(100000) // sender is slow
			c.Send(p, 1, 0, nil, 4096)
		} else {
			c.Recv(p, 0, 0, 0)
			if p.Now() < 100000*c.Machine().Config().OpNs {
				t.Errorf("receiver finished at %v, before the send", p.Now())
			}
			if p.Stats().Breakdown.Sync == 0 {
				t.Error("receiver charged no sync while waiting")
			}
		}
	})
}

func TestOneDeepWindowStallsSender(t *testing.T) {
	// With BufDepth 1, a burst of sends to a slow receiver must stall the
	// sender (the paper's explanation of MPI's SYNC time in radix sort).
	shallow := DefaultDirect()
	deep := DefaultDirect()
	deep.BufDepth = 64

	senderSync := func(cfg Config) float64 {
		c := comm(t, 2, cfg)
		var sync float64
		c.Machine().Run(func(p *machine.Proc) {
			if p.ID == 0 {
				for i := 0; i < 16; i++ {
					c.Send(p, 1, i, nil, 1024)
				}
				sync = p.Stats().Breakdown.Sync
			} else {
				for i := 0; i < 16; i++ {
					p.Compute(20000) // slow consumer
					c.Recv(p, 0, 0, 0)
				}
			}
		})
		return sync
	}
	s1 := senderSync(shallow)
	s64 := senderSync(deep)
	if s1 <= s64 {
		t.Errorf("1-deep window sender sync (%v) should exceed 64-deep (%v)", s1, s64)
	}
	if s1 == 0 {
		t.Error("1-deep window produced no sender stalls")
	}
}

func TestStagedCostsMoreThanDirect(t *testing.T) {
	// Same traffic, both engines: staged must take longer end-to-end
	// (double copy + higher overheads).
	elapsed := func(cfg Config) float64 {
		c := comm(t, 2, cfg)
		res := c.Machine().Run(func(p *machine.Proc) {
			const msgs = 8
			if p.ID == 0 {
				for i := 0; i < msgs; i++ {
					c.Send(p, 1, i, nil, 64<<10)
				}
			} else {
				for i := 0; i < msgs; i++ {
					c.Recv(p, 0, 0, 0)
				}
			}
		})
		return res.TimeNs
	}
	direct := elapsed(DefaultDirect())
	staged := elapsed(DefaultStaged())
	if staged <= direct {
		t.Errorf("staged (%v) should be slower than direct (%v)", staged, direct)
	}
}

func TestFIFOPerPair(t *testing.T) {
	c := comm(t, 2, DefaultDirect())
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			for i := 0; i < 10; i++ {
				c.Send(p, 1, i, i, 8)
			}
		} else {
			for i := 0; i < 10; i++ {
				msg := c.Recv(p, 0, 0, 0)
				if msg.Tag != i {
					t.Errorf("message %d arrived with tag %d", i, msg.Tag)
				}
			}
		}
	})
}

func TestRecvInvalidatesDestination(t *testing.T) {
	c := comm(t, 2, DefaultDirect())
	buf := machine.NewArrayOnProc[uint32](c.Machine(), "rbuf", 256, 1)
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 1 {
			// Warm the destination lines.
			buf.LoadRange(p, 0, 256, machine.Private)
			if !p.CacheContains(buf.Addr(0)) {
				t.Fatal("warmup failed")
			}
		}
		c.Barrier(p)
		if p.ID == 0 {
			c.Send(p, 1, 0, nil, buf.Bytes(256))
		} else {
			c.Recv(p, 0, buf.Addr(0), buf.Bytes(256))
			if p.CacheContains(buf.Addr(0)) {
				t.Error("stale lines survived message arrival")
			}
		}
	})
}

func TestSelfSendPanics(t *testing.T) {
	c := comm(t, 2, DefaultDirect())
	defer func() {
		if recover() == nil {
			t.Error("self-send did not panic")
		}
	}()
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			c.Send(p, 0, 0, nil, 8)
		}
	})
}

func TestAllgather(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		c := comm(t, procs, DefaultDirect())
		c.Machine().Run(func(p *machine.Proc) {
			mine := []int64{int64(p.ID), int64(p.ID * 10)}
			out := Allgather(c, p, mine)
			if len(out) != procs {
				t.Errorf("p=%d: got %d blocks", procs, len(out))
				return
			}
			for r := 0; r < procs; r++ {
				if out[r] == nil || out[r][0] != int64(r) || out[r][1] != int64(r*10) {
					t.Errorf("p=%d rank %d: out[%d] = %v", procs, p.ID, r, out[r])
				}
			}
		})
	}
}

// TestAllgatherNonPowerOfTwoRanks covers the Bruck-style ring schedule:
// rank counts with no XOR-partner structure, reachable since the
// interconnect became pluggable (the hypercube rejects them, a torus
// does not). Every rank must still assemble all contributions.
func TestAllgatherNonPowerOfTwoRanks(t *testing.T) {
	for _, procs := range []int{6, 12, 24} {
		cfg := machine.Origin2000Scaled(procs)
		cfg.Topology.Kind = "torus"
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatalf("machine.New(%d procs, torus): %v", procs, err)
		}
		c := New(m, DefaultDirect())
		c.Machine().Run(func(p *machine.Proc) {
			mine := []int64{int64(p.ID), int64(p.ID * 10)}
			out := Allgather(c, p, mine)
			if len(out) != procs {
				t.Errorf("p=%d: got %d blocks", procs, len(out))
				return
			}
			for r := 0; r < procs; r++ {
				if out[r] == nil || out[r][0] != int64(r) || out[r][1] != int64(r*10) {
					t.Errorf("p=%d rank %d: out[%d] = %v", procs, p.ID, r, out[r])
				}
			}
		})
	}
}

func TestAllgatherSingleRank(t *testing.T) {
	c := comm(t, 1, DefaultDirect())
	c.Machine().Run(func(p *machine.Proc) {
		out := Allgather(c, p, []int64{5})
		if len(out) != 1 || out[0][0] != 5 {
			t.Errorf("out = %v", out)
		}
	})
}

func TestAllgatherDecouplesBuffer(t *testing.T) {
	c := comm(t, 2, DefaultDirect())
	c.Machine().Run(func(p *machine.Proc) {
		mine := []int64{int64(p.ID)}
		out := Allgather(c, p, mine)
		mine[0] = 999 // mutating the send buffer must not affect results
		if out[p.ID][0] != int64(p.ID) {
			t.Error("allgather aliases the caller's buffer")
		}
	})
}

func TestAllgatherDeterministic(t *testing.T) {
	run := func() float64 {
		c := comm(t, 8, DefaultStaged())
		res := c.Machine().Run(func(p *machine.Proc) {
			mine := make([]int64, 64)
			Allgather(c, p, mine)
		})
		return res.TimeNs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic allgather: %v vs %v", a, b)
	}
}

func TestConfigFor(t *testing.T) {
	if ConfigFor(Direct).Engine != Direct || ConfigFor(Staged).Engine != Staged {
		t.Error("ConfigFor wires the wrong engines")
	}
	if Direct.String() != "NEW" || Staged.String() != "SGI" {
		t.Error("engine labels should match the paper's figures")
	}
}

func TestScaledDividesFixedCosts(t *testing.T) {
	c := DefaultDirect().Scaled(16)
	base := DefaultDirect()
	if c.SendOverheadNs != base.SendOverheadNs/16 ||
		c.RecvOverheadNs != base.RecvOverheadNs/16 ||
		c.DeliveryNs != base.DeliveryNs/16 {
		t.Errorf("Scaled(16) = %+v", c)
	}
	if c.CopyNsPerByte != base.CopyNsPerByte {
		t.Error("Scaled must not change per-byte costs")
	}
	if c.BufDepth != base.BufDepth {
		t.Error("Scaled must not change window depth")
	}
}

func TestStagedReceiverPaysCopy(t *testing.T) {
	c := comm(t, 2, DefaultStaged())
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			c.Send(p, 1, 0, nil, 64<<10)
		} else {
			before := p.Stats().Breakdown.LMem
			c.Recv(p, 0, 0, 0)
			copied := p.Stats().Breakdown.LMem - before
			want := float64(64<<10) * DefaultStaged().CopyNsPerByte
			if copied < want*0.99 {
				t.Errorf("receiver copy charge %v, want >= %v", copied, want)
			}
		}
	})
}

func TestDirectSenderPaysTransfer(t *testing.T) {
	c := comm(t, 4, DefaultDirect())
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			c.Send(p, 3, 0, nil, 64<<10) // rank 3 is on the other node
			if p.Stats().Breakdown.RMem == 0 {
				t.Error("direct sender to a remote node charged no RMem")
			}
		} else if p.ID == 3 {
			c.Recv(p, 0, 0, 0)
		}
	})
}
