package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, underline, header, separator, two rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header and rows align: "value" column starts at the same offset.
	hIdx := strings.Index(lines[2], "value")
	rIdx := strings.Index(lines[5], "22")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header@%d row@%d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := &Table{Header: []string{"x"}}
	tb.AddRow("1")
	if strings.Contains(tb.String(), "=") && strings.HasPrefix(tb.String(), "=") {
		t.Error("title underline emitted without title")
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"}, {2.0, "2"}, {0.125, "0.125"}, {3.1000, "3.1"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMsUs(t *testing.T) {
	if got := Ms(1.5e6); got != "1.5ms" {
		t.Errorf("Ms = %q", got)
	}
	if got := Us(1500); got != "2" {
		t.Errorf("Us = %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("overflow Bar = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("zero-max Bar = %q", got)
	}
	if got := Bar(-5, 10, 10); got != "" {
		t.Errorf("negative Bar = %q", got)
	}
}

func TestStackedBreakdown(t *testing.T) {
	sb := &StackedBreakdown{
		Title:      "breakdown",
		Categories: []string{"BUSY", "LMEM", "RMEM", "SYNC"},
		Labels:     []string{"p0", "p1"},
		Values:     [][]float64{{10, 5, 3, 2}, {5, 5, 5, 5}},
		Width:      20,
	}
	out := sb.String()
	if !strings.Contains(out, "B=BUSY") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Error("missing row labels")
	}
	// The taller row (20 total) fills the full width.
	if !strings.Contains(out, "BBBBB") {
		t.Error("missing stacked glyphs")
	}
}

func TestStackedBreakdownEmpty(t *testing.T) {
	sb := &StackedBreakdown{Categories: []string{"A"}, Labels: []string{"x"}, Values: [][]float64{{0}}}
	if out := sb.String(); !strings.Contains(out, "x") {
		t.Errorf("empty chart lost its label: %q", out)
	}
}
