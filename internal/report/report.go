// Package report renders experiment results as aligned text tables and
// simple character charts, matching the rows and series the paper's
// tables and figures report.
package report

import (
	"fmt"
	"strings"
)

// Table is a generic titled table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly (3 significant-ish decimals, trimmed).
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Ms formats nanoseconds as milliseconds.
func Ms(ns float64) string { return F(ns/1e6) + "ms" }

// Us formats nanoseconds as microseconds (the paper's tables use µs).
func Us(ns float64) string { return fmt.Sprintf("%.0f", ns/1e3) }

// Bar renders v as a proportional bar of width w relative to maxV.
func Bar(v, maxV float64, w int) string {
	if maxV <= 0 {
		return ""
	}
	n := int(v / maxV * float64(w))
	if n > w {
		n = w
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// StackedBreakdown renders per-category magnitudes (e.g. BUSY, LMEM,
// RMEM, SYNC) as a labeled stacked text chart, one row per item.
type StackedBreakdown struct {
	Title      string
	Categories []string // category names, in stacking order
	Labels     []string // row labels
	Values     [][]float64
	Width      int // total chart width in characters (default 60)
}

// glyphs used per category, cycling.
var stackGlyphs = []byte{'B', 'l', 'r', 's', '#', '+', '*', '~'}

// String renders the chart.
func (s *StackedBreakdown) String() string {
	width := s.Width
	if width == 0 {
		width = 60
	}
	var maxTotal float64
	for _, row := range s.Values {
		var t float64
		for _, v := range row {
			t += v
		}
		if t > maxTotal {
			maxTotal = t
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	var legend []string
	for i, c := range s.Categories {
		legend = append(legend, fmt.Sprintf("%c=%s", stackGlyphs[i%len(stackGlyphs)], c))
	}
	fmt.Fprintf(&b, "  [%s]\n", strings.Join(legend, " "))
	labelW := 0
	for _, l := range s.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for r, row := range s.Values {
		var total float64
		for _, v := range row {
			total += v
		}
		fmt.Fprintf(&b, "  %-*s |", labelW, s.Labels[r])
		if maxTotal > 0 {
			for i, v := range row {
				n := int(v / maxTotal * float64(width))
				b.WriteString(strings.Repeat(string(stackGlyphs[i%len(stackGlyphs)]), n))
			}
		}
		fmt.Fprintf(&b, "| %s\n", F(total))
	}
	return b.String()
}
