package memsys

import (
	"testing"

	"repro/internal/cache"
)

// TestPageTableMatchesClosures replays the flat page→home table against
// the legacy per-region homeOf closures for all three placement
// policies, with deliberately odd sizes so partitions straddle pages
// and tail pages carry alignment padding. Every byte address must
// resolve identically through HomeOf (flat table) and slowHomeOf
// (legacy region walk): the table is a cache of the closures, never a
// reinterpretation.
func TestPageTableMatchesClosures(t *testing.T) {
	as := testAS(t)
	ps := as.PageSize()
	regions := []*Region{
		// Partitions of 16000/7 bytes: not page multiples, so most pages
		// mix two partitions (and often two nodes).
		as.AllocBlocked("blocked-odd", 16000, 7),
		// Exact page multiple: every page uniform.
		as.AllocBlocked("blocked-even", 16*ps, 16),
		as.AllocRoundRobin("rr", 5*ps+123),
		as.AllocOnNode("onnode", 3*ps-1, 5),
		// One-byte region: tail-page padding dominates.
		as.AllocBlocked("tiny", 1, 4),
	}
	step := 64 // one probe per simulated cache line
	for _, r := range regions {
		for off := 0; off < r.Size(); off += step {
			a := r.Addr(off)
			want := as.slowHomeOf(a)
			if got := as.HomeOf(a); got != want {
				t.Fatalf("%s offset %d: HomeOf=%d, legacy walk=%d", r.Name(), off, got, want)
			}
			if want != r.HomeOfOffset(off) {
				t.Fatalf("%s offset %d: legacy walk=%d, closure=%d",
					r.Name(), off, want, r.HomeOfOffset(off))
			}
			// PageHome may decline (mixed page), but when it answers it
			// must agree with every byte of the page.
			if h, ok := as.PageHome(a); ok && h != want {
				t.Fatalf("%s offset %d: PageHome=%d, legacy walk=%d", r.Name(), off, h, want)
			}
		}
	}
	// Alignment-padding addresses past each region's last byte but
	// inside its page-aligned span are outside every region: home 0.
	for _, r := range regions {
		last := r.Addr(r.Size() - 1)
		padEnd := cache.Addr(uint64(r.Base()) + uint64(as.align(r.Size())))
		for a := last + 1; a < padEnd; a += cache.Addr(step) {
			want := as.slowHomeOf(a)
			if got := as.HomeOf(a); got != want {
				t.Fatalf("%s pad addr %#x: HomeOf=%d, legacy walk=%d", r.Name(), uint64(a), got, want)
			}
		}
	}
}

// TestPageTableMixedPagesFallBack checks that a page whose bytes span
// two homes is marked mixed: PageHome must decline, and HomeOf must
// still resolve each byte through the legacy walk.
func TestPageTableMixedPagesFallBack(t *testing.T) {
	as := testAS(t)
	ps := as.PageSize()
	// Partition = ps/4, two procs per node: page 0 covers procs 0..3,
	// i.e. nodes 0,0,1,1 — mixed.
	r := as.AllocBlocked("quarter-page-parts", 4*ps, 16)
	if _, ok := as.PageHome(r.Addr(0)); ok {
		t.Fatal("PageHome answered for a page spanning two homes")
	}
	if got := as.HomeOf(r.Addr(0)); got != 0 {
		t.Errorf("first quarter: home %d, want 0", got)
	}
	if got := as.HomeOf(r.Addr(ps / 2)); got != 1 {
		t.Errorf("third quarter: home %d, want 1", got)
	}
}
