// Package memsys models the simulated machine's global physical address
// space: named regions carved out of a flat address range, divided into
// pages, with each page homed on a node according to a placement policy.
//
// The address space only deals in addresses and homes; data itself lives
// in ordinary Go slices owned by the machine layer. Placement matters
// because the NUMA cost of a miss depends on the home node of the page
// it falls on, and because the paper's experiments are sensitive to page
// size (the authors tune page size per data-set size).
//
// Home lookups run once per simulated cache miss, so they are hot on the
// host: HomeOf answers from a flat page→home table built at allocation
// time (one bounds check and one slice load), falling back to the
// region's placement closure only for the rare page whose bytes are not
// all homed on one node (a page straddling a blocked-partition boundary,
// or a region tail page whose alignment padding is homed on node 0).
// RegionOf keeps a last-region memo in front of its binary search, since
// lookups cluster in one region at a time.
//
// Allocation is a setup-time operation: regions must be allocated before
// the machine runs processors (concurrent HomeOf/RegionOf lookups are
// read-only and safe; allocation concurrent with lookups is not).
package memsys

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cache"
)

// Placement names a page-placement policy for a region.
type Placement int

const (
	// PlaceBlocked divides the region into equal contiguous partitions,
	// one per processor, homing each partition on its processor's node
	// (partition boundaries round to pages). This matches how the sorting
	// programs distribute their key arrays.
	PlaceBlocked Placement = iota
	// PlaceRoundRobin homes consecutive pages on consecutive nodes.
	PlaceRoundRobin
	// PlaceOnNode homes the entire region on a single node.
	PlaceOnNode
)

// String returns the policy name.
func (p Placement) String() string {
	switch p {
	case PlaceBlocked:
		return "blocked"
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceOnNode:
		return "on-node"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// mixedPage marks a page-table entry whose page does not have a single
// home node; lookups fall back to the region's placement closure.
const mixedPage int32 = -1

// Region is a contiguous allocation in the simulated address space.
type Region struct {
	name   string
	base   cache.Addr
	size   int
	homeOf func(offset int) int
	// spanHome returns the home node shared by every in-region byte
	// offset in [start, end], or mixedPage when the span covers more
	// than one home. Used to build the flat page table at alloc time.
	spanHome func(start, end int) int32
}

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Base returns the region's starting address.
func (r *Region) Base() cache.Addr { return r.base }

// Size returns the region's length in bytes.
func (r *Region) Size() int { return r.size }

// Addr returns the address of byte offset within the region.
func (r *Region) Addr(offset int) cache.Addr {
	return r.base + cache.Addr(offset)
}

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a cache.Addr) bool {
	return a >= r.base && a < r.base+cache.Addr(r.size)
}

// HomeOfOffset returns the home node of the page containing the byte at
// offset.
func (r *Region) HomeOfOffset(offset int) int { return r.homeOf(offset) }

// AddressSpace allocates regions and answers home-node queries.
type AddressSpace struct {
	pageSize   int
	pageShift  uint
	nodes      int
	nodeOfProc func(proc int) int
	next       cache.Addr
	regions    []*Region // sorted by base
	rrNext     int       // next node for round-robin placement

	// pageHome is the flat page→home table, indexed by page number
	// (address >> pageShift); mixedPage entries fall back to the owning
	// region's closure. Built incrementally by alloc; read-only during
	// simulation.
	pageHome []int32
	// lastRegion memoizes the most recent RegionOf result. Atomic so
	// concurrent processor goroutines may share it; the memo only ever
	// caches a value the search would return, so lookups stay exact.
	lastRegion atomic.Pointer[Region]
}

// New builds an address space. pageSize must be a power of two; nodes is
// the node count; nodeOfProc maps a processor to its node (used by
// blocked placement).
func New(pageSize, nodes int, nodeOfProc func(int) int) (*AddressSpace, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("memsys: page size %d must be a positive power of two", pageSize)
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("memsys: node count must be positive, got %d", nodes)
	}
	if nodeOfProc == nil {
		return nil, fmt.Errorf("memsys: nodeOfProc must not be nil")
	}
	shift := uint(0)
	for 1<<shift < pageSize {
		shift++
	}
	return &AddressSpace{
		pageSize:   pageSize,
		pageShift:  shift,
		nodes:      nodes,
		nodeOfProc: nodeOfProc,
		// Leave page 0 unused so the zero Addr never aliases a region.
		next: cache.Addr(pageSize),
	}, nil
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() int { return as.pageSize }

// align rounds n up to the next page boundary.
func (as *AddressSpace) align(n int) int {
	return (n + as.pageSize - 1) &^ (as.pageSize - 1)
}

func (as *AddressSpace) alloc(name string, size int, homeOf func(offset int) int, spanHome func(start, end int) int32) *Region {
	r := &Region{name: name, base: as.next, size: size, homeOf: homeOf, spanHome: spanHome}
	as.next += cache.Addr(as.align(size))
	as.regions = append(as.regions, r)
	as.indexRegion(r)
	return r
}

// indexRegion appends the region's pages to the flat page→home table.
// A page gets a concrete home only when every one of its byte addresses
// would resolve to that home through the legacy region walk; otherwise
// it is marked mixedPage and lookups take the slow path, so the table
// never changes a simulated result.
func (as *AddressSpace) indexRegion(r *Region) {
	firstPage := int(uint64(r.base) >> as.pageShift)
	// Pages before the region's first page that are not yet indexed are
	// holes (only page 0 in practice): outside every region, homed on 0.
	for len(as.pageHome) < firstPage {
		as.pageHome = append(as.pageHome, 0)
	}
	ps := as.pageSize
	nPages := as.align(r.size) / ps
	for pg := 0; pg < nPages; pg++ {
		start := pg * ps
		last := start + ps - 1
		var h int32
		switch {
		case last < r.size:
			h = r.spanHome(start, last)
		case r.spanHome(start, r.size-1) == 0:
			// Tail page with alignment padding: bytes beyond size lie
			// outside every region and resolve to node 0, so the page is
			// uniform only when its in-region bytes are homed on 0 too.
			h = 0
		default:
			h = mixedPage
		}
		as.pageHome = append(as.pageHome, h)
	}
}

// AllocBlocked allocates size bytes partitioned across nProcs processors:
// byte offsets in partition i (of size/nProcs bytes, page-rounded) are
// homed on processor i's node.
func (as *AddressSpace) AllocBlocked(name string, size, nProcs int) *Region {
	if nProcs <= 0 {
		panic(fmt.Sprintf("memsys: AllocBlocked(%q) with nProcs=%d", name, nProcs))
	}
	part := size / nProcs
	if part == 0 {
		part = 1
	}
	nodeOfProc := as.nodeOfProc
	procOf := func(offset int) int {
		p := offset / part
		if p >= nProcs {
			p = nProcs - 1
		}
		return p
	}
	homeOf := func(offset int) int {
		return nodeOfProc(procOf(offset))
	}
	spanHome := func(start, end int) int32 {
		pStart, pEnd := procOf(start), procOf(end)
		h := nodeOfProc(pStart)
		for q := pStart + 1; q <= pEnd; q++ {
			if nodeOfProc(q) != h {
				return mixedPage
			}
		}
		return int32(h)
	}
	return as.alloc(name, size, homeOf, spanHome)
}

// AllocRoundRobin allocates size bytes with consecutive pages homed on
// consecutive nodes.
func (as *AddressSpace) AllocRoundRobin(name string, size int) *Region {
	nodes := as.nodes
	pageSize := as.pageSize
	start := as.rrNext
	as.rrNext = (as.rrNext + as.align(size)/pageSize) % nodes
	homeOf := func(offset int) int {
		return (start + offset/pageSize) % nodes
	}
	spanHome := func(s, e int) int32 {
		p1, p2 := s/pageSize, e/pageSize
		if p1 != p2 {
			return mixedPage
		}
		return int32((start + p1) % nodes)
	}
	return as.alloc(name, size, homeOf, spanHome)
}

// AllocOnNode allocates size bytes entirely homed on node.
func (as *AddressSpace) AllocOnNode(name string, size, node int) *Region {
	if node < 0 || node >= as.nodes {
		panic(fmt.Sprintf("memsys: AllocOnNode(%q) node %d out of range [0,%d)", name, node, as.nodes))
	}
	homeOf := func(int) int { return node }
	spanHome := func(int, int) int32 { return int32(node) }
	return as.alloc(name, size, homeOf, spanHome)
}

// RegionOf returns the region containing a, or nil.
func (as *AddressSpace) RegionOf(a cache.Addr) *Region {
	if r := as.lastRegion.Load(); r != nil && r.Contains(a) {
		return r
	}
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].base > a
	})
	if i == 0 {
		return nil
	}
	r := as.regions[i-1]
	if !r.Contains(a) {
		return nil
	}
	as.lastRegion.Store(r)
	return r
}

// HomeOf returns the home node of the page containing a. Addresses
// outside any region are homed on node 0 (they arise only from
// line-rounding at region edges).
func (as *AddressSpace) HomeOf(a cache.Addr) int {
	pg := uint64(a) >> as.pageShift
	if pg >= uint64(len(as.pageHome)) {
		return 0
	}
	if h := as.pageHome[pg]; h >= 0 {
		return int(h)
	}
	return as.slowHomeOf(a)
}

// slowHomeOf is the legacy region-walk home lookup, used for mixedPage
// pages (and by the equivalence tests as the reference oracle).
func (as *AddressSpace) slowHomeOf(a cache.Addr) int {
	r := as.RegionOf(a)
	if r == nil {
		return 0
	}
	return r.homeOf(int(a - r.base))
}

// ReferenceHomeOf is the paranoid-mode home oracle: it resolves a
// through a fresh binary search over the region list and the owning
// region's placement closure, bypassing both the flat page→home table
// and the lastRegion memo. HomeOf must agree with it on every address
// (the differential checker compares them per miss).
func (as *AddressSpace) ReferenceHomeOf(a cache.Addr) int {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].base > a
	})
	if i == 0 {
		return 0
	}
	r := as.regions[i-1]
	if !r.Contains(a) {
		return 0
	}
	return r.homeOf(int(a - r.base))
}

// PageHome returns the home node of the page containing a when every
// byte of that page resolves to one home, with ok reporting whether it
// does. Block walks use it to hoist the home lookup out of their
// per-line loops; when ok is false the caller must resolve each address
// through HomeOf.
func (as *AddressSpace) PageHome(a cache.Addr) (home int, ok bool) {
	pg := uint64(a) >> as.pageShift
	if pg >= uint64(len(as.pageHome)) {
		return 0, true
	}
	if h := as.pageHome[pg]; h >= 0 {
		return int(h), true
	}
	return 0, false
}
