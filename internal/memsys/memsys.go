// Package memsys models the simulated machine's global physical address
// space: named regions carved out of a flat address range, divided into
// pages, with each page homed on a node according to a placement policy.
//
// The address space only deals in addresses and homes; data itself lives
// in ordinary Go slices owned by the machine layer. Placement matters
// because the NUMA cost of a miss depends on the home node of the page
// it falls on, and because the paper's experiments are sensitive to page
// size (the authors tune page size per data-set size).
package memsys

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// Placement names a page-placement policy for a region.
type Placement int

const (
	// PlaceBlocked divides the region into equal contiguous partitions,
	// one per processor, homing each partition on its processor's node
	// (partition boundaries round to pages). This matches how the sorting
	// programs distribute their key arrays.
	PlaceBlocked Placement = iota
	// PlaceRoundRobin homes consecutive pages on consecutive nodes.
	PlaceRoundRobin
	// PlaceOnNode homes the entire region on a single node.
	PlaceOnNode
)

// String returns the policy name.
func (p Placement) String() string {
	switch p {
	case PlaceBlocked:
		return "blocked"
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceOnNode:
		return "on-node"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Region is a contiguous allocation in the simulated address space.
type Region struct {
	name   string
	base   cache.Addr
	size   int
	homeOf func(offset int) int
}

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Base returns the region's starting address.
func (r *Region) Base() cache.Addr { return r.base }

// Size returns the region's length in bytes.
func (r *Region) Size() int { return r.size }

// Addr returns the address of byte offset within the region.
func (r *Region) Addr(offset int) cache.Addr {
	return r.base + cache.Addr(offset)
}

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a cache.Addr) bool {
	return a >= r.base && a < r.base+cache.Addr(r.size)
}

// HomeOfOffset returns the home node of the page containing the byte at
// offset.
func (r *Region) HomeOfOffset(offset int) int { return r.homeOf(offset) }

// AddressSpace allocates regions and answers home-node queries.
type AddressSpace struct {
	pageSize   int
	nodes      int
	nodeOfProc func(proc int) int
	next       cache.Addr
	regions    []*Region // sorted by base
	rrNext     int       // next node for round-robin placement
}

// New builds an address space. pageSize must be a power of two; nodes is
// the node count; nodeOfProc maps a processor to its node (used by
// blocked placement).
func New(pageSize, nodes int, nodeOfProc func(int) int) (*AddressSpace, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("memsys: page size %d must be a positive power of two", pageSize)
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("memsys: node count must be positive, got %d", nodes)
	}
	if nodeOfProc == nil {
		return nil, fmt.Errorf("memsys: nodeOfProc must not be nil")
	}
	return &AddressSpace{
		pageSize:   pageSize,
		nodes:      nodes,
		nodeOfProc: nodeOfProc,
		// Leave page 0 unused so the zero Addr never aliases a region.
		next: cache.Addr(pageSize),
	}, nil
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() int { return as.pageSize }

// align rounds n up to the next page boundary.
func (as *AddressSpace) align(n int) int {
	return (n + as.pageSize - 1) &^ (as.pageSize - 1)
}

func (as *AddressSpace) alloc(name string, size int, homeOf func(offset int) int) *Region {
	r := &Region{name: name, base: as.next, size: size, homeOf: homeOf}
	as.next += cache.Addr(as.align(size))
	as.regions = append(as.regions, r)
	return r
}

// AllocBlocked allocates size bytes partitioned across nProcs processors:
// byte offsets in partition i (of size/nProcs bytes, page-rounded) are
// homed on processor i's node.
func (as *AddressSpace) AllocBlocked(name string, size, nProcs int) *Region {
	if nProcs <= 0 {
		panic(fmt.Sprintf("memsys: AllocBlocked(%q) with nProcs=%d", name, nProcs))
	}
	part := size / nProcs
	if part == 0 {
		part = 1
	}
	nodeOfProc := as.nodeOfProc
	homeOf := func(offset int) int {
		p := offset / part
		if p >= nProcs {
			p = nProcs - 1
		}
		return nodeOfProc(p)
	}
	return as.alloc(name, size, homeOf)
}

// AllocRoundRobin allocates size bytes with consecutive pages homed on
// consecutive nodes.
func (as *AddressSpace) AllocRoundRobin(name string, size int) *Region {
	nodes := as.nodes
	pageSize := as.pageSize
	start := as.rrNext
	as.rrNext = (as.rrNext + as.align(size)/pageSize) % nodes
	homeOf := func(offset int) int {
		return (start + offset/pageSize) % nodes
	}
	return as.alloc(name, size, homeOf)
}

// AllocOnNode allocates size bytes entirely homed on node.
func (as *AddressSpace) AllocOnNode(name string, size, node int) *Region {
	if node < 0 || node >= as.nodes {
		panic(fmt.Sprintf("memsys: AllocOnNode(%q) node %d out of range [0,%d)", name, node, as.nodes))
	}
	homeOf := func(int) int { return node }
	return as.alloc(name, size, homeOf)
}

// RegionOf returns the region containing a, or nil.
func (as *AddressSpace) RegionOf(a cache.Addr) *Region {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].base > a
	})
	if i == 0 {
		return nil
	}
	r := as.regions[i-1]
	if !r.Contains(a) {
		return nil
	}
	return r
}

// HomeOf returns the home node of the page containing a. Addresses
// outside any region are homed on node 0 (they arise only from
// line-rounding at region edges).
func (as *AddressSpace) HomeOf(a cache.Addr) int {
	r := as.RegionOf(a)
	if r == nil {
		return 0
	}
	return r.homeOf(int(a - r.base))
}
