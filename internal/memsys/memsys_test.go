package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// testAS builds an address space with 4 KB pages, 8 nodes, 2 procs/node.
func testAS(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := New(4096, 8, func(p int) int { return p / 2 })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return as
}

func TestNewValidation(t *testing.T) {
	nodeOf := func(p int) int { return 0 }
	if _, err := New(0, 8, nodeOf); err == nil {
		t.Error("accepted zero page size")
	}
	if _, err := New(3000, 8, nodeOf); err == nil {
		t.Error("accepted non-power-of-two page size")
	}
	if _, err := New(4096, 0, nodeOf); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := New(4096, 8, nil); err == nil {
		t.Error("accepted nil nodeOfProc")
	}
}

func TestRegionsDisjointAndPageAligned(t *testing.T) {
	as := testAS(t)
	r1 := as.AllocBlocked("a", 10000, 4)
	r2 := as.AllocRoundRobin("b", 123)
	r3 := as.AllocOnNode("c", 4096, 3)
	regs := []*Region{r1, r2, r3}
	for i, r := range regs {
		if uint64(r.Base())%4096 != 0 {
			t.Errorf("region %d base %#x not page aligned", i, r.Base())
		}
		for j, s := range regs {
			if i == j {
				continue
			}
			if r.Contains(s.Base()) {
				t.Errorf("region %d overlaps region %d", i, j)
			}
		}
	}
	if r1.Contains(0) {
		t.Error("address 0 must not belong to any region")
	}
}

func TestBlockedPlacement(t *testing.T) {
	as := testAS(t)
	// 16 partitions of 4 KB each across 16 procs on 8 nodes.
	r := as.AllocBlocked("keys", 16*4096, 16)
	for proc := 0; proc < 16; proc++ {
		off := proc*4096 + 100
		if got, want := r.HomeOfOffset(off), proc/2; got != want {
			t.Errorf("partition %d homed on node %d, want %d", proc, got, want)
		}
	}
	// Last byte belongs to the last partition.
	if got := r.HomeOfOffset(16*4096 - 1); got != 7 {
		t.Errorf("last byte homed on node %d, want 7", got)
	}
}

func TestBlockedPlacementTinyRegion(t *testing.T) {
	as := testAS(t)
	// Fewer bytes than processors must not panic or divide by zero.
	r := as.AllocBlocked("tiny", 4, 16)
	for off := 0; off < 4; off++ {
		home := r.HomeOfOffset(off)
		if home < 0 || home >= 8 {
			t.Errorf("offset %d homed on invalid node %d", off, home)
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	as := testAS(t)
	r := as.AllocRoundRobin("hist", 10*4096)
	first := r.HomeOfOffset(0)
	for page := 0; page < 10; page++ {
		if got, want := r.HomeOfOffset(page*4096), (first+page)%8; got != want {
			t.Errorf("page %d homed on node %d, want %d", page, got, want)
		}
	}
	// A second round-robin region continues the rotation rather than
	// piling onto node 0.
	r2 := as.AllocRoundRobin("hist2", 4096)
	if got, want := r2.HomeOfOffset(0), (first+10)%8; got != want {
		t.Errorf("second region first page on node %d, want %d", got, want)
	}
}

func TestOnNodePlacement(t *testing.T) {
	as := testAS(t)
	r := as.AllocOnNode("buf", 3*4096, 5)
	for off := 0; off < 3*4096; off += 1111 {
		if got := r.HomeOfOffset(off); got != 5 {
			t.Errorf("offset %d homed on node %d, want 5", off, got)
		}
	}
}

func TestOnNodePanicsOutOfRange(t *testing.T) {
	as := testAS(t)
	defer func() {
		if recover() == nil {
			t.Error("AllocOnNode(8 nodes, node 9) did not panic")
		}
	}()
	as.AllocOnNode("bad", 4096, 9)
}

func TestRegionOfAndHomeOf(t *testing.T) {
	as := testAS(t)
	r1 := as.AllocOnNode("a", 4096, 1)
	r2 := as.AllocOnNode("b", 4096, 2)
	if got := as.RegionOf(r1.Addr(100)); got != r1 {
		t.Errorf("RegionOf(r1+100) = %v, want r1", got)
	}
	if got := as.RegionOf(r2.Addr(0)); got != r2 {
		t.Errorf("RegionOf(r2) = %v, want r2", got)
	}
	if got := as.RegionOf(0); got != nil {
		t.Errorf("RegionOf(0) = %v, want nil", got)
	}
	if got := as.HomeOf(r1.Addr(50)); got != 1 {
		t.Errorf("HomeOf(r1+50) = %d, want 1", got)
	}
	if got := as.HomeOf(r2.Addr(50)); got != 2 {
		t.Errorf("HomeOf(r2+50) = %d, want 2", got)
	}
	if got := as.HomeOf(0); got != 0 {
		t.Errorf("HomeOf(unmapped) = %d, want fallback 0", got)
	}
}

func TestHomeOfAlwaysValidNode(t *testing.T) {
	as := testAS(t)
	as.AllocBlocked("k", 100000, 16)
	as.AllocRoundRobin("h", 55555)
	as.AllocOnNode("b", 8192, 7)
	f := func(raw uint32) bool {
		home := as.HomeOf(cache.Addr(raw))
		return home >= 0 && home < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceBlocked.String() != "blocked" ||
		PlaceRoundRobin.String() != "round-robin" ||
		PlaceOnNode.String() != "on-node" {
		t.Error("placement names wrong")
	}
	if Placement(99).String() == "" {
		t.Error("unknown placement should still stringify")
	}
}

func TestRegionAccessors(t *testing.T) {
	as := testAS(t)
	r := as.AllocOnNode("named", 100, 0)
	if r.Name() != "named" {
		t.Errorf("Name() = %q", r.Name())
	}
	if r.Size() != 100 {
		t.Errorf("Size() = %d", r.Size())
	}
	if r.Addr(10) != r.Base()+10 {
		t.Error("Addr arithmetic wrong")
	}
	if !r.Contains(r.Base()) || r.Contains(r.Base()+100) {
		t.Error("Contains boundary behavior wrong")
	}
}
