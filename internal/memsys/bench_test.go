package memsys

import (
	"testing"

	"repro/internal/cache"
)

// BenchmarkHomeOf measures the page→home lookup on a blocked region,
// scattered across the whole region as the sorts' permutation phases
// are (every lookup a different page, defeating any memo). The address
// space holds a dozen regions, like a real sorting run's (keys,
// destination, histograms, per-proc heaps), so a region-walk lookup
// pays a realistic search.
func BenchmarkHomeOf(b *testing.B) {
	as, err := New(1024, 8, func(p int) int { return p / 2 })
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		as.AllocRoundRobin("pre", 64<<10)
	}
	r := as.AllocBlocked("keys", 1<<22, 16)
	for i := 0; i < 6; i++ {
		as.AllocOnNode("post", 64<<10, i)
	}
	span := uint64(r.Size())
	base := uint64(r.Base())
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		as.HomeOf(cache.Addr(base + x%span))
	}
}

// BenchmarkRegionOf measures the region lookup with the last-region
// memo hitting (the common case: a run's accesses cluster by region).
func BenchmarkRegionOf(b *testing.B) {
	as, err := New(1024, 8, func(p int) int { return p / 2 })
	if err != nil {
		b.Fatal(err)
	}
	var regions []*Region
	for i := 0; i < 8; i++ {
		regions = append(regions, as.AllocBlocked("r", 1<<16, 16))
	}
	r := regions[4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.RegionOf(r.Addr(i % r.Size()))
	}
}
