package shmem

import (
	"testing"

	"repro/internal/machine"
)

func comm(t *testing.T, procs int) *Comm {
	t.Helper()
	m, err := machine.New(machine.Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return New(m, DefaultConfig())
}

func TestGetMovesDataAndCharges(t *testing.T) {
	c := comm(t, 4)
	sym := NewSym[uint32](c, "buf", 1024)
	res := c.Machine().Run(func(p *machine.Proc) {
		// Rank 3 fills its segment; rank 0 gets it after a barrier.
		if p.ID == 3 {
			for i := range sym.Local(p).Data {
				sym.Local(p).Data[i] = uint32(i) * 7
			}
			sym.Local(p).StoreRange(p, 0, 1024, machine.Private)
		}
		c.Barrier(p)
		if p.ID == 0 {
			sym.Get(p, 0, 3, 0, 1024)
			for i, v := range sym.Local(p).Data {
				if v != uint32(i)*7 {
					t.Errorf("element %d = %d, want %d", i, v, uint32(i)*7)
					break
				}
			}
			// Get fills the requester's cache.
			if !p.CacheContains(sym.Local(p).Addr(0)) {
				t.Error("get did not install lines in the caller's cache")
			}
		}
	})
	if res.PerProc[0].Breakdown.RMem == 0 {
		t.Error("get from a remote rank charged no RMem")
	}
	if res.PerProc[0].Traffic.Messages == 0 {
		t.Error("get recorded no message")
	}
}

func TestPutMovesDataWithoutCachingAtDest(t *testing.T) {
	c := comm(t, 4)
	sym := NewSym[uint32](c, "buf", 256)
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 1 {
			for i := range sym.Local(p).Data {
				sym.Local(p).Data[i] = 42
			}
			sym.Put(p, 2, 0, 0, 256)
		}
		c.Barrier(p)
		if p.ID == 2 {
			if sym.Local(p).Data[0] != 42 {
				t.Errorf("put data did not arrive: %d", sym.Local(p).Data[0])
			}
			// Put does not deposit into the destination cache.
			if p.CacheContains(sym.Local(p).Addr(0)) {
				t.Error("put deposited lines into destination cache")
			}
		}
	})
}

func TestGetZeroLengthIsFree(t *testing.T) {
	c := comm(t, 2)
	sym := NewSym[uint32](c, "buf", 16)
	res := c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			sym.Get(p, 0, 1, 0, 0)
		}
	})
	if got := res.PerProc[0].Breakdown.Total(); got != 0 {
		t.Errorf("zero-length get cost %v, want 0", got)
	}
}

func TestGetIntoPrivateBuffer(t *testing.T) {
	c := comm(t, 4)
	sym := NewSym[uint32](c, "src", 64)
	c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 2 {
			for i := range sym.Local(p).Data {
				sym.Local(p).Data[i] = 9
			}
		}
		c.Barrier(p)
		if p.ID == 0 {
			buf := machine.NewArrayOnProc[uint32](c.Machine(), "priv", 64, 0)
			sym.GetInto(p, buf, 0, 2, 0, 64)
			if buf.Data[0] != 9 || buf.Data[63] != 9 {
				t.Errorf("GetInto data wrong: %d, %d", buf.Data[0], buf.Data[63])
			}
		}
	})
}

func TestCollectGathersAll(t *testing.T) {
	const procs, count = 8, 4
	c := comm(t, procs)
	src := NewSym[int64](c, "src", count)
	dst := NewSym[int64](c, "dst", count*procs)
	c.Machine().Run(func(p *machine.Proc) {
		for i := 0; i < count; i++ {
			src.Local(p).Data[i] = int64(p.ID*100 + i)
		}
		src.Local(p).StoreRange(p, 0, count, machine.Private)
		Collect(p, src, dst, count)
		c.Barrier(p)
		for r := 0; r < procs; r++ {
			for i := 0; i < count; i++ {
				want := int64(r*100 + i)
				if got := dst.Local(p).Data[r*count+i]; got != want {
					t.Errorf("proc %d dst[%d][%d] = %d, want %d", p.ID, r, i, got, want)
					return
				}
			}
		}
	})
}

func TestCollectDeterministic(t *testing.T) {
	run := func() float64 {
		c := comm(t, 8)
		src := NewSym[int64](c, "s", 16)
		dst := NewSym[int64](c, "d", 16*8)
		res := c.Machine().Run(func(p *machine.Proc) {
			for i := range src.Local(p).Data {
				src.Local(p).Data[i] = int64(p.ID + i)
			}
			Collect(p, src, dst, 16)
		})
		return res.TimeNs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic collect: %v vs %v", a, b)
	}
}

func TestSymSegmentHoming(t *testing.T) {
	c := comm(t, 8)
	sym := NewSym[uint32](c, "seg", 1024)
	as := c.Machine().AddressSpace()
	top := c.Machine().Topology()
	for r := 0; r < 8; r++ {
		if got, want := as.HomeOf(sym.Seg[r].Addr(0)), top.NodeOf(r); got != want {
			t.Errorf("rank %d segment homed on node %d, want %d", r, got, want)
		}
	}
}

func TestPutRemoteCostsMoreThanLocalNode(t *testing.T) {
	c := comm(t, 8) // 4 nodes
	sym := NewSym[uint32](c, "b", 4096)
	res := c.Machine().Run(func(p *machine.Proc) {
		switch p.ID {
		case 0:
			sym.Put(p, 1, 0, 0, 4096) // rank 1 shares node 0
		case 4:
			sym.Put(p, 7, 0, 0, 4096) // ranks 4,7 on different nodes
		}
	})
	sameNode := res.PerProc[0].Breakdown.Total()
	crossNode := res.PerProc[4].Breakdown.Total()
	if sameNode >= crossNode {
		t.Errorf("same-node put (%v) should be cheaper than cross-node (%v)", sameNode, crossNode)
	}
}

func TestScaledDividesFixedCosts(t *testing.T) {
	base := DefaultConfig()
	c := base.Scaled(16)
	if c.GetOverheadNs != base.GetOverheadNs/16 ||
		c.PutOverheadNs != base.PutOverheadNs/16 ||
		c.CollectiveEntryNs != base.CollectiveEntryNs/16 {
		t.Errorf("Scaled(16) = %+v", c)
	}
}

func TestGetFromSameNodeRankIsLocal(t *testing.T) {
	c := comm(t, 4)
	sym := NewSym[uint32](c, "l", 256)
	res := c.Machine().Run(func(p *machine.Proc) {
		if p.ID == 0 {
			sym.Get(p, 0, 1, 0, 256) // rank 1 shares node 0
		}
	})
	if res.PerProc[0].Breakdown.RMem != 0 {
		t.Errorf("same-node get charged RMem %v", res.PerProc[0].Breakdown.RMem)
	}
	if res.PerProc[0].Breakdown.LMem == 0 {
		t.Error("same-node get charged nothing")
	}
}
