// Package shmem implements the SHMEM programming model on the simulated
// machine: a symmetric, segmented address space with one-sided put/get
// communication and collectives.
//
// As on the SGI Origin2000, only one side of a transfer is involved: a
// get pulls a remote block into the caller's memory (and cache), a put
// pushes a local block to a remote segment (without depositing it in the
// destination cache). Naming is symmetric: a processor addresses remote
// data by (rank, offset) within a segment that exists identically on all
// processors.
package shmem

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Config sets the library's cost constants.
type Config struct {
	// GetOverheadNs is the fixed CPU cost of initiating one get.
	GetOverheadNs float64
	// PutOverheadNs is the fixed CPU cost of initiating one put.
	PutOverheadNs float64
	// CollectiveEntryNs is the fixed per-processor cost of entering a
	// collective operation.
	CollectiveEntryNs float64
}

// DefaultConfig returns overheads in line with a lean one-sided library:
// a microsecond-scale initiation cost per transfer.
func DefaultConfig() Config {
	return Config{
		GetOverheadNs:     1200,
		PutOverheadNs:     1000,
		CollectiveEntryNs: 2000,
	}
}

// Scaled divides the per-event fixed costs by f, matching a machine
// whose data sizes are scaled down by f (see DESIGN.md §1).
func (c Config) Scaled(f float64) Config {
	c.GetOverheadNs /= f
	c.PutOverheadNs /= f
	c.CollectiveEntryNs /= f
	return c
}

// Comm is one SHMEM execution context over a machine.
type Comm struct {
	m   *machine.Machine
	cfg Config
}

// New builds a SHMEM context.
func New(m *machine.Machine, cfg Config) *Comm {
	return &Comm{m: m, cfg: cfg}
}

// Machine returns the underlying machine.
func (c *Comm) Machine() *machine.Machine { return c.m }

// Ranks returns the number of processing elements.
func (c *Comm) Ranks() int { return c.m.Procs() }

// Barrier joins the machine-wide barrier (shmem_barrier_all).
func (c *Comm) Barrier(p *machine.Proc) { c.m.Barrier(p) }

// Sym is a symmetric array: every rank owns an identical-length segment,
// addressable remotely by (rank, element offset). Data for rank r lives
// in Seg[r].Data, homed on r's node.
type Sym[T any] struct {
	c *Comm
	// Seg[r] is rank r's segment.
	Seg []*machine.Array[T]
}

// NewSym allocates a symmetric array of n elements per rank.
func NewSym[T any](c *Comm, name string, n int) *Sym[T] {
	s := &Sym[T]{c: c, Seg: make([]*machine.Array[T], c.Ranks())}
	for r := 0; r < c.Ranks(); r++ {
		s.Seg[r] = machine.NewArrayOnProc[T](c.m, fmt.Sprintf("%s[%d]", name, r), n, r)
	}
	return s
}

// NewSymReserve allocates a symmetric segment like NewSym but only
// reserves capElems of address space per rank without backing storage;
// each rank grows its own segment (Local(p).Grow) once the needed size
// is known. Useful for exchange buffers whose per-rank sizes are
// data-dependent: the symmetric addresses exist up front (so remote
// ranks can target them) while host memory is committed lazily.
func NewSymReserve[T any](c *Comm, name string, capElems int) *Sym[T] {
	s := &Sym[T]{c: c, Seg: make([]*machine.Array[T], c.Ranks())}
	for r := 0; r < c.Ranks(); r++ {
		s.Seg[r] = machine.NewArrayReserve[T](c.m, fmt.Sprintf("%s[%d]", name, r), capElems, r)
	}
	return s
}

// Local returns the calling rank's segment.
func (s *Sym[T]) Local(p *machine.Proc) *machine.Array[T] { return s.Seg[p.ID] }

// Get pulls n elements from srcRank's segment at srcOff into the
// caller's segment at dstOff (shmem_get). The transferred lines land in
// the caller's cache. The caller must ensure (by barrier or fence) that
// the source data is ready; gets carry no pairwise synchronization.
func (s *Sym[T]) Get(p *machine.Proc, dstOff, srcRank, srcOff, n int) {
	if n <= 0 {
		return
	}
	c := s.c
	start := p.Now()
	p.ComputeNs(c.cfg.GetOverheadNs)
	src := s.Seg[srcRank]
	dst := s.Seg[p.ID]
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	srcNode := c.m.Topology().NodeOf(srcRank)
	p.BulkTransfer(srcNode, dst.Bytes(n), dst.Addr(dstOff), true)
	p.TraceEvent(trace.EvGet, srcRank, dst.Bytes(n), p.Now()-start)
}

// GetInto pulls n elements from srcRank's segment at srcOff into an
// arbitrary local destination array (the common pattern of fetching into
// a private working buffer).
func (s *Sym[T]) GetInto(p *machine.Proc, dst *machine.Array[T], dstOff, srcRank, srcOff, n int) {
	if n <= 0 {
		return
	}
	c := s.c
	start := p.Now()
	p.ComputeNs(c.cfg.GetOverheadNs)
	src := s.Seg[srcRank]
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	srcNode := c.m.Topology().NodeOf(srcRank)
	p.BulkTransfer(srcNode, dst.Bytes(n), dst.Addr(dstOff), true)
	p.TraceEvent(trace.EvGet, srcRank, dst.Bytes(n), p.Now()-start)
}

// Put pushes n elements from the caller's segment at srcOff into
// dstRank's segment at dstOff (shmem_put). The data does NOT land in the
// destination's cache; the destination's stale copies are invalidated.
func (s *Sym[T]) Put(p *machine.Proc, dstRank, dstOff, srcOff, n int) {
	if n <= 0 {
		return
	}
	c := s.c
	start := p.Now()
	p.ComputeNs(c.cfg.PutOverheadNs)
	src := s.Seg[p.ID]
	dst := s.Seg[dstRank]
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	dstNode := c.m.Topology().NodeOf(dstRank)
	p.BulkTransfer(dstNode, dst.Bytes(n), dst.Addr(dstOff), false)
	p.TraceEvent(trace.EvPut, dstRank, dst.Bytes(n), p.Now()-start)
}

// PutFrom pushes n elements from an arbitrary local source array into
// dstRank's segment at dstOff (the put-side analogue of GetInto: the
// common pattern of pushing from a private working buffer). Like Put,
// the data does not land in the destination's cache; the destination's
// stale copies are invalidated. The caller must ensure (by barrier) that
// the destination segment is ready to receive.
func (s *Sym[T]) PutFrom(p *machine.Proc, src *machine.Array[T], srcOff, dstRank, dstOff, n int) {
	if n <= 0 {
		return
	}
	c := s.c
	start := p.Now()
	p.ComputeNs(c.cfg.PutOverheadNs)
	dst := s.Seg[dstRank]
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	dstNode := c.m.Topology().NodeOf(dstRank)
	p.BulkTransfer(dstNode, dst.Bytes(n), dst.Addr(dstOff), false)
	p.TraceEvent(trace.EvPut, dstRank, dst.Bytes(n), p.Now()-start)
}

// Collect gathers count elements from offset 0 of every rank's src
// segment into the caller's dst segment, rank-major (the SHMEM analogue
// of MPI_Allgather, here receiver-initiated: each rank gets from all
// others after a barrier). dst must hold count*Ranks() elements.
func Collect[T any](p *machine.Proc, src, dst *Sym[T], count int) {
	c := src.c
	p.ComputeNs(c.cfg.CollectiveEntryNs)
	// The source data must be globally visible before anyone pulls.
	c.Barrier(p)
	me := p.ID
	ranks := c.Ranks()
	// Local part first (a cheap memory copy), then round-robin gets
	// starting after self so all ranks don't hammer rank 0 at once.
	d := dst.Seg[me]
	s := src.Seg[me]
	copy(d.Data[me*count:(me+1)*count], s.Data[:count])
	d.StoreRange(p, me*count, (me+1)*count, machine.Private)
	s.LoadRange(p, 0, count, machine.Private)
	for k := 1; k < ranks; k++ {
		r := (me + k) % ranks
		src.GetInto(p, d, r*count, r, 0, count)
	}
	// No trailing barrier: callers that need global completion barrier
	// themselves (matching shmem collectives' semantics on this machine).
}
