package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64-byte lines = 512 bytes.
	return New(Config{Size: 512, LineSize: 64, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Size: 4 << 20, LineSize: 128, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Size: 0, LineSize: 128, Ways: 2},
		{Size: 4096, LineSize: 0, Ways: 2},
		{Size: 4096, LineSize: 128, Ways: 0},
		{Size: 4096, LineSize: 100, Ways: 2},        // line size not power of two
		{Size: 4096 + 128, LineSize: 128, Ways: 2},  // not divisible
		{Size: 128 * 2 * 3, LineSize: 128, Ways: 2}, // 3 sets: not power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if res := c.Access(0x100, false); res.Hit {
		t.Error("first access should miss")
	}
	if res := c.Access(0x100, false); !res.Hit {
		t.Error("second access should hit")
	}
	// Another address in the same line also hits.
	if res := c.Access(0x13f, false); !res.Hit {
		t.Error("same-line access should hit")
	}
	// Next line misses.
	if res := c.Access(0x140, false); res.Hit {
		t.Error("next-line access should miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (set stride = sets*line = 4*64 = 256).
	a, b, d := Addr(0), Addr(256), Addr(512)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Contains(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d should be present")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	a, b, d := Addr(0), Addr(256), Addr(512)
	c.Access(a, true) // dirty
	c.Access(b, false)
	res := c.Access(d, false) // evicts a (LRU, dirty)
	if !res.WriteBack {
		t.Fatal("expected a writeback")
	}
	if res.WritebackAddr != a {
		t.Errorf("writeback addr = %#x, want %#x", res.WritebackAddr, a)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(256, false)
	res := c.Access(512, false)
	if res.WriteBack {
		t.Error("clean eviction should not write back")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small()
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit marks dirty
	c.Access(256, false)
	res := c.Access(512, false) // evicts line 0
	if !res.WriteBack || res.WritebackAddr != 0 {
		t.Errorf("expected writeback of line 0, got %+v", res)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line should be gone after invalidate")
	}
	present, dirty = c.Invalidate(0x40)
	if present || dirty {
		t.Errorf("second Invalidate = (%v,%v), want (false,false)", present, dirty)
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	if got := c.Flush(); got != 2 {
		t.Errorf("Flush dropped %d dirty lines, want 2", got)
	}
	for _, a := range []Addr{0, 64, 128} {
		if c.Contains(a) {
			t.Errorf("line %#x survived flush", a)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	c := small()
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Access(Addr(a), a%2 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Writebacks <= s.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsAllHitsAfterWarmup(t *testing.T) {
	// Property: once a working set no larger than the cache has been
	// touched, re-walking it sequentially produces no misses (no
	// conflict misses for a contiguous region filling the cache exactly).
	c := New(Config{Size: 4096, LineSize: 64, Ways: 2})
	for a := Addr(0); a < 4096; a += 64 {
		c.Access(a, false)
	}
	before := c.Stats().Misses
	for a := Addr(0); a < 4096; a += 64 {
		if res := c.Access(a, false); !res.Hit {
			t.Fatalf("address %#x missed on re-walk", a)
		}
	}
	if c.Stats().Misses != before {
		t.Error("misses increased during re-walk")
	}
}

func TestWorkingSetExceedsCacheThrashes(t *testing.T) {
	// Walking a region 2x the cache capacity repeatedly should miss every
	// line with LRU replacement (the classic sequential-thrash pattern).
	c := New(Config{Size: 4096, LineSize: 64, Ways: 2})
	for round := 0; round < 3; round++ {
		for a := Addr(0); a < 8192; a += 64 {
			c.Access(a, false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Errorf("expected pure thrashing (0 hits), got %d hits", s.Hits)
	}
}

func TestLineAddr(t *testing.T) {
	c := small()
	cases := []struct{ in, want Addr }{
		{0, 0}, {63, 0}, {64, 64}, {127, 64}, {1000, 960},
	}
	for _, cse := range cases {
		if got := c.LineAddr(cse.in); got != cse.want {
			t.Errorf("LineAddr(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestWritebackAddressReconstruction(t *testing.T) {
	// Property: whenever a writeback occurs, the reported address is
	// line-aligned and maps to the same set as the new address.
	c := small()
	f := func(addrs []uint16) bool {
		for _, raw := range addrs {
			a := Addr(raw)
			res := c.Access(a, true)
			if res.WriteBack {
				wa := res.WritebackAddr
				if wa != c.LineAddr(wa) {
					return false
				}
				// Same set: bits [6:8) must match.
				if (uint64(wa)>>6)&3 != (uint64(a)>>6)&3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
