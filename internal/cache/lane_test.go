package cache

import (
	"math/rand"
	"testing"
)

// TestLaneEquivalence drives two identical cache+TLB pairs through the
// same random access sequence — one via plain Access, one with every
// access routed through per-stream lanes — and requires bit-identical
// counters. The lane paths must be pure accelerators: same hit/miss
// decisions, same replacement state, same statistics.
func TestLaneEquivalence(t *testing.T) {
	cfgs := []Config{
		{Size: 4096, LineSize: 64, Ways: 2},
		{Size: 8192, LineSize: 32, Ways: 4},
	}
	tcfg := TLBConfig{Entries: 8, PageSize: 1024}
	for _, cfg := range cfgs {
		ref := New(cfg)
		fast := New(cfg)
		refTLB := NewTLB(tcfg)
		fastTLB := NewTLB(tcfg)

		// Three lanes mimic the sorts' three interleaved streams
		// (sequential source, table, scattered target).
		var lanes [3]Lane
		var tlbLanes [3]TLBLane
		for i := range lanes {
			lanes[i].Reset()
			fastTLB.AttachLane(&tlbLanes[i])
		}

		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200000; i++ {
			lane := rng.Intn(3)
			var a Addr
			switch lane {
			case 0: // sequential sweep with same-line runs
				a = Addr((i / 3 * 4) % 65536)
			case 1: // small hot table
				a = Addr(65536 + rng.Intn(64)*4)
			case 2: // scattered target
				a = Addr(131072 + rng.Intn(16384)*4)
			}
			write := rng.Intn(4) == 0

			wantTLB := refTLB.Access(a)
			gotTLB := fastTLB.AccessLane(&tlbLanes[lane], a)
			if wantTLB != gotTLB {
				t.Fatalf("cfg %+v step %d addr %#x: tlb miss ref=%v lane=%v", cfg, i, a, wantTLB, gotTLB)
			}

			want := ref.Access(a, write)
			got := fast.AccessLane(&lanes[lane], a, write)
			if want != got {
				t.Fatalf("cfg %+v step %d addr %#x write=%v: ref=%+v lane=%+v", cfg, i, a, write, want, got)
			}

			// Occasionally interleave plain accesses and invalidations on
			// the lane side to prove lanes self-heal after external state
			// changes.
			if rng.Intn(64) == 0 {
				b := Addr(rng.Intn(1 << 18))
				w := rng.Intn(2) == 0
				rw := ref.Access(b, w)
				fw := fast.Access(b, w)
				if rw != fw {
					t.Fatalf("step %d interleave addr %#x: ref=%+v fast=%+v", i, b, rw, fw)
				}
				refTLB.Access(b)
				fastTLB.Access(b)
			}
			if rng.Intn(512) == 0 {
				b := Addr(rng.Intn(1 << 18))
				rp, rd := ref.Invalidate(b)
				fp, fd := fast.Invalidate(b)
				if rp != fp || rd != fd {
					t.Fatalf("step %d invalidate addr %#x: ref=(%v,%v) fast=(%v,%v)", i, b, rp, rd, fp, fd)
				}
			}
			if rng.Intn(4096) == 0 {
				if rd, fd := ref.Flush(), fast.Flush(); rd != fd {
					t.Fatalf("step %d flush: ref dirty=%d fast dirty=%d", i, rd, fd)
				}
				refTLB.Flush()
				fastTLB.Flush()
			}
		}
		if rs, fs := ref.Stats(), fast.Stats(); rs != fs {
			t.Fatalf("cfg %+v: cache stats diverged: ref=%+v fast=%+v", cfg, rs, fs)
		}
		if rs, fs := refTLB.Stats(), fastTLB.Stats(); rs != fs {
			t.Fatalf("cfg %+v: tlb stats diverged: ref=%+v fast=%+v", cfg, rs, fs)
		}
		fastTLB.DetachLanes()
		if len(fastTLB.lanes) != 0 {
			t.Fatalf("DetachLanes left %d lanes registered", len(fastTLB.lanes))
		}
	}
}

// TestTLBLaneEvictionClears proves a lane never reports a stale hit for
// a page that was evicted from the resident set: force an eviction of
// the lane's page through the plain path, then re-access it via the
// lane and require a miss.
func TestTLBLaneEvictionClears(t *testing.T) {
	tl := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	var lane TLBLane
	tl.AttachLane(&lane)

	if miss := tl.AccessLane(&lane, 0); !miss {
		t.Fatal("first access should miss")
	}
	// Fill the TLB past capacity so page 0 (FIFO head) is evicted.
	for p := 1; p <= 4; p++ {
		tl.Access(Addr(p * 1024))
	}
	if miss := tl.AccessLane(&lane, 0); !miss {
		t.Fatal("lane returned a hit for an evicted page")
	}

	// Flush must also clear lanes.
	tl.Flush()
	if miss := tl.AccessLane(&lane, 0); !miss {
		t.Fatal("lane returned a hit after Flush")
	}
}
