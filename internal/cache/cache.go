// Package cache provides deterministic per-processor cache and TLB
// models for the DSM machine simulator.
//
// The cache is a set-associative, write-back, write-allocate cache with
// LRU replacement, modeled at line granularity: it tracks tags and dirty
// bits but not data (the simulator keeps real data in ordinary Go slices;
// the cache model exists purely to count hits, misses, and writebacks).
// The TLB is a fully-associative LRU translation buffer modeled at page
// granularity.
//
// Both models are private to one simulated processor and are therefore
// free of locks; the coherence protocol between processors is priced
// separately by package coherence.
package cache

import "fmt"

// Addr is a simulated physical address in the machine's global address
// space.
type Addr uint64

// Config describes a cache's geometry.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line (block) size in bytes. Must be a power of two.
	LineSize int
	// Ways is the set associativity. The Origin2000's L2 is 2-way.
	Ways int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: size, line size and ways must be positive: %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineSize)
	}
	if c.Size%(c.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line size * ways (%d)",
			c.Size, c.LineSize*c.Ways)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// AccessResult describes what happened on one cache access.
type AccessResult struct {
	// Hit is true when the line was present.
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make room,
	// valid only when WriteBack is true.
	WritebackAddr Addr
	// WriteBack is true when a dirty victim was evicted.
	WriteBack bool
}

// Stats accumulates cache event counts. Hits is derived (every access
// either hits or misses), so the hot path maintains only two counters;
// Cache.Stats fills Hits in.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// A line packs its state into two words so the probe loop does one load
// and one masked compare per way, and the whole array stays a third
// smaller in host memory than the naive struct (the lines array is the
// hottest data structure in the simulator).
//
// meta layout: bit 0 = valid, bit 1 = dirty, bits 2.. = tag. Simulated
// addresses come from the address space allocator, which hands out a few
// megabytes starting at the page size, so tags are far below the 62 bits
// available.
type line struct {
	meta uint64
	// lru is a per-set sequence number; the smallest is the LRU victim.
	// Valid lines always have lru >= 1 (the tick starts at 1), so 0
	// doubles as the "invalid way" marker in victim selection.
	lru uint64
}

const (
	lineValid  = 1 << 0
	lineDirty  = 1 << 1
	lineTagLSB = 2
)

// Cache is a set-associative write-back cache model.
//
// The LRU sequence number handed to lines is stats.Accesses: it
// increments exactly once per Access, so it is the same sequence the
// former dedicated tick counter produced, with one fewer counter update
// on the hot path.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	// tagShift is log2(sets), precomputed at construction: every access
	// needs it to split a line number into set index and tag, and
	// recomputing it with a loop per access dominated the simulator's
	// host-time profile (ISSUE 4).
	tagShift uint
	setMask  uint64
	// twoWay selects the unrolled probe for the ubiquitous 2-way
	// geometry (the Origin2000's L2); other associativities take the
	// general loop.
	twoWay bool
	lines  []line // sets*ways, set-major
	stats  Stats

	// Two-entry line memo: pointer and line number of the two most
	// recently touched resident lines, MRU first. Element-granular
	// sweeps touch the same line dozens of times in a row, and the
	// sorts' permutation passes alternate a sequential load with a
	// scattered store — a pattern that defeats a one-entry memo but is
	// exactly captured by two. (A third entry was measured and lost:
	// unlike the TLB, whose page memo captures the permutation pass's
	// three-stream rotation, the cache-line streams churn too fast for
	// the extra rotation work to pay for the probes it saves.) An
	// entry is empty when its line number is memoNone (simulated
	// addresses are far too small to reach it), which keeps the
	// hot-path test to a single compare; holding a *line rather than
	// an index makes the memoized hit free of bounds checks. The memo
	// is maintained so it can never name an evicted line (fills
	// repoint or clear it, Invalidate and Flush clear it), and a memo
	// hit performs the same stats/LRU/dirty updates as the probe it
	// skips, so behavior is bit-identical.
	lastLineNum uint64
	prevLineNum uint64
	lastLine    *line
	prevLine    *line
}

// memoNone marks an empty memo entry: no simulated address shifts down
// to this line or page number (the address space allocates a few
// megabytes upward from the page size).
const memoNone = ^uint64(0)

// New builds a cache with the given geometry. It panics if the
// configuration is invalid; geometries come from static machine presets.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:         cfg,
		sets:        sets,
		lineShift:   shift,
		tagShift:    uint(log2(sets)),
		setMask:     uint64(sets - 1),
		twoWay:      cfg.Ways == 2,
		lines:       make([]line, sets*cfg.Ways),
		lastLineNum: memoNone,
		prevLineNum: memoNone,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Hits = s.Accesses - s.Misses
	return s
}

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a Addr) Addr {
	return a &^ Addr(c.cfg.LineSize-1)
}

// Access simulates one access to address a. write marks the line dirty.
// The returned result reports hit/miss and any dirty eviction.
//
// The function is split so the memoized-hit path stays within the
// compiler's inlining budget; accessSlow carries the probe and fill.
// accessHit is the shared hit result; returning a prebuilt value keeps
// the fast path within the inlining budget.
var accessHit = AccessResult{Hit: true}

func (c *Cache) Access(a Addr, write bool) AccessResult {
	c.stats.Accesses++
	lineNum := uint64(a) >> c.lineShift
	if lineNum != c.lastLineNum {
		return c.accessSlow(lineNum, write)
	}
	ln := c.lastLine
	ln.lru = c.stats.Accesses
	if write {
		ln.meta |= lineDirty
	}
	return accessHit
}

// accessSlow handles an access that missed the MRU memo entry: second
// memo entry, then set probe, then fill.
func (c *Cache) accessSlow(lineNum uint64, write bool) AccessResult {
	tick := c.stats.Accesses
	if lineNum == c.prevLineNum {
		ln := c.prevLine
		ln.lru = tick
		if write {
			ln.meta |= lineDirty
		}
		// Promote to MRU; old MRU becomes the second entry.
		c.lastLineNum, c.lastLine, c.prevLineNum, c.prevLine =
			lineNum, ln, c.lastLineNum, c.lastLine
		return AccessResult{Hit: true}
	}
	set := int(lineNum & c.setMask)
	tag := lineNum >> c.tagShift
	// want is the meta word of a valid, clean line with this tag; masking
	// the dirty bit out of a candidate makes the hit test one compare.
	want := tag<<lineTagLSB | lineValid

	var hit, victim *line
	if c.twoWay {
		// Unrolled probe for the 2-way geometry every machine preset
		// uses. Victim choice matches the general loop: first invalid
		// way (way 0 preferred), else the lower LRU sequence number.
		base := set * 2
		s := c.lines[base : base+2 : base+2]
		l0, l1 := &s[0], &s[1]
		m0, m1 := l0.meta, l1.meta
		switch {
		case m0&^uint64(lineDirty) == want:
			hit = l0
		case m1&^uint64(lineDirty) == want:
			hit = l1
		case m0&lineValid == 0:
			victim = l0
		case m1&lineValid == 0:
			victim = l1
		case l1.lru < l0.lru:
			victim = l1
		default:
			victim = l0
		}
	} else {
		hit, victim = c.probe(set, want)
	}
	if hit != nil {
		hit.lru = tick
		if write {
			hit.meta |= lineDirty
		}
		c.prevLineNum, c.prevLine = c.lastLineNum, c.lastLine
		c.lastLineNum, c.lastLine = lineNum, hit
		return AccessResult{Hit: true}
	}

	// Miss: fill the victim way.
	c.stats.Misses++
	ln := victim
	res := AccessResult{}
	if ln.meta&(lineValid|lineDirty) == lineValid|lineDirty {
		res.WriteBack = true
		res.WritebackAddr = c.reconstruct(ln.meta>>lineTagLSB, set)
		c.stats.Writebacks++
	}
	nm := want
	if write {
		nm |= lineDirty
	}
	ln.meta = nm
	ln.lru = tick
	// Fills update the memo, so it can never name an evicted line: the
	// only way a resident line leaves the cache is a fill into its slot
	// (which repoints the memo here, and clears the second entry if it
	// named the victim slot) or Invalidate/Flush (which clear it).
	c.prevLineNum, c.prevLine = c.lastLineNum, c.lastLine
	c.lastLineNum, c.lastLine = lineNum, ln
	if c.prevLine == ln {
		c.prevLineNum = memoNone
	}
	return res
}

// A Lane is a per-stream line memo for the batched access kernels
// (machine's stream engine): each concurrent access stream of a kernel —
// the sequential key sweep, the histogram gather, the scattered store —
// holds its own Lane, so the streams stop evicting each other out of the
// cache's two shared memo entries and a same-line run costs one compare
// per access after its first touch (this is the run-coalescing fast
// path: the first touch of a line is simulated exactly, the remaining
// touches of the run take the lane hit).
//
// A Lane is self-validating, so it needs no registry and no
// invalidation hooks: the fast path re-checks that the slot it points at
// still holds a valid line with the lane's tag. The pointed-at slot
// belongs to one set forever and the lane's line number fixes both the
// set and the tag, so a passing check identifies exactly the lane's line
// — a slot refilled with any other line, an invalidated line, or a
// flushed cache all fail the compare and fall through to the normal
// path. A lane hit performs the same stats/LRU/dirty updates as the
// probe it skips, so behavior is bit-identical to plain Access
// (FuzzAccessOracle drives both side by side).
type Lane struct {
	lineNum uint64
	// want is the meta word of a valid, clean line with lineNum's tag
	// (precomputed at capture so the hit test is one masked compare).
	want uint64
	ln   *line
}

// Reset empties the lane; the next access through it takes the normal
// path and recaptures.
func (l *Lane) Reset() { l.lineNum = memoNone; l.ln = nil; l.want = 0 }

// AccessLane is Access with the lane as a private memo: identical
// observable behavior (stats, LRU, dirty bits, hit/miss/writeback), but
// the memoized-hit test uses the caller's lane, so interleaved streams
// each keep their own hot line. The cache's shared memo entries are
// not rotated on a lane hit; they are pure accelerators, so skipping
// them changes no modeled outcome.
func (c *Cache) AccessLane(l *Lane, a Addr, write bool) AccessResult {
	if c.LaneHit(l, a, write) {
		return accessHit
	}
	return c.laneSlow(l, uint64(a)>>c.lineShift, write)
}

// LaneHit is the inlinable half of AccessLane: it counts the access and
// completes it if it hits the lane, reporting whether it did. On false
// the caller must finish the access with AccessLaneMiss (the access is
// already counted; calling neither would desynchronize the stats). The
// split lets a kernel's per-element loop resolve lane hits without any
// function call.
func (c *Cache) LaneHit(l *Lane, a Addr, write bool) bool {
	c.stats.Accesses++
	if uint64(a)>>c.lineShift == l.lineNum && l.ln.meta&^uint64(lineDirty) == l.want {
		ln := l.ln
		ln.lru = c.stats.Accesses
		if write {
			ln.meta |= lineDirty
		}
		return true
	}
	return false
}

// AccessLaneMiss completes an access whose LaneHit returned false,
// resolving it through the cache's normal path and recapturing the lane.
func (c *Cache) AccessLaneMiss(l *Lane, a Addr, write bool) AccessResult {
	return c.laneSlow(l, uint64(a)>>c.lineShift, write)
}

// laneSlow resolves a lane miss through the cache's normal path (shared
// memo, probe, fill) and recaptures the lane: every exit of that path
// leaves the just-touched line as the MRU memo entry, which is exactly
// the line the lane should name.
func (c *Cache) laneSlow(l *Lane, lineNum uint64, write bool) AccessResult {
	var res AccessResult
	if lineNum == c.lastLineNum {
		ln := c.lastLine
		ln.lru = c.stats.Accesses
		if write {
			ln.meta |= lineDirty
		}
		res = accessHit
	} else {
		res = c.accessSlow(lineNum, write)
	}
	l.lineNum = lineNum
	l.ln = c.lastLine
	l.want = lineNum>>c.tagShift<<lineTagLSB | lineValid
	return res
}

// probe is the general-associativity one-pass hit/victim scan: it
// returns the hitting line, or the victim (first invalid way, else the
// lowest-LRU way). Valid lines always have lru >= 1, so oldest == 0
// marks an invalid-way victim that no valid line may displace.
func (c *Cache) probe(set int, want uint64) (hit, victim *line) {
	ways := c.cfg.Ways
	base := set * ways
	s := c.lines[base : base+ways : base+ways]
	var oldest uint64
	for i := range s {
		ln := &s[i]
		m := ln.meta
		if m&lineValid == 0 {
			if victim == nil || oldest != 0 {
				victim = ln
				oldest = 0
			}
			continue
		}
		if m&^uint64(lineDirty) == want {
			return ln, nil
		}
		if victim == nil || (oldest != 0 && ln.lru < oldest) {
			victim = ln
			oldest = ln.lru
		}
	}
	return nil, victim
}

// Contains reports whether the line holding a is currently cached.
func (c *Cache) Contains(a Addr) bool {
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> c.tagShift
	want := tag<<lineTagLSB | lineValid
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		if c.lines[base+i].meta&^uint64(lineDirty) == want {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding a, if present, and reports whether it
// was dirty (the caller prices the resulting writeback transaction).
func (c *Cache) Invalidate(a Addr) (present, dirty bool) {
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> c.tagShift
	want := tag<<lineTagLSB | lineValid
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.meta&^uint64(lineDirty) == want {
			d := ln.meta&lineDirty != 0
			ln.meta = 0
			if c.lastLine == ln {
				c.lastLineNum = memoNone
			}
			if c.prevLine == ln {
				c.prevLineNum = memoNone
			}
			return true, d
		}
	}
	return false, false
}

// CorruptMemoForTest poisons the MRU line-memo entry so the next access
// to a's line reports a memoized hit regardless of whether the line is
// resident, pointing the memo at way 0 of set 0. It deliberately breaks
// the memo invariant ("a memo entry never names a non-resident line") so
// the paranoid differential oracle can prove it detects memo-layer
// corruption; it must never be called outside tests.
func (c *Cache) CorruptMemoForTest(a Addr) {
	c.lastLineNum = uint64(a) >> c.lineShift
	c.lastLine = &c.lines[0]
}

// Flush invalidates every line and returns the number of dirty lines
// dropped.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].meta&(lineValid|lineDirty) == lineValid|lineDirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	c.lastLineNum = memoNone
	c.prevLineNum = memoNone
	return dirty
}

func (c *Cache) reconstruct(tag uint64, set int) Addr {
	lineNum := tag<<c.tagShift | uint64(set)
	return Addr(lineNum << c.lineShift)
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
