// Package cache provides deterministic per-processor cache and TLB
// models for the DSM machine simulator.
//
// The cache is a set-associative, write-back, write-allocate cache with
// LRU replacement, modeled at line granularity: it tracks tags and dirty
// bits but not data (the simulator keeps real data in ordinary Go slices;
// the cache model exists purely to count hits, misses, and writebacks).
// The TLB is a fully-associative LRU translation buffer modeled at page
// granularity.
//
// Both models are private to one simulated processor and are therefore
// free of locks; the coherence protocol between processors is priced
// separately by package coherence.
package cache

import "fmt"

// Addr is a simulated physical address in the machine's global address
// space.
type Addr uint64

// Config describes a cache's geometry.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line (block) size in bytes. Must be a power of two.
	LineSize int
	// Ways is the set associativity. The Origin2000's L2 is 2-way.
	Ways int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: size, line size and ways must be positive: %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineSize)
	}
	if c.Size%(c.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line size * ways (%d)",
			c.Size, c.LineSize*c.Ways)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// AccessResult describes what happened on one cache access.
type AccessResult struct {
	// Hit is true when the line was present.
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make room,
	// valid only when WriteBack is true.
	WritebackAddr Addr
	// WriteBack is true when a dirty victim was evicted.
	WriteBack bool
}

// Stats accumulates cache event counts.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set sequence number; the smallest is the LRU victim.
	lru uint64
}

// Cache is a set-associative write-back cache model.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	lines     []line // sets*ways, set-major
	tick      uint64
	stats     Stats
}

// New builds a cache with the given geometry. It panics if the
// configuration is invalid; geometries come from static machine presets.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     make([]line, sets*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a Addr) Addr {
	return a &^ Addr(c.cfg.LineSize-1)
}

// Access simulates one access to address a. write marks the line dirty.
// The returned result reports hit/miss and any dirty eviction.
func (c *Cache) Access(a Addr, write bool) AccessResult {
	c.tick++
	c.stats.Accesses++
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> uint(log2(c.sets))
	base := set * c.cfg.Ways

	// Hit path.
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}

	// Miss: pick an invalid way, else the LRU way.
	c.stats.Misses++
	victim := -1
	var oldest uint64
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if !ln.valid {
			victim = i
			break
		}
		if victim == -1 || ln.lru < oldest {
			victim = i
			oldest = ln.lru
		}
	}
	ln := &c.lines[base+victim]
	res := AccessResult{}
	if ln.valid && ln.dirty {
		res.WriteBack = true
		res.WritebackAddr = c.reconstruct(ln.tag, set)
		c.stats.Writebacks++
	}
	ln.valid = true
	ln.dirty = write
	ln.tag = tag
	ln.lru = c.tick
	return res
}

// Contains reports whether the line holding a is currently cached.
func (c *Cache) Contains(a Addr) bool {
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding a, if present, and reports whether it
// was dirty (the caller prices the resulting writeback transaction).
func (c *Cache) Invalidate(a Addr) (present, dirty bool) {
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			ln.valid = false
			ln.dirty = false
			return true, d
		}
	}
	return false, false
}

// Flush invalidates every line and returns the number of dirty lines
// dropped.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

func (c *Cache) reconstruct(tag uint64, set int) Addr {
	lineNum := tag<<uint(log2(c.sets)) | uint64(set)
	return Addr(lineNum << c.lineShift)
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
