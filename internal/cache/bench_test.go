package cache

import "testing"

// Benchmark geometries mirror the scaled Origin2000 preset the
// experiments run on: 256 KB, 2-way, 128-byte lines; 64-entry TLB with
// 1 KB pages.
func benchCache() *Cache {
	return New(Config{Size: 256 << 10, LineSize: 128, Ways: 2})
}

// BenchmarkAccessHit measures the cache hit path on a resident line
// rotation wide enough to defeat the line memo (the common probe case).
func BenchmarkAccessHit(b *testing.B) {
	c := benchCache()
	const lines = 64
	for i := 0; i < lines; i++ {
		c.Access(Addr(i*128), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Addr((i%lines)*128), false)
	}
}

// BenchmarkAccessMemoHit measures the memoized hit path (repeated
// touches of one line, as in an element-granular sequential sweep).
func BenchmarkAccessMemoHit(b *testing.B) {
	c := benchCache()
	c.Access(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(64, false)
	}
}

// BenchmarkAccessMiss measures the miss/fill path with dirty evictions,
// using a scattered write pattern much larger than the cache (the radix
// permutation phase).
func BenchmarkAccessMiss(b *testing.B) {
	c := benchCache()
	// Footprint 16x the cache so nearly every access misses.
	const span = 16 * (256 << 10)
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		c.Access(Addr(x%span), true)
	}
}

// BenchmarkTLBHit measures a resident-page translation (rotation wide
// enough to defeat the translation memo).
func BenchmarkTLBHit(b *testing.B) {
	t := NewTLB(TLBConfig{Entries: 64, PageSize: 1 << 10})
	for i := 0; i < 32; i++ {
		t.Access(Addr(i << 10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(Addr((i % 32) << 10))
	}
}

// BenchmarkTLBMiss measures the refill path: scattered pages spanning
// far more than the TLB's 64 entries, as in the permutation phase.
func BenchmarkTLBMiss(b *testing.B) {
	t := NewTLB(TLBConfig{Entries: 64, PageSize: 1 << 10})
	const pages = 1024
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		t.Access(Addr((x % pages) << 10))
	}
}
