package cache

import "fmt"

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	// Entries is the number of translations held. The MIPS R10000 has a
	// 64-entry TLB.
	Entries int
	// PageSize is the page size in bytes. Must be a power of two. The
	// Origin2000 default is 16 KB; the paper's experiments use 64 KB and
	// 256 KB pages.
	PageSize int
}

// Validate reports whether the configuration is usable.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb: entries must be positive, got %d", c.Entries)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("tlb: page size %d must be a positive power of two", c.PageSize)
	}
	return nil
}

// TLBStats accumulates TLB event counts.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an untouched TLB.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TLB is a fully-associative translation buffer model with FIFO
// replacement (the R10000's TLB uses random replacement; FIFO is a
// deterministic stand-in with the same capacity behavior and O(1) cost).
//
// The resident set is held in a small open-addressing hash table (plus a
// one-entry last-page memo) rather than a Go map: the translation probe
// runs once per simulated memory reference and the map lookup dominated
// the simulator's host-time profile (ISSUE 4). Replacement decisions,
// miss counts and access counts are identical to the map-based model.
type TLB struct {
	cfg       TLBConfig
	pageShift uint
	// slots is the open-addressing (linear probing, backward-shift
	// deletion) hash set of resident page numbers; slotMask = len-1.
	// A slot is empty when it holds memoNone (no simulated address
	// shifts down to it), so the probe loop is one load and two
	// compares per step and the table is half the size of a
	// page+bool layout.
	slots    []uint64
	slotMask uint64
	slotBits uint
	// ring is the FIFO eviction order over resident pages.
	ring []uint64
	head int
	// Three-entry translation memo, MRU first: sequential sweeps
	// re-translate the same page line after line, and the sorts'
	// permutation passes rotate through three streams per element (a
	// sequential key load, a histogram access, and a scattered store) —
	// a pattern that defeats shallower memos but is exactly captured by
	// three entries. An empty entry holds memoNone, which no simulated
	// address shifts down to, so each test is one compare. Hits do not
	// mutate FIFO state, so skipping the probe for a memoized resident
	// page is exact; eviction clears any memo entry naming the evicted
	// page.
	lastPage  uint64
	prevPage  uint64
	prev2Page uint64
	// accesses and misses are kept as direct fields (not a TLBStats) so
	// the counter bump in Access stays within the inlining budget;
	// Stats assembles the exported view.
	accesses uint64
	misses   uint64
	// lanes are the attached per-stream page memos (see TLBLane). Unlike
	// cache lanes they need a registry: a TLB hit has no per-line state
	// to re-validate against, so eviction and Flush must clear any lane
	// naming a page that left the resident set.
	lanes []*TLBLane
}

// A TLBLane is a per-stream page memo for the batched access kernels:
// each access stream of a kernel holds its own lane, so interleaved
// streams stop churning the TLB's three shared memo entries. A lane hit
// counts the access and does nothing else — exactly what a plain Access
// hit of a memoized resident page does — so behavior is bit-identical.
//
// Lanes must be attached (AttachLane) before use and detached
// (DetachLanes) when the kernel finishes; while attached, translateSlow's
// eviction and Flush clear any lane naming the dropped page, preserving
// the invariant that a lane never names a non-resident page.
type TLBLane struct {
	page uint64
}

// AttachLane registers l with the TLB's eviction bookkeeping and empties
// it. Attach a lane once per kernel invocation; lanes are not reentrant.
func (t *TLB) AttachLane(l *TLBLane) {
	l.page = memoNone
	t.lanes = append(t.lanes, l)
}

// DetachLanes unregisters every attached lane (kernels attach and detach
// in a strict bracket; lanes never stay registered across kernel calls).
// The registry's backing array is retained, so a detach/attach cycle
// does not allocate.
func (t *TLB) DetachLanes() {
	for i := range t.lanes {
		t.lanes[i] = nil
	}
	t.lanes = t.lanes[:0]
}

// AccessLane is Access with the lane as a private memo: identical
// counters and miss decisions, but the memoized-hit test uses the
// caller's lane. A lane hit skips the shared three-entry memo rotation;
// hits do not mutate FIFO state, so the skip is exact.
func (t *TLB) AccessLane(l *TLBLane, a Addr) bool {
	if t.LaneHit(l, a) {
		return false
	}
	return t.laneSlow(l, uint64(a)>>t.pageShift)
}

// LaneHit is the inlinable half of AccessLane: it counts the access and
// reports whether it hit the lane (hits have no further effect). On
// false the caller must finish the translation with LaneRefill (the
// access is already counted). The split lets a kernel's per-element
// loop resolve lane hits without any function call.
func (t *TLB) LaneHit(l *TLBLane, a Addr) bool {
	t.accesses++
	return uint64(a)>>t.pageShift == l.page
}

// LaneRefill completes a translation whose LaneHit returned false,
// reporting whether it missed the TLB.
func (t *TLB) LaneRefill(l *TLBLane, a Addr) bool {
	return t.laneSlow(l, uint64(a)>>t.pageShift)
}

// laneSlow resolves a lane miss through the normal translation path and
// recaptures the lane.
func (t *TLB) laneSlow(l *TLBLane, page uint64) bool {
	miss := t.translate(page)
	l.page = page
	return miss
}

// NewTLB builds a TLB. It panics on invalid configuration; geometries
// come from static machine presets.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.PageSize {
		shift++
	}
	// Size the table at >= 4x entries (power of two) so probe chains stay
	// short even with the full resident set.
	bits := uint(3)
	for 1<<bits < 4*cfg.Entries {
		bits++
	}
	slots := make([]uint64, 1<<bits)
	for i := range slots {
		slots[i] = memoNone
	}
	return &TLB{
		cfg:       cfg,
		pageShift: shift,
		slots:     slots,
		slotMask:  uint64(1<<bits - 1),
		slotBits:  bits,
		ring:      make([]uint64, 0, cfg.Entries),
		lastPage:  memoNone,
		prevPage:  memoNone,
		prev2Page: memoNone,
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Stats returns a snapshot of the event counters.
func (t *TLB) Stats() TLBStats {
	return TLBStats{Accesses: t.accesses, Misses: t.misses}
}

// home returns page's preferred slot index (Fibonacci hashing).
func (t *TLB) home(page uint64) uint64 {
	return (page * 0x9E3779B97F4A7C15) >> (64 - t.slotBits)
}

// contains probes the resident set for page.
func (t *TLB) contains(page uint64) bool {
	i := t.home(page)
	for {
		pg := t.slots[i]
		if pg == page {
			return true
		}
		if pg == memoNone {
			return false
		}
		i = (i + 1) & t.slotMask
	}
}

// remove deletes page (present) from the resident set using
// backward-shift deletion, which keeps probe chains gap-free without
// tombstones.
func (t *TLB) remove(page uint64) {
	mask := t.slotMask
	i := t.home(page)
	for t.slots[i] != page {
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		pg := t.slots[j]
		if pg == memoNone {
			break
		}
		h := t.home(pg)
		// Entry at j may shift back to i only if its home position does
		// not lie strictly inside (i, j].
		if ((j - h) & mask) >= ((j - i) & mask) {
			t.slots[i] = pg
			i = j
		}
	}
	t.slots[i] = memoNone
}

// translate looks page up, refilling on a miss, and reports whether the
// translation missed. Shared by Access and AccessN; does not touch the
// access counter. Split so the memoized path inlines into the per-access
// loop; translateSlow carries the probe and refill.
func (t *TLB) translate(page uint64) (miss bool) {
	if page == t.lastPage {
		return false
	}
	return t.translateSlow(page)
}

func (t *TLB) translateSlow(page uint64) (miss bool) {
	if page == t.prevPage {
		// Promote to MRU; old MRU becomes the second entry.
		t.lastPage, t.prevPage = page, t.lastPage
		return false
	}
	if page == t.prev2Page {
		t.prev2Page = t.prevPage
		t.prevPage = t.lastPage
		t.lastPage = page
		return false
	}
	// One probe serves both outcomes: it either finds the page (hit) or
	// ends on the empty slot where the page belongs (miss refill site).
	i := t.home(page)
	for {
		pg := t.slots[i]
		if pg == page {
			t.prev2Page = t.prevPage
			t.prevPage = t.lastPage
			t.lastPage = page
			return false
		}
		if pg == memoNone {
			break
		}
		i = (i + 1) & t.slotMask
	}
	// Miss: place the page in the empty slot the probe found, then
	// retire the FIFO victim. Inserting before removing is safe — the
	// hash table's internal layout is not observable, and backward-shift
	// deletion preserves the probe-chain invariant either way.
	t.misses++
	t.slots[i] = page
	if len(t.ring) < t.cfg.Entries {
		t.ring = append(t.ring, page)
	} else {
		evicted := t.ring[t.head]
		t.remove(evicted)
		if evicted == t.lastPage {
			t.lastPage = memoNone
		}
		if evicted == t.prevPage {
			t.prevPage = memoNone
		}
		if evicted == t.prev2Page {
			t.prev2Page = memoNone
		}
		for _, ln := range t.lanes {
			if ln.page == evicted {
				ln.page = memoNone
			}
		}
		t.ring[t.head] = page
		t.head++
		if t.head == t.cfg.Entries {
			t.head = 0
		}
	}
	t.prev2Page = t.prevPage
	t.prevPage = t.lastPage
	t.lastPage = page
	return true
}

// Access simulates a translation of address a and reports whether it
// missed.
func (t *TLB) Access(a Addr) bool {
	t.accesses++
	page := uint64(a) >> t.pageShift
	if page != t.lastPage {
		return t.translateSlow(page)
	}
	return false
}

// AccessN simulates n accesses that all fall on the page containing a
// (one translation, n accesses counted). Block walks use it to hoist the
// per-page translation out of their per-line loops: after the first
// access of a page run the remaining accesses of the run hit the TLB by
// construction, so miss counts and replacement decisions are identical
// to issuing n separate Access calls.
func (t *TLB) AccessN(a Addr, n uint64) (miss bool) {
	if n == 0 {
		return false
	}
	t.accesses += n
	return t.translate(uint64(a) >> t.pageShift)
}

// Flush drops all translations.
func (t *TLB) Flush() {
	for i := range t.slots {
		t.slots[i] = memoNone
	}
	t.ring = t.ring[:0]
	t.head = 0
	t.lastPage = memoNone
	t.prevPage = memoNone
	t.prev2Page = memoNone
	for _, ln := range t.lanes {
		ln.page = memoNone
	}
}
