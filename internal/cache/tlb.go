package cache

import "fmt"

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	// Entries is the number of translations held. The MIPS R10000 has a
	// 64-entry TLB.
	Entries int
	// PageSize is the page size in bytes. Must be a power of two. The
	// Origin2000 default is 16 KB; the paper's experiments use 64 KB and
	// 256 KB pages.
	PageSize int
}

// Validate reports whether the configuration is usable.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb: entries must be positive, got %d", c.Entries)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("tlb: page size %d must be a positive power of two", c.PageSize)
	}
	return nil
}

// TLBStats accumulates TLB event counts.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an untouched TLB.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TLB is a fully-associative translation buffer model with FIFO
// replacement (the R10000's TLB uses random replacement; FIFO is a
// deterministic stand-in with the same capacity behavior and O(1) cost).
type TLB struct {
	cfg       TLBConfig
	pageShift uint
	// entries maps page number -> presence; ring is the FIFO eviction
	// order.
	entries map[uint64]bool
	ring    []uint64
	head    int
	stats   TLBStats
}

// NewTLB builds a TLB. It panics on invalid configuration; geometries
// come from static machine presets.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.PageSize {
		shift++
	}
	return &TLB{
		cfg:       cfg,
		pageShift: shift,
		entries:   make(map[uint64]bool, cfg.Entries),
		ring:      make([]uint64, 0, cfg.Entries),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Stats returns a snapshot of the event counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Access simulates a translation of address a and reports whether it
// missed.
func (t *TLB) Access(a Addr) (miss bool) {
	t.stats.Accesses++
	page := uint64(a) >> t.pageShift
	if t.entries[page] {
		return false
	}
	t.stats.Misses++
	if len(t.ring) < t.cfg.Entries {
		t.ring = append(t.ring, page)
	} else {
		delete(t.entries, t.ring[t.head])
		t.ring[t.head] = page
		t.head = (t.head + 1) % t.cfg.Entries
	}
	t.entries[page] = true
	return true
}

// Flush drops all translations.
func (t *TLB) Flush() {
	clear(t.entries)
	t.ring = t.ring[:0]
	t.head = 0
}
