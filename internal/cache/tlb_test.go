package cache

import (
	"testing"
	"testing/quick"
)

func TestTLBConfigValidate(t *testing.T) {
	if err := (TLBConfig{Entries: 64, PageSize: 16384}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []TLBConfig{
		{Entries: 0, PageSize: 16384},
		{Entries: 64, PageSize: 0},
		{Entries: 64, PageSize: 1000},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	if !tlb.Access(0) {
		t.Error("first access should miss")
	}
	if tlb.Access(0) {
		t.Error("second access should hit")
	}
	if tlb.Access(500) {
		t.Error("same-page access should hit")
	}
	if !tlb.Access(1024) {
		t.Error("next-page access should miss")
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageSize: 1024})
	tlb.Access(0 * 1024) // page 0 (oldest)
	tlb.Access(1 * 1024) // page 1
	tlb.Access(0 * 1024) // hit; FIFO order unchanged
	tlb.Access(2 * 1024) // evicts page 0 (first in)
	if !tlb.Access(0 * 1024) {
		t.Error("page 0 should have been evicted (FIFO)") // this access evicts page 1
	}
	if tlb.Access(2 * 1024) {
		t.Error("page 2 should have survived")
	}
}

func TestTLBCapacityBound(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, PageSize: 4096})
	for p := 0; p < 100; p++ {
		tlb.Access(Addr(p * 4096))
	}
	if len(tlb.entries) > 8 {
		t.Errorf("TLB holds %d entries, cap is 8", len(tlb.entries))
	}
}

func TestTLBStats(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			tlb.Access(Addr(a))
		}
		s := tlb.Stats()
		return s.Misses <= s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	tlb.Access(0)
	tlb.Flush()
	if !tlb.Access(0) {
		t.Error("access after flush should miss")
	}
}

func TestTLBMissRate(t *testing.T) {
	var s TLBStats
	if s.MissRate() != 0 {
		t.Error("empty stats should have miss rate 0")
	}
	s = TLBStats{Accesses: 10, Misses: 5}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", s.MissRate())
	}
}

func TestCacheMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats should have miss rate 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", s.MissRate())
	}
}
