package cache

import (
	"testing"
	"testing/quick"
)

func TestTLBConfigValidate(t *testing.T) {
	if err := (TLBConfig{Entries: 64, PageSize: 16384}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []TLBConfig{
		{Entries: 0, PageSize: 16384},
		{Entries: 64, PageSize: 0},
		{Entries: 64, PageSize: 1000},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	if !tlb.Access(0) {
		t.Error("first access should miss")
	}
	if tlb.Access(0) {
		t.Error("second access should hit")
	}
	if tlb.Access(500) {
		t.Error("same-page access should hit")
	}
	if !tlb.Access(1024) {
		t.Error("next-page access should miss")
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageSize: 1024})
	tlb.Access(0 * 1024) // page 0 (oldest)
	tlb.Access(1 * 1024) // page 1
	tlb.Access(0 * 1024) // hit; FIFO order unchanged
	tlb.Access(2 * 1024) // evicts page 0 (first in)
	if !tlb.Access(0 * 1024) {
		t.Error("page 0 should have been evicted (FIFO)") // this access evicts page 1
	}
	if tlb.Access(2 * 1024) {
		t.Error("page 2 should have survived")
	}
}

func TestTLBCapacityBound(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, PageSize: 4096})
	for p := 0; p < 100; p++ {
		tlb.Access(Addr(p * 4096))
	}
	resident := 0
	for _, s := range tlb.slots {
		if s != memoNone {
			resident++
		}
	}
	if resident > 8 || len(tlb.ring) > 8 {
		t.Errorf("TLB holds %d entries (ring %d), cap is 8", resident, len(tlb.ring))
	}
}

func TestTLBStats(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			tlb.Access(Addr(a))
		}
		s := tlb.Stats()
		return s.Misses <= s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageSize: 1024})
	tlb.Access(0)
	tlb.Flush()
	if !tlb.Access(0) {
		t.Error("access after flush should miss")
	}
}

func TestTLBMissRate(t *testing.T) {
	var s TLBStats
	if s.MissRate() != 0 {
		t.Error("empty stats should have miss rate 0")
	}
	s = TLBStats{Accesses: 10, Misses: 5}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", s.MissRate())
	}
}

func TestCacheMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats should have miss rate 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", s.MissRate())
	}
}

// refTLB is the original map-based FIFO TLB model, kept as a test oracle
// for the open-addressing fast path: both must agree on every miss
// decision and on the resident set, access by access.
type refTLB struct {
	entries map[uint64]bool
	ring    []uint64
	head    int
	cap     int
	shift   uint
}

func newRefTLB(cfg TLBConfig) *refTLB {
	shift := uint(0)
	for 1<<shift < cfg.PageSize {
		shift++
	}
	return &refTLB{entries: make(map[uint64]bool), cap: cfg.Entries, shift: shift}
}

func (t *refTLB) access(a Addr) (miss bool) {
	page := uint64(a) >> t.shift
	if t.entries[page] {
		return false
	}
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, page)
	} else {
		delete(t.entries, t.ring[t.head])
		t.ring[t.head] = page
		t.head = (t.head + 1) % t.cap
	}
	t.entries[page] = true
	return true
}

// TestTLBMatchesMapReference drives the open-addressing TLB and the
// legacy map model through identical pseudo-random access sequences and
// requires identical miss decisions throughout.
func TestTLBMatchesMapReference(t *testing.T) {
	for _, entries := range []int{1, 2, 7, 64} {
		cfg := TLBConfig{Entries: entries, PageSize: 1024}
		tlb := NewTLB(cfg)
		ref := newRefTLB(cfg)
		state := uint64(12345)
		for i := 0; i < 20000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			// Mix page-local reuse with far jumps over a 3*entries page
			// working set (so evictions are constant).
			a := Addr((state >> 33) % uint64(3*entries*1024))
			got, want := tlb.Access(a), ref.access(a)
			if got != want {
				t.Fatalf("entries=%d access %d (addr %#x): miss=%v, reference says %v",
					entries, i, a, got, want)
			}
		}
		if tlb.Stats().Accesses != 20000 {
			t.Errorf("accesses = %d, want 20000", tlb.Stats().Accesses)
		}
	}
}

// TestTLBAccessNEquivalence proves AccessN(a, n) leaves the TLB in the
// same state, with the same stats, as n same-page Access calls.
func TestTLBAccessNEquivalence(t *testing.T) {
	cfg := TLBConfig{Entries: 4, PageSize: 1024}
	bulk, serial := NewTLB(cfg), NewTLB(cfg)
	state := uint64(99)
	for i := 0; i < 5000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		page := Addr(((state >> 40) % 16) * 1024)
		n := uint64(state>>20) % 5
		gotMiss := bulk.AccessN(page, n)
		wantMiss := false
		for k := uint64(0); k < n; k++ {
			m := serial.Access(page + Addr(k*64)%1024)
			if k == 0 {
				wantMiss = m
			}
		}
		if n > 0 && gotMiss != wantMiss {
			t.Fatalf("step %d: AccessN miss=%v, serial first access miss=%v", i, gotMiss, wantMiss)
		}
	}
	if bulk.Stats() != serial.Stats() {
		t.Errorf("stats diverged: bulk %+v, serial %+v", bulk.Stats(), serial.Stats())
	}
}
