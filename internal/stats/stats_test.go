package stats

import (
	"bytes"
	"math"
	"testing"

	"repro"
	"repro/internal/keys"
	"repro/internal/resultcache"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnownValues(t *testing.T) {
	// Hand-computed: values {2,4,4,4,5,5,7,9}, mean 5, sample std 2.138,
	// 95% CI half-width t(0.975, df=7)=2.365 * 2.138/sqrt(8) = 1.7878.
	m := Summarize("time_ns", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 0.95)
	if m.Mean != 5 {
		t.Fatalf("mean = %v, want 5", m.Mean)
	}
	if !almost(m.Std, 2.13809, 1e-4) {
		t.Fatalf("std = %v, want 2.13809", m.Std)
	}
	if !almost(m.CIHi-m.Mean, 1.7878, 1e-3) || !almost(m.Mean-m.CILo, 1.7878, 1e-3) {
		t.Fatalf("CI = [%v, %v], want half-width 1.7878 around 5", m.CILo, m.CIHi)
	}
}

func TestCompareWelch(t *testing.T) {
	a := &VariantSummary{Label: "a", Metrics: []Metric{Summarize("time_ns", []float64{10, 11, 12, 11, 10}, 0.95)}}
	b := &VariantSummary{Label: "b", Metrics: []Metric{Summarize("time_ns", []float64{20, 21, 22, 21, 20}, 0.95)}}
	c := Compare(a, b, "time_ns", 0.95)
	if !c.Significant || c.Verdict != VerdictALess {
		t.Fatalf("clearly separated samples: got significant=%v verdict=%q", c.Significant, c.Verdict)
	}
	// Identical samples: insignificant, overlapping.
	c = Compare(a, a, "time_ns", 0.95)
	if c.Significant || c.Verdict != VerdictOverlapping {
		t.Fatalf("identical samples: got significant=%v verdict=%q", c.Significant, c.Verdict)
	}
	// Zero variance, different means: exact difference is significant.
	z1 := &VariantSummary{Label: "z1", Metrics: []Metric{Summarize("time_ns", []float64{5, 5, 5}, 0.95)}}
	z2 := &VariantSummary{Label: "z2", Metrics: []Metric{Summarize("time_ns", []float64{6, 6, 6}, 0.95)}}
	c = Compare(z1, z2, "time_ns", 0.95)
	if !c.Significant || c.Verdict != VerdictALess || c.T != 0 {
		t.Fatalf("zero-variance distinct means: got %+v", c)
	}
}

func TestTCritConservativeClamps(t *testing.T) {
	if got := tCrit(0.95, 7); got != 2.365 {
		t.Fatalf("tCrit(0.95, 7) = %v, want 2.365", got)
	}
	if got := tCrit(0.99, 4); got != 4.604 {
		t.Fatalf("tCrit(0.99, 4) = %v, want 4.604", got)
	}
	// Fractional df floors; huge df clamps to the df=30 row.
	if tCrit(0.95, 4.9) != tCrit(0.95, 4) {
		t.Fatal("fractional df should floor")
	}
	if tCrit(0.95, 1e6) != t975[29] || tCrit(0.95, 0.2) != t975[0] {
		t.Fatal("df clamping broken")
	}
}

func TestRunEnsembleValidation(t *testing.T) {
	v := []Variant{{Label: "x", Exp: repro.Experiment{N: 1 << 10, Procs: 2, Algorithm: repro.Radix, Model: repro.SHMEM}}}
	if _, err := RunEnsemble(Config{Seeds: 1}, v); err == nil {
		t.Fatal("Seeds=1 should be rejected")
	}
	if _, err := RunEnsemble(Config{Seeds: 5, Confidence: 0.5}, v); err == nil {
		t.Fatal("confidence 0.5 should be rejected")
	}
	if _, err := RunEnsemble(Config{Seeds: 5}, nil); err == nil {
		t.Fatal("no variants should be rejected")
	}
	dup := []Variant{v[0], v[0]}
	if _, err := RunEnsemble(Config{Seeds: 5}, dup); err == nil {
		t.Fatal("duplicate labels should be rejected")
	}
}

// TestEnsembleDeterministicAcrossParallelism is the -j1 ≡ -j8 byte
// identity guarantee: the rendered ensemble document may not depend on
// the worker-pool width.
func TestEnsembleDeterministicAcrossParallelism(t *testing.T) {
	vs, err := Programs(repro.Experiment{N: 1 << 13, Procs: 4, Radix: 8, Dist: keys.Zipf},
		[]string{"radix/shmem", "sample/ccsas"})
	if err != nil {
		t.Fatal(err)
	}
	var docs [][]byte
	for _, par := range []int{1, 8} {
		ens, err := RunEnsemble(Config{Seeds: 5, BaseSeed: 1, Parallelism: par}, vs)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := ens.Document()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Fatal("ensemble document differs between -j1 and -j8")
	}
}

// TestEnsembleBreakdownMetrics checks the metric plumbing: every
// summarized metric is present, positive where expected, and the
// breakdown buckets sum to less than or equal the total simulated
// time times procs (the per-proc splits cover the critical path).
func TestEnsembleBreakdownMetrics(t *testing.T) {
	vs, err := Programs(repro.Experiment{N: 1 << 12, Procs: 4, Radix: 8, Dist: keys.DupHeavy},
		[]string{"sample/ccsas"})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := RunEnsemble(Config{Seeds: 5, BaseSeed: 7}, vs)
	if err != nil {
		t.Fatal(err)
	}
	v := ens.Variant("sample/ccsas")
	if v == nil {
		t.Fatal("variant missing")
	}
	for _, name := range MetricNames {
		m := v.Metric(name)
		if m == nil {
			t.Fatalf("metric %s missing", name)
		}
		if len(m.Values) != 5 {
			t.Fatalf("metric %s has %d values, want 5", name, len(m.Values))
		}
		if m.CILo > m.Mean || m.CIHi < m.Mean {
			t.Fatalf("metric %s CI [%v,%v] does not contain mean %v", name, m.CILo, m.CIHi, m.Mean)
		}
	}
	if v.Metric("time_ns").Mean <= 0 || v.Metric("busy_ns").Mean <= 0 {
		t.Fatal("time/busy metrics should be positive")
	}
}

// TestEnsembleCacheRoundTrip stores an ensemble document in the result
// cache under a config-derived key and reads it back byte-identically.
func TestEnsembleCacheRoundTrip(t *testing.T) {
	vs, err := Programs(repro.Experiment{N: 1 << 12, Procs: 4, Radix: 8, Dist: keys.SelfSim},
		[]string{"radix/shmem", "psrs/mpi"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seeds: 5, BaseSeed: 3}
	ens, err := RunEnsemble(cfg, vs)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ens.Document()
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultcache.New(resultcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key, err := resultcache.Key(resultcache.CodeVersion(), struct {
		Cfg      Config
		Variants []Variant
	}{cfg, vs})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := store.Do(key, func() ([]byte, error) { return doc, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("cache Do returned different bytes")
	}
	cached, _, ok := store.Get(key)
	if !ok {
		t.Fatal("Get missed after Do")
	}
	if !bytes.Equal(cached, doc) {
		t.Fatal("cached document differs")
	}
}
