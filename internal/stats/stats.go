// Package stats is the statistical validation layer over the
// experiment harness: it runs an Experiment across an ensemble of K
// seeds and reduces the deterministic per-seed results to per-metric
// summaries (mean, sample stddev, Student-t confidence intervals over
// simulated time and the BUSY/LMEM/RMEM/SYNC breakdown) and pairwise
// comparison verdicts (Welch's t-test: "a<b", "b<a", or "overlapping").
//
// The paper evaluates every figure at a single seed, so each of its
// conclusions is a point estimate; the ensemble engine makes "A is
// faster than B" claims quantitative, and the ordering-regression gate
// (ordering.go) turns the committed expected orderings into a test that
// only fails when an ordering flips *outside* its confidence band.
//
// Everything here is deterministic: seeds are BaseSeed..BaseSeed+K-1,
// cells run through repro.RunAll (input-order gather on a bounded
// pool), and the Ensemble document serializes only slices in fixed
// variant-major order — so the rendered document is byte-identical at
// any parallelism.
package stats

import (
	"encoding/json"
	"fmt"
	"math"

	"repro"
)

// MetricNames are the summarized metrics, in document order: simulated
// execution time, then the per-processor breakdown buckets summed over
// processors.
var MetricNames = []string{"time_ns", "busy_ns", "lmem_ns", "rmem_ns", "sync_ns"}

// Config parameterizes an ensemble run.
type Config struct {
	// Seeds is K, the ensemble size (>= 2; the CI needs a variance).
	Seeds int
	// BaseSeed is the first seed; the ensemble runs Seeds consecutive
	// seeds starting here.
	BaseSeed uint64
	// Confidence is the two-sided CI level: 0.95 (default when 0) or
	// 0.99.
	Confidence float64
	// Parallelism bounds the worker pool (< 1 selects GOMAXPROCS). The
	// resulting document is byte-identical at any value.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	return c
}

func (c Config) validate() error {
	if c.Seeds < 2 {
		return fmt.Errorf("stats: ensemble needs >= 2 seeds, got %d", c.Seeds)
	}
	if c.Confidence != 0.95 && c.Confidence != 0.99 {
		return fmt.Errorf("stats: confidence %g not supported (0.95 or 0.99)", c.Confidence)
	}
	return nil
}

// Variant is one compared configuration: a label plus the experiment
// template. The template's Seed is overwritten per ensemble member.
type Variant struct {
	Label string
	Exp   repro.Experiment
}

// Programs builds variants from "algorithm/model" strings (e.g.
// "radix/shmem"), applying each to the base experiment. This is the
// common case of comparing programs on identical inputs.
func Programs(base repro.Experiment, progs []string) ([]Variant, error) {
	var vs []Variant
	for _, p := range progs {
		var alg, model string
		if i := indexByte(p, '/'); i < 0 {
			return nil, fmt.Errorf("stats: program %q is not algorithm/model", p)
		} else {
			alg, model = p[:i], p[i+1:]
		}
		a, err := repro.ParseAlgorithm(alg)
		if err != nil {
			return nil, err
		}
		m, err := repro.ParseModel(model)
		if err != nil {
			return nil, err
		}
		e := base
		e.Algorithm, e.Model = a, m
		vs = append(vs, Variant{Label: p, Exp: e})
	}
	return vs, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Metric is one metric summarized over the ensemble.
type Metric struct {
	Name string `json:"name"`
	// Values are the per-seed observations in seed order.
	Values []float64 `json:"values"`
	Mean   float64   `json:"mean"`
	// Std is the sample standard deviation (n-1 denominator).
	Std float64 `json:"std"`
	// CILo/CIHi bound the two-sided Student-t confidence interval for
	// the mean at the ensemble's confidence level.
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
}

// VariantSummary is one variant's metrics over the ensemble.
type VariantSummary struct {
	Label string `json:"label"`
	// Experiment is the human-readable label of the underlying
	// experiment (seed-independent part).
	Experiment string   `json:"experiment"`
	Metrics    []Metric `json:"metrics"`
}

// Metric returns the named metric summary, or nil.
func (v *VariantSummary) Metric(name string) *Metric {
	for i := range v.Metrics {
		if v.Metrics[i].Name == name {
			return &v.Metrics[i]
		}
	}
	return nil
}

// Comparison verdicts.
const (
	VerdictALess       = "a<b"         // A significantly faster (lower)
	VerdictBLess       = "b<a"         // B significantly faster (lower)
	VerdictOverlapping = "overlapping" // no significant difference
)

// Comparison is one pairwise Welch's t-test between two variants on one
// metric.
type Comparison struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Metric string  `json:"metric"`
	MeanA  float64 `json:"mean_a"`
	MeanB  float64 `json:"mean_b"`
	// T is Welch's t statistic and DF the Welch–Satterthwaite degrees
	// of freedom. Both are 0 when the pooled standard error is zero
	// (every seed identical); significance then reduces to exact
	// inequality of the means.
	T           float64 `json:"t"`
	DF          float64 `json:"df"`
	Significant bool    `json:"significant"`
	Verdict     string  `json:"verdict"`
}

// Ensemble is the serializable result document. All collections are
// slices in deterministic order (variant-major, then MetricNames order,
// then pair order), so Document bytes never depend on parallelism.
type Ensemble struct {
	Schema      string           `json:"schema"`
	Seeds       int              `json:"seeds"`
	BaseSeed    uint64           `json:"base_seed"`
	Confidence  float64          `json:"confidence"`
	Variants    []VariantSummary `json:"variants"`
	Comparisons []Comparison     `json:"comparisons"`
}

// Variant returns the named variant summary, or nil.
func (e *Ensemble) Variant(label string) *VariantSummary {
	for i := range e.Variants {
		if e.Variants[i].Label == label {
			return &e.Variants[i]
		}
	}
	return nil
}

// Comparison returns the time_ns comparison for the (a, b) pair in
// either orientation, or nil.
func (e *Ensemble) Comparison(a, b string) *Comparison {
	for i := range e.Comparisons {
		c := &e.Comparisons[i]
		if c.Metric != "time_ns" {
			continue
		}
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			return c
		}
	}
	return nil
}

// Document renders the ensemble as indented JSON with a trailing
// newline: the byte-identity unit for the determinism guarantee and the
// payload the result cache stores.
func (e *Ensemble) Document() ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunEnsemble runs every variant across cfg.Seeds consecutive seeds on
// the shared worker pool and reduces the results. Variant labels must
// be unique; any failing cell fails the ensemble.
func RunEnsemble(cfg Config, variants []Variant) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(variants) == 0 {
		return nil, fmt.Errorf("stats: no variants")
	}
	seen := map[string]bool{}
	for _, v := range variants {
		if seen[v.Label] {
			return nil, fmt.Errorf("stats: duplicate variant label %q", v.Label)
		}
		seen[v.Label] = true
	}
	cells := make([]repro.Experiment, 0, len(variants)*cfg.Seeds)
	for _, v := range variants {
		for k := 0; k < cfg.Seeds; k++ {
			e := v.Exp
			e.Seed = cfg.BaseSeed + uint64(k)
			cells = append(cells, e)
		}
	}
	outs, err := repro.RunAll(cfg.Parallelism, cells)
	if err != nil {
		return nil, err
	}
	ens := &Ensemble{
		Schema:     "ensemble/v1",
		Seeds:      cfg.Seeds,
		BaseSeed:   cfg.BaseSeed,
		Confidence: cfg.Confidence,
	}
	for vi, v := range variants {
		vals := make(map[string][]float64, len(MetricNames))
		for k := 0; k < cfg.Seeds; k++ {
			o := outs[vi*cfg.Seeds+k]
			var sum [4]float64
			for _, b := range o.Breakdowns() {
				sum[0] += b.Busy
				sum[1] += b.LMem
				sum[2] += b.RMem
				sum[3] += b.Sync
			}
			vals["time_ns"] = append(vals["time_ns"], o.TimeNs)
			vals["busy_ns"] = append(vals["busy_ns"], sum[0])
			vals["lmem_ns"] = append(vals["lmem_ns"], sum[1])
			vals["rmem_ns"] = append(vals["rmem_ns"], sum[2])
			vals["sync_ns"] = append(vals["sync_ns"], sum[3])
		}
		vs := VariantSummary{Label: v.Label, Experiment: v.Exp.Label()}
		for _, name := range MetricNames {
			vs.Metrics = append(vs.Metrics, Summarize(name, vals[name], cfg.Confidence))
		}
		ens.Variants = append(ens.Variants, vs)
	}
	for i := range ens.Variants {
		for j := i + 1; j < len(ens.Variants); j++ {
			ens.Comparisons = append(ens.Comparisons,
				Compare(&ens.Variants[i], &ens.Variants[j], "time_ns", cfg.Confidence))
		}
	}
	return ens, nil
}

// Summarize reduces per-seed observations to a Metric with a two-sided
// Student-t confidence interval for the mean.
func Summarize(name string, values []float64, confidence float64) Metric {
	m := Metric{Name: name, Values: values}
	n := float64(len(values))
	for _, v := range values {
		m.Mean += v
	}
	m.Mean /= n
	if len(values) > 1 {
		ss := 0.0
		for _, v := range values {
			d := v - m.Mean
			ss += d * d
		}
		m.Std = math.Sqrt(ss / (n - 1))
	}
	half := tCrit(confidence, n-1) * m.Std / math.Sqrt(n)
	m.CILo, m.CIHi = m.Mean-half, m.Mean+half
	return m
}

// Compare runs Welch's t-test between two variants on one metric.
func Compare(a, b *VariantSummary, metric string, confidence float64) Comparison {
	ma, mb := a.Metric(metric), b.Metric(metric)
	c := Comparison{A: a.Label, B: b.Label, Metric: metric, MeanA: ma.Mean, MeanB: mb.Mean}
	na, nb := float64(len(ma.Values)), float64(len(mb.Values))
	va, vb := ma.Std*ma.Std/na, mb.Std*mb.Std/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Fully deterministic in both variants: no sampling noise, so
		// any difference of means is exact.
		c.Significant = c.MeanA != c.MeanB
	} else {
		c.T = (c.MeanA - c.MeanB) / se
		c.DF = (va + vb) * (va + vb) /
			(va*va/(na-1) + vb*vb/(nb-1))
		c.Significant = math.Abs(c.T) > tCrit(confidence, c.DF)
	}
	switch {
	case !c.Significant:
		c.Verdict = VerdictOverlapping
	case c.MeanA < c.MeanB:
		c.Verdict = VerdictALess
	default:
		c.Verdict = VerdictBLess
	}
	return c
}

// Two-sided Student-t critical values for df 1..30 (index df-1):
// quantiles 0.975 (95% CI) and 0.995 (99% CI).
var (
	t975 = []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	t995 = []float64{
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
	}
)

// tCrit returns the two-sided critical t value. Fractional df
// (Welch–Satterthwaite) is floored and df beyond the table is clamped
// to 30 — both choices yield the larger critical value, i.e. are
// conservative about declaring significance.
func tCrit(confidence, df float64) float64 {
	table := t975
	if confidence == 0.99 {
		table = t995
	}
	i := int(df)
	if i < 1 {
		i = 1
	}
	if i > len(table) {
		i = len(table)
	}
	return table[i-1]
}
