package stats

import (
	"flag"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/orderings.json from freshly derived orderings")

const baselinePath = "testdata/orderings.json"

// TestOrderingBaseline is the ordering-regression gate: it re-derives
// every committed cell's program ordering from a small seed ensemble
// and fails when any pair flips with significance. Pairs inside their
// confidence band may land in either order. Run with -update to
// re-baseline intentionally.
func TestOrderingBaseline(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(baselinePath))
	if err != nil {
		t.Fatal(err)
	}
	results, err := CheckBaseline(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		for i, r := range results {
			b.Cells[i].Order = r.DerivedOrder
		}
		if err := b.Save(baselinePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-baselined %d cells", len(results))
		return
	}
	for _, r := range results {
		t.Logf("cell %s: derived order %v", r.Cell.Name, r.DerivedOrder)
		for _, f := range r.Flips {
			t.Errorf("cell %s: ordering flipped: %s", r.Cell.Name, f)
		}
	}
}

// TestOrderingGateMutation proves the gate has teeth: artificially
// flipping a significant pair in the expected order must produce a
// flip, and the true order must not.
func TestOrderingGateMutation(t *testing.T) {
	b, err := LoadBaseline(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	cell := b.Cells[0]
	r, err := CheckCell(Config{Seeds: b.Seeds, BaseSeed: b.BaseSeed, Confidence: b.Confidence}, cell)
	if err != nil {
		t.Fatal(err)
	}
	if flips := Flips(r.DerivedOrder, r.Ensemble); len(flips) != 0 {
		t.Fatalf("derived order flagged against itself: %v", flips)
	}
	// The first adjacent pair of the derived order is significant in
	// every committed cell (the baseline was chosen that way); swapping
	// it must trip the gate.
	c := r.Ensemble.Comparison(r.DerivedOrder[0], r.DerivedOrder[1])
	if c == nil || !c.Significant {
		t.Fatalf("expected a significant leading pair in cell %s, got %+v", cell.Name, c)
	}
	mutated := append([]string(nil), r.DerivedOrder...)
	mutated[0], mutated[1] = mutated[1], mutated[0]
	flips := Flips(mutated, r.Ensemble)
	if len(flips) == 0 {
		t.Fatal("mutated baseline order produced no flips; the gate has no teeth")
	}
	t.Logf("mutation detected: %s", flips[0])
	// A stale baseline (label set mismatch) is also caught.
	if flips := Flips(mutated[:1], r.Ensemble); len(flips) == 0 {
		t.Fatal("label-set mismatch not reported")
	}
	if flips := Flips([]string{"a", "b", "c"}, r.Ensemble); len(flips) == 0 {
		t.Fatal("unknown labels not reported")
	}
}
