// The ordering-regression gate: a committed baseline of expected
// program orderings per (dist, size, procs) cell, re-derived from small
// seed ensembles by a go test gate that fails only when an ordering
// flips *with significance* — a pair whose confidence bands overlap is
// allowed to land in either order, so the gate is robust to noise-level
// churn while still catching real performance inversions.
package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/keys"
)

// Baseline is the committed ordering document
// (internal/stats/testdata/orderings.json).
type Baseline struct {
	// Seeds/BaseSeed/Confidence configure the ensembles the gate runs
	// to re-derive each cell's ordering.
	Seeds      int            `json:"seeds"`
	BaseSeed   uint64         `json:"base_seed"`
	Confidence float64        `json:"confidence"`
	Cells      []BaselineCell `json:"cells"`
}

// BaselineCell is one (dist, size, procs) grid cell with its expected
// program ordering.
type BaselineCell struct {
	Name  string `json:"name"`
	Dist  string `json:"dist"`
	N     int    `json:"n"`
	Procs int    `json:"procs"`
	// Programs are the compared "algorithm/model" variants.
	Programs []string `json:"programs"`
	// Order is the expected ordering by mean simulated time, fastest
	// first.
	Order []string `json:"order"`
}

// LoadBaseline reads an ordering baseline document.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("stats: %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline document (the -update path).
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Variants resolves the cell's programs into ensemble variants.
func (c BaselineCell) Variants() ([]Variant, error) {
	d, err := keys.ParseDist(c.Dist)
	if err != nil {
		return nil, fmt.Errorf("stats: cell %s: %w", c.Name, err)
	}
	base := repro.Experiment{N: c.N, Procs: c.Procs, Radix: 8, Dist: d}
	vs, err := Programs(base, c.Programs)
	if err != nil {
		return nil, fmt.Errorf("stats: cell %s: %w", c.Name, err)
	}
	return vs, nil
}

// DeriveOrder returns the ensemble's variant labels ordered by mean
// simulated time, fastest first (ties broken by label for
// determinism).
func DeriveOrder(e *Ensemble) []string {
	order := make([]string, len(e.Variants))
	for i := range e.Variants {
		order[i] = e.Variants[i].Label
	}
	mean := func(label string) float64 { return e.Variant(label).Metric("time_ns").Mean }
	sort.Slice(order, func(a, b int) bool {
		ma, mb := mean(order[a]), mean(order[b])
		if ma != mb {
			return ma < mb
		}
		return order[a] < order[b]
	})
	return order
}

// Flips compares an expected ordering against an ensemble and returns
// one message per *significant* inversion: a pair the baseline orders
// one way whose Welch comparison says the opposite with significance.
// Pairs whose confidence bands overlap never flip. A label-set mismatch
// between baseline and ensemble is reported as a flip (the baseline is
// stale).
func Flips(baselineOrder []string, e *Ensemble) []string {
	var flips []string
	pos := make(map[string]int, len(baselineOrder))
	for i, l := range baselineOrder {
		pos[l] = i
	}
	if len(baselineOrder) != len(e.Variants) {
		return []string{fmt.Sprintf("baseline lists %d programs, ensemble has %d",
			len(baselineOrder), len(e.Variants))}
	}
	for i := range e.Variants {
		if _, ok := pos[e.Variants[i].Label]; !ok {
			return []string{fmt.Sprintf("ensemble variant %q not in baseline order", e.Variants[i].Label)}
		}
	}
	for i := range e.Comparisons {
		c := &e.Comparisons[i]
		if c.Metric != "time_ns" || !c.Significant {
			continue
		}
		// The significantly faster program must precede the other in the
		// baseline order.
		fast, slow := c.A, c.B
		if c.Verdict == VerdictBLess {
			fast, slow = c.B, c.A
		}
		if pos[fast] > pos[slow] {
			flips = append(flips, fmt.Sprintf(
				"%s vs %s: baseline expects %s faster, measured %s faster (t=%.2f, df=%.1f, mean %s=%.0f %s=%.0f)",
				c.A, c.B, slow, fast, c.T, c.DF, c.A, c.MeanA, c.B, c.MeanB))
		}
	}
	return flips
}

// CellResult is one gate evaluation: the re-derived ordering, the
// significant inversions against the baseline, and the full ensemble
// for inspection.
type CellResult struct {
	Cell         BaselineCell
	DerivedOrder []string
	Flips        []string
	Ensemble     *Ensemble
}

// CheckCell runs the cell's ensemble and evaluates it against the
// cell's expected order.
func CheckCell(cfg Config, cell BaselineCell) (*CellResult, error) {
	vs, err := cell.Variants()
	if err != nil {
		return nil, err
	}
	ens, err := RunEnsemble(cfg, vs)
	if err != nil {
		return nil, fmt.Errorf("stats: cell %s: %w", cell.Name, err)
	}
	return &CellResult{
		Cell:         cell,
		DerivedOrder: DeriveOrder(ens),
		Flips:        Flips(cell.Order, ens),
		Ensemble:     ens,
	}, nil
}

// CheckBaseline evaluates every cell, using the baseline's ensemble
// parameters, and returns the per-cell results in cell order.
func CheckBaseline(b *Baseline, parallelism int) ([]*CellResult, error) {
	cfg := Config{
		Seeds:       b.Seeds,
		BaseSeed:    b.BaseSeed,
		Confidence:  b.Confidence,
		Parallelism: parallelism,
	}
	results := make([]*CellResult, len(b.Cells))
	for i, cell := range b.Cells {
		r, err := CheckCell(cfg, cell)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}
