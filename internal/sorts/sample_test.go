package sorts

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
	"repro/internal/mpi"
)

type sampleRunner struct {
	name string
	fn   func(m *machine.Machine, in []uint32, cfg Config) (*Result, error)
}

func sampleRunners() []sampleRunner {
	return []sampleRunner{
		{"ccsas", SampleCCSAS},
		{"mpi", SampleMPI},
		{"shmem", SampleSHMEM},
	}
}

func TestSampleSortsAllModels(t *testing.T) {
	for _, r := range sampleRunners() {
		for _, procs := range []int{2, 4, 8} {
			m := scaled(t, procs)
			in := genKeys(t, keys.Gauss, 1<<14, procs, 8)
			res, err := r.fn(m, in, Config{Radix: 8})
			if err != nil {
				t.Fatalf("sample %s (p=%d): %v", r.name, procs, err)
			}
			checkSorted(t, in, res)
		}
	}
}

func TestSampleAllDistributions(t *testing.T) {
	// Includes zero (heavy duplicates -> massive imbalance toward the
	// first processor) and bucket/stagger (pre-ranged) stress cases.
	for _, r := range sampleRunners() {
		for _, d := range keys.AllDists {
			m := scaled(t, 4)
			in := genKeys(t, d, 1<<13, 4, 8)
			res, err := r.fn(m, in, Config{Radix: 8})
			if err != nil {
				t.Fatalf("sample %s (%v): %v", r.name, d, err)
			}
			checkSorted(t, in, res)
		}
	}
}

func TestSampleUniprocessorIsLocalSort(t *testing.T) {
	for _, r := range sampleRunners() {
		m := scaled(t, 1)
		in := genKeys(t, keys.Random, 4000, 1, 8)
		res, err := r.fn(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatalf("sample %s (p=1): %v", r.name, err)
		}
		checkSorted(t, in, res)
	}
}

func TestSampleDeterministic(t *testing.T) {
	for _, r := range sampleRunners() {
		run := func() float64 {
			m := scaled(t, 8)
			in := genKeys(t, keys.Gauss, 1<<13, 8, 8)
			res, err := r.fn(m, in, Config{Radix: 8})
			if err != nil {
				t.Fatal(err)
			}
			return res.TimeNs()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("sample %s non-deterministic: %v vs %v", r.name, a, b)
		}
	}
}

func TestSampleDoesTwoLocalSorts(t *testing.T) {
	// Sample sort does roughly double radix sort's local sorting work;
	// its BUSY time should exceed radix sort's on the same input. (Large
	// input: at small sizes radix's per-chunk library overheads dominate
	// BUSY instead.)
	in := genKeys(t, keys.Gauss, 1<<17, 8, 8)
	rad, err := RadixSHMEM(scaled(t, 8), in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	smp, err := SampleSHMEM(scaled(t, 8), in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	radBusy := rad.Run.TotalBreakdown().Busy
	smpBusy := smp.Run.TotalBreakdown().Busy
	if smpBusy <= radBusy {
		t.Errorf("sample BUSY (%v) should exceed radix BUSY (%v): two local sorts", smpBusy, radBusy)
	}
}

func TestSampleFewerMessagesThanRadix(t *testing.T) {
	// One message per pair for sample vs up to 2^r/p per pair for radix.
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	cfg := Config{Radix: 8, MPI: mpi.DefaultDirect()}
	rad, err := RadixMPI(scaled(t, 8), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := SampleMPI(scaled(t, 8), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var radMsgs, smpMsgs int64
	for i := 0; i < 8; i++ {
		radMsgs += rad.Run.PerProc[i].Traffic.Messages
		smpMsgs += smp.Run.PerProc[i].Traffic.Messages
	}
	if smpMsgs >= radMsgs {
		t.Errorf("sample messages (%d) should be fewer than radix messages (%d)", smpMsgs, radMsgs)
	}
}

func TestSampleBoundaries(t *testing.T) {
	m := scaled(t, 1)
	arr := machine.NewArrayOnProc[uint32](m, "b", 8, 0)
	copy(arr.Data, []uint32{1, 3, 3, 5, 7, 9, 11, 13})
	var got []int64
	m.Run(func(p *machine.Proc) {
		got = boundariesOf(p, arr, 0, 8, []uint32{3, 8, 100})
	})
	// Keys >= 3 start at index 1; >= 8 at index 5; >= 100 at 8.
	want := []int64{0, 1, 5, 8, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", got, want)
		}
	}
}

func TestSelectSamplesEvenAndSorted(t *testing.T) {
	m := scaled(t, 1)
	arr := machine.NewArrayOnProc[uint32](m, "s", 1000, 0)
	for i := range arr.Data {
		arr.Data[i] = uint32(i * 2)
	}
	m.Run(func(p *machine.Proc) {
		s := selectSamples(p, arr, 0, 1000, 10)
		if len(s) != 10 {
			t.Fatalf("got %d samples", len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("samples from sorted data not sorted: %v", s)
			}
		}
		// More samples than keys: truncate.
		s2 := selectSamples(p, arr, 0, 5, 100)
		if len(s2) != 5 {
			t.Fatalf("oversampling returned %d", len(s2))
		}
	})
}

func TestSplittersFrom(t *testing.T) {
	m := scaled(t, 1)
	m.Run(func(p *machine.Proc) {
		all := make([]uint32, 100)
		for i := range all {
			all[i] = uint32(i)
		}
		spl := splittersFrom(p, all, 4)
		if len(spl) != 3 {
			t.Fatalf("got %d splitters", len(spl))
		}
		if spl[0] != 25 || spl[1] != 50 || spl[2] != 75 {
			t.Fatalf("splitters = %v", spl)
		}
	})
}
