package sorts

import (
	"sort"
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

func TestRadixPhaseAttribution(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	res, err := RadixCCSAS(m, in, Config{Radix: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Run.PerProc[3]
	if ps.Phases == nil {
		t.Fatal("no phase breakdowns recorded")
	}
	for _, want := range []string{"count", "histogram", "permute", "sync"} {
		if _, ok := ps.Phases[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, phaseNames(ps.Phases))
		}
	}
	// Phase totals must not exceed the overall breakdown.
	var phaseSum float64
	for _, b := range ps.Phases {
		phaseSum += b.Total()
	}
	if phaseSum > ps.Breakdown.Total()+1e-6 {
		t.Errorf("phase sum %v exceeds total %v", phaseSum, ps.Breakdown.Total())
	}
	// In the original CC-SAS at scale, the permute phase dominates.
	if ps.Phases["permute"].Total() < ps.Phases["count"].Total() {
		t.Errorf("permute (%v) should dominate count (%v) in scattered CC-SAS",
			ps.Phases["permute"].Total(), ps.Phases["count"].Total())
	}
}

func TestSamplePhaseAttribution(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	res, err := SampleSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Run.PerProc[0]
	for _, want := range []string{"localsort1", "splitters", "redistribute", "localsort2"} {
		if _, ok := ps.Phases[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, phaseNames(ps.Phases))
		}
	}
	// The two local sorts together dominate sample sort at scale (the
	// paper's explanation for its large-size loss to radix).
	sorts := ps.Phases["localsort1"].Total() + ps.Phases["localsort2"].Total()
	if sorts < ps.Phases["redistribute"].Total() {
		t.Errorf("local sorts (%v) should dominate redistribution (%v)",
			sorts, ps.Phases["redistribute"].Total())
	}
}

func TestPsrsPhaseAttribution(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	res, err := PsrsSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Run.PerProc[0]
	for _, want := range []string{"localsort", "sample", "pivot-exchange", "partition", "transfer", "merge"} {
		if _, ok := ps.Phases[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, phaseNames(ps.Phases))
		}
	}
	// The single local radix sort dominates the multiway merge — that
	// the merge is cheaper than a second local sort is exactly PSRS's
	// structural advantage over the splitter-based sample sort.
	if ps.Phases["merge"].Total() >= ps.Phases["localsort"].Total() {
		t.Errorf("merge (%v) should be cheaper than localsort (%v)",
			ps.Phases["merge"].Total(), ps.Phases["localsort"].Total())
	}
}

func TestShmemRadixTransferPhaseRemote(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Remote, 1<<15, 8, 8)
	res, err := RadixSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Run.PerProc[2].Phases["transfer"]
	if tr.RMem == 0 {
		t.Error("transfer phase recorded no remote time under the remote distribution")
	}
}

func phaseNames(m map[string]machine.Breakdown) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// phaseSet collects the distinct phase labels recorded across all
// processors of a run, sorted.
func phaseSet(run *machine.Result) []string {
	seen := make(map[string]bool)
	for _, ps := range run.PerProc {
		for name := range ps.Phases {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPhaseLabelsConsistent is the SetPhase audit: every paper phase
// must be labeled, with identical names across programming models, so
// Figure 4/8 panels and trace spans align. The radix sorts share
// {count, histogram, permute, transfer, sync} (the original CC-SAS
// scatters in place, so it has no separate transfer; MPI's sync time is
// message waiting inside transfer, so it has no separate sync); the
// sample sorts share {localsort1, splitters, redistribute, localsort2};
// the sequential baseline is one localsort.
func TestPhaseLabelsConsistent(t *testing.T) {
	const procs, n, radix = 8, 1 << 13, 8
	in := genKeys(t, keys.Gauss, n, procs, radix)
	cfg := Config{Radix: radix}

	radixWant := map[string][]string{
		"ccsas":     {"count", "histogram", "permute", "sync"},
		"ccsas-new": {"count", "histogram", "permute", "sync", "transfer"},
		"mpi":       {"count", "histogram", "permute", "transfer"},
		"shmem":     {"count", "histogram", "permute", "sync", "transfer"},
	}
	sampleWant := []string{"localsort1", "localsort2", "redistribute", "splitters"}

	runs := map[string]func() (*Result, error){
		"ccsas":     func() (*Result, error) { return RadixCCSAS(scaled(t, procs), in, cfg, false) },
		"ccsas-new": func() (*Result, error) { return RadixCCSAS(scaled(t, procs), in, cfg, true) },
		"mpi":       func() (*Result, error) { return RadixMPI(scaled(t, procs), in, cfg) },
		"shmem":     func() (*Result, error) { return RadixSHMEM(scaled(t, procs), in, cfg) },
	}
	for name, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("radix/%s: %v", name, err)
		}
		if got := phaseSet(res.Run); !equalStrings(got, radixWant[name]) {
			t.Errorf("radix/%s phases = %v, want %v", name, got, radixWant[name])
		}
	}

	sampleRuns := map[string]func() (*Result, error){
		"ccsas": func() (*Result, error) { return SampleCCSAS(scaled(t, procs), in, cfg) },
		"mpi":   func() (*Result, error) { return SampleMPI(scaled(t, procs), in, cfg) },
		"shmem": func() (*Result, error) { return SampleSHMEM(scaled(t, procs), in, cfg) },
	}
	for name, run := range sampleRuns {
		res, err := run()
		if err != nil {
			t.Fatalf("sample/%s: %v", name, err)
		}
		if got := phaseSet(res.Run); !equalStrings(got, sampleWant) {
			t.Errorf("sample/%s phases = %v, want %v", name, got, sampleWant)
		}
	}

	// PSRS labels its six phases identically across models; the merge
	// phase must appear (it replaces the sample sorts' second local sort)
	// and barrier/message waiting stays inside the surrounding phase, so
	// no separate sync label exists under any model.
	psrsWant := []string{"localsort", "merge", "partition", "pivot-exchange", "sample", "transfer"}
	psrsRuns := map[string]func() (*Result, error){
		"ccsas": func() (*Result, error) { return PsrsCCSAS(scaled(t, procs), in, cfg) },
		"mpi":   func() (*Result, error) { return PsrsMPI(scaled(t, procs), in, cfg) },
		"shmem": func() (*Result, error) { return PsrsSHMEM(scaled(t, procs), in, cfg) },
	}
	for name, run := range psrsRuns {
		res, err := run()
		if err != nil {
			t.Fatalf("psrs/%s: %v", name, err)
		}
		if got := phaseSet(res.Run); !equalStrings(got, psrsWant) {
			t.Errorf("psrs/%s phases = %v, want %v", name, got, psrsWant)
		}
	}

	seq, err := SeqRadix(scaled(t, 1), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := phaseSet(seq.Run); !equalStrings(got, []string{"localsort"}) {
		t.Errorf("seq phases = %v, want [localsort]", got)
	}
}

// TestPhaseBreakdownsCoverTotal checks per-phase breakdowns account for
// every charged nanosecond: no charge lands outside a labeled phase.
func TestPhaseBreakdownsCoverTotal(t *testing.T) {
	const procs, n, radix = 4, 1 << 12, 8
	in := genKeys(t, keys.Gauss, n, procs, radix)
	cfg := Config{Radix: radix}
	for name, run := range map[string]func() (*Result, error){
		"radix/mpi":    func() (*Result, error) { return RadixMPI(scaled(t, procs), in, cfg) },
		"radix/shmem":  func() (*Result, error) { return RadixSHMEM(scaled(t, procs), in, cfg) },
		"sample/ccsas": func() (*Result, error) { return SampleCCSAS(scaled(t, procs), in, cfg) },
		"psrs/ccsas":   func() (*Result, error) { return PsrsCCSAS(scaled(t, procs), in, cfg) },
		"psrs/mpi":     func() (*Result, error) { return PsrsMPI(scaled(t, procs), in, cfg) },
		"psrs/shmem":   func() (*Result, error) { return PsrsSHMEM(scaled(t, procs), in, cfg) },
		"seq":          func() (*Result, error) { return SeqRadix(scaled(t, 1), in, cfg) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, ps := range res.Run.PerProc {
			var phased machine.Breakdown
			for _, b := range ps.Phases {
				phased.Add(b)
			}
			total := ps.Breakdown.Total()
			if diff := total - phased.Total(); diff > 1e-6*total+1e-3 || diff < -(1e-6*total+1e-3) {
				t.Errorf("%s proc %d: phases cover %v of %v ns (unlabeled charges)",
					name, i, phased.Total(), total)
			}
		}
	}
}
