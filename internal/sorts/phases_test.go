package sorts

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

func TestRadixPhaseAttribution(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	res, err := RadixCCSAS(m, in, Config{Radix: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Run.PerProc[3]
	if ps.Phases == nil {
		t.Fatal("no phase breakdowns recorded")
	}
	for _, want := range []string{"count", "histogram", "permute", "sync"} {
		if _, ok := ps.Phases[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, phaseNames(ps.Phases))
		}
	}
	// Phase totals must not exceed the overall breakdown.
	var phaseSum float64
	for _, b := range ps.Phases {
		phaseSum += b.Total()
	}
	if phaseSum > ps.Breakdown.Total()+1e-6 {
		t.Errorf("phase sum %v exceeds total %v", phaseSum, ps.Breakdown.Total())
	}
	// In the original CC-SAS at scale, the permute phase dominates.
	if ps.Phases["permute"].Total() < ps.Phases["count"].Total() {
		t.Errorf("permute (%v) should dominate count (%v) in scattered CC-SAS",
			ps.Phases["permute"].Total(), ps.Phases["count"].Total())
	}
}

func TestSamplePhaseAttribution(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	res, err := SampleSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Run.PerProc[0]
	for _, want := range []string{"localsort1", "splitters", "redistribute", "localsort2"} {
		if _, ok := ps.Phases[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, phaseNames(ps.Phases))
		}
	}
	// The two local sorts together dominate sample sort at scale (the
	// paper's explanation for its large-size loss to radix).
	sorts := ps.Phases["localsort1"].Total() + ps.Phases["localsort2"].Total()
	if sorts < ps.Phases["redistribute"].Total() {
		t.Errorf("local sorts (%v) should dominate redistribution (%v)",
			sorts, ps.Phases["redistribute"].Total())
	}
}

func TestShmemRadixTransferPhaseRemote(t *testing.T) {
	m := scaled(t, 8)
	in := genKeys(t, keys.Remote, 1<<15, 8, 8)
	res, err := RadixSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Run.PerProc[2].Phases["transfer"]
	if tr.RMem == 0 {
		t.Error("transfer phase recorded no remote time under the remote distribution")
	}
}

func phaseNames(m map[string]machine.Breakdown) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
