package sorts

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

// allPrograms runs every parallel sorting program on the given input and
// verifies the output.
func allPrograms(t *testing.T, m func() *machine.Machine, in []uint32, cfg Config) {
	t.Helper()
	type prog struct {
		name string
		fn   func(*machine.Machine, []uint32, Config) (*Result, error)
	}
	progs := []prog{
		{"radix-ccsas", func(m *machine.Machine, in []uint32, c Config) (*Result, error) {
			return RadixCCSAS(m, in, c, false)
		}},
		{"radix-ccsas-new", func(m *machine.Machine, in []uint32, c Config) (*Result, error) {
			return RadixCCSAS(m, in, c, true)
		}},
		{"radix-mpi", RadixMPI},
		{"radix-shmem", RadixSHMEM},
		{"sample-ccsas", SampleCCSAS},
		{"sample-mpi", SampleMPI},
		{"sample-shmem", SampleSHMEM},
		{"psrs-ccsas", PsrsCCSAS},
		{"psrs-mpi", PsrsMPI},
		{"psrs-shmem", PsrsSHMEM},
	}
	for _, pr := range progs {
		res, err := pr.fn(m(), in, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		checkSorted(t, in, res)
	}
}

func TestUnevenPartitions(t *testing.T) {
	// n not divisible by the processor count: partitions differ in size.
	const n, procs = 10007, 8
	in := genKeys(t, keys.Random, n, procs, 8)
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestTinyInput(t *testing.T) {
	// Fewer keys than a histogram's buckets; some partitions nearly empty.
	const n, procs = 100, 8
	in := genKeys(t, keys.Random, n, procs, 8)
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestFewerKeysThanSamples(t *testing.T) {
	// n < procs²: the classic PSRS degenerate case — the pivot pool holds
	// fewer than P samples per processor, so pivot positions clamp and
	// several pivots coincide.
	const n, procs = 48, 8 // 48 < 64 = procs²
	in := genKeys(t, keys.Random, n, procs, 8)
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestFewerKeysThanProcs(t *testing.T) {
	// n < procs: most partitions are empty; some processors publish no
	// samples at all and receive nothing in the exchange.
	const n, procs = 5, 8
	in := genKeys(t, keys.Random, n, procs, 8)
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestAllEqualKeys(t *testing.T) {
	// Degenerate duplicates: every key identical. Sample sort's splitters
	// all coincide and one processor receives everything.
	const n, procs = 4096, 4
	in := make([]uint32, n)
	for i := range in {
		in[i] = 12345
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestAlreadySortedInput(t *testing.T) {
	const n, procs = 4096, 4
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i * 7)
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestReverseSortedInput(t *testing.T) {
	const n, procs = 4096, 4
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32((n - i) * 13)
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestMaxValueKeys(t *testing.T) {
	// Keys at the top of the 31-bit range exercise the highest digit.
	const n, procs = 2048, 4
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(keys.MaxKey - 1 - uint64(i%97))
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

func TestRadixSweepAllSorted(t *testing.T) {
	// Every radix size the paper studies produces a correct sort.
	in := genKeys(t, keys.Gauss, 1<<13, 4, 8)
	for r := 6; r <= 12; r++ {
		m := scaled(t, 4)
		res, err := RadixSHMEM(m, in, Config{Radix: r})
		if err != nil {
			t.Fatalf("radix %d: %v", r, err)
		}
		checkSorted(t, in, res)
		if got := (Config{Radix: r, KeyBits: 31}).Passes(); got != (31+r-1)/r {
			t.Errorf("radix %d passes = %d", r, got)
		}
	}
}

func TestTwoProcessorsMinimalParallel(t *testing.T) {
	in := genKeys(t, keys.Gauss, 4096, 2, 8)
	allPrograms(t, func() *machine.Machine { return scaled(t, 2) }, in, Config{Radix: 8})
}

func TestSampleSortZeroDistributionImbalance(t *testing.T) {
	// The zero distribution sends ~10% of all keys (the zeros) to the
	// first processor: receive buffers must grow beyond n/p.
	const n, procs = 1 << 14, 8
	in := genKeys(t, keys.Zero, n, procs, 8)
	m := scaled(t, procs)
	res, err := SampleCCSAS(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, res)
	// Proc 0's received count exceeds the balanced share.
	zeros := 0
	for _, k := range in {
		if k == 0 {
			zeros++
		}
	}
	if zeros <= n/procs {
		t.Skip("distribution produced too few zeros for the imbalance check")
	}
}

func TestSeqRadixEmptyAndSingle(t *testing.T) {
	m := scaled(t, 1)
	res, err := SeqRadix(m, []uint32{42}, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sorted) != 1 || res.Sorted[0] != 42 {
		t.Errorf("single-key sort = %v", res.Sorted)
	}
}

func TestResultMetadata(t *testing.T) {
	m := scaled(t, 4)
	in := genKeys(t, keys.Gauss, 4096, 4, 8)
	res, err := RadixSHMEM(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "radix" || res.Model != "shmem" {
		t.Errorf("metadata = %s/%s", res.Algorithm, res.Model)
	}
	if res.TimeNs() != res.Run.TimeNs {
		t.Error("TimeNs accessor mismatch")
	}
}

// TestSkewDistsAllPrograms runs every parallel program on each of the
// four skew generators at an uneven size, verifying outputs against the
// reference ordering.
func TestSkewDistsAllPrograms(t *testing.T) {
	const n, procs = 10007, 8
	for _, d := range keys.SkewDists {
		in := genKeys(t, d, n, procs, 8)
		allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
	}
}

// TestDupHeavyFewerKeysThanProcs: the duplicate-heavy generator at
// n < procs — empty partitions plus massive value collisions at once.
func TestDupHeavyFewerKeysThanProcs(t *testing.T) {
	const n, procs = 5, 8
	in, err := keys.Generate(keys.DupHeavy, keys.GenConfig{N: n, Procs: procs, RadixBits: 8, DupValues: 2})
	if err != nil {
		t.Fatal(err)
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}

// TestDupHeavyAllEqual: DupValues=1 degenerates to all-equal keys —
// sample sort's splitters all coincide and the tie-spreading boundary
// logic must still balance the exchange.
func TestDupHeavyAllEqual(t *testing.T) {
	const n, procs = 4096, 8
	in, err := keys.Generate(keys.DupHeavy, keys.GenConfig{N: n, Procs: procs, RadixBits: 8, DupValues: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range in {
		if k != in[0] {
			t.Fatal("DupValues=1 should be all-equal")
		}
	}
	allPrograms(t, func() *machine.Machine { return scaled(t, procs) }, in, Config{Radix: 8})
}
