package sorts

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

func TestBoundariesSpreadTiedSplitters(t *testing.T) {
	m := scaled(t, 1)
	arr := machine.NewArrayOnProc[uint32](m, "t", 12, 0)
	copy(arr.Data, []uint32{0, 0, 0, 0, 0, 0, 0, 0, 5, 6, 7, 8})
	m.Run(func(p *machine.Proc) {
		// Three tied zero splitters + one at 6: without spreading, all
		// eight zeros funnel to one destination.
		b := boundariesOf(p, arr, 0, 12, []uint32{0, 0, 0, 6})
		// The zero-run [0,8) splits ~evenly across destinations 1..3.
		for j := 1; j <= 3; j++ {
			cnt := b[j+1] - b[j]
			if cnt < 2 || cnt > 4 {
				t.Errorf("tied destination %d got %d keys, want ~8/3", j, cnt)
			}
		}
		// Global order still holds: boundaries non-decreasing.
		for j := 1; j < len(b); j++ {
			if b[j] < b[j-1] {
				t.Fatalf("boundaries decreased: %v", b)
			}
		}
	})
}

func TestZeroDistributionBalancedAfterSpreading(t *testing.T) {
	// The zero distribution (10% duplicates of one value) must not pile
	// its duplicates on a single processor.
	const n, procs = 1 << 15, 8
	in := genKeys(t, keys.Zero, n, procs, 8)
	m := scaled(t, procs)
	res, err := SampleCCSAS(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, res)
	// With ties spread, the busiest processor's localsort2 phase stays
	// within a small factor of the mean.
	var total, maxT float64
	for _, ps := range res.Run.PerProc {
		v := ps.Phases["localsort2"].Total()
		total += v
		if v > maxT {
			maxT = v
		}
	}
	mean := total / float64(procs)
	if maxT > 2.5*mean {
		t.Errorf("localsort2 imbalance: max %v vs mean %v", maxT, mean)
	}
}
