package sorts

import (
	"math"
	"sort"
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

// FuzzSortAgreement drives every sorting program — sequential baseline,
// radix and sample sort under all programming models — over fuzzed key
// sets, sizes, processor counts and radixes, and requires that each
// output is exactly the sort.Slice ordering of the input and that every
// simulated-time bucket stays non-negative and finite. This is the
// package's strongest functional invariant: the simulator may reprice
// memory, but it must never corrupt data or produce nonsense charges.
func FuzzSortAgreement(f *testing.F) {
	f.Add(uint64(1), uint16(1000), uint8(1), uint8(4))
	f.Add(uint64(0), uint16(64), uint8(0), uint8(0))
	f.Add(uint64(0xdeadbeef), uint16(4000), uint8(2), uint8(7))
	f.Add(uint64(42), uint16(257), uint8(3), uint8(2))
	f.Add(uint64(7), uint16(3), uint8(1), uint8(5))
	// Shaped seeds (top three seed bits select the shape; see fuzzKeys):
	// duplicate-heavy and pre-sorted inputs stress PSRS's regular-sampling
	// pivot ties and degenerate partitions, and the four skew generators
	// (zipf, selfsim, dupheavy, adversarial) stress splitter selection.
	f.Add(uint64(1)<<61|11, uint16(2048), uint8(2), uint8(4))
	f.Add(uint64(2)<<61|22, uint16(1500), uint8(1), uint8(5))
	f.Add(uint64(3)<<61|33, uint16(900), uint8(0), uint8(3))
	f.Add(uint64(4)<<61|44, uint16(4095), uint8(2), uint8(7))
	f.Add(uint64(5)<<61|12345, uint16(2000), uint8(2), uint8(4))
	f.Add(uint64(6)<<61|99, uint16(1024), uint8(2), uint8(3))
	f.Add(uint64(7)<<61|7, uint16(777), uint8(1), uint8(6))

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, procSel, radixRaw uint8) {
		n := 1 + int(nRaw)%4096       // 1..4096 keys
		procs := 1 << (1 + procSel%3) // 2, 4 or 8 processors
		radix := 4 + int(radixRaw)%8  // 4..11 bits per digit
		in := fuzzKeys(seed, n)
		cfg := Config{Radix: radix}

		want := append([]uint32(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		runs := []struct {
			name string
			run  func() (*Result, error)
		}{
			{"seq", func() (*Result, error) { return SeqRadix(fuzzMachine(t, 1), in, cfg) }},
			{"radix/ccsas", func() (*Result, error) { return RadixCCSAS(fuzzMachine(t, procs), in, cfg, false) }},
			{"radix/ccsas-new", func() (*Result, error) { return RadixCCSAS(fuzzMachine(t, procs), in, cfg, true) }},
			{"radix/mpi", func() (*Result, error) { return RadixMPI(fuzzMachine(t, procs), in, cfg) }},
			{"radix/shmem", func() (*Result, error) { return RadixSHMEM(fuzzMachine(t, procs), in, cfg) }},
			{"sample/ccsas", func() (*Result, error) { return SampleCCSAS(fuzzMachine(t, procs), in, cfg) }},
			{"sample/mpi", func() (*Result, error) { return SampleMPI(fuzzMachine(t, procs), in, cfg) }},
			{"sample/shmem", func() (*Result, error) { return SampleSHMEM(fuzzMachine(t, procs), in, cfg) }},
			{"psrs/ccsas", func() (*Result, error) { return PsrsCCSAS(fuzzMachine(t, procs), in, cfg) }},
			{"psrs/mpi", func() (*Result, error) { return PsrsMPI(fuzzMachine(t, procs), in, cfg) }},
			{"psrs/shmem", func() (*Result, error) { return PsrsSHMEM(fuzzMachine(t, procs), in, cfg) }},
		}
		for _, r := range runs {
			res, err := r.run()
			if err != nil {
				t.Fatalf("%s (n=%d procs=%d radix=%d): %v", r.name, n, procs, radix, err)
			}
			if len(res.Sorted) != len(want) {
				t.Fatalf("%s: output length %d, want %d", r.name, len(res.Sorted), len(want))
			}
			for i := range want {
				if res.Sorted[i] != want[i] {
					t.Fatalf("%s (n=%d procs=%d radix=%d): output[%d]=%d, sort.Slice says %d",
						r.name, n, procs, radix, i, res.Sorted[i], want[i])
				}
			}
			checkFiniteCharges(t, r.name, res)
		}
	})
}

// fuzzKeys expands a seed into n keys < 2^31 (the paper's key width)
// with a splitmix64 generator, so the fuzzer controls the distribution
// through a single integer. The top three seed bits select a shape —
// 0 plain random, 1-4 the skew generators (zipf, selfsim, dupheavy,
// adversarial), 5 duplicate-heavy (at most 9 distinct values),
// 6 pre-sorted ascending, 7 reverse-sorted — so the fuzzer also
// explores the inputs that stress regular-sampling pivot ties
// (duplicates), degenerate partitions (monotone runs), and
// splitter-defeating skew.
func fuzzKeys(seed uint64, n int) []uint32 {
	switch seed >> 61 {
	case 1:
		return keys.MustGenerate(keys.Zipf, keys.GenConfig{N: n, Procs: 8, RadixBits: 8, Seed: seed})
	case 2:
		return keys.MustGenerate(keys.SelfSim, keys.GenConfig{N: n, Procs: 8, RadixBits: 8, Seed: seed})
	case 3:
		return keys.MustGenerate(keys.DupHeavy, keys.GenConfig{N: n, Procs: 8, RadixBits: 8, Seed: seed})
	case 4:
		return keys.MustGenerate(keys.Adversarial, keys.GenConfig{N: n, Procs: 8, RadixBits: 8, Seed: seed})
	}
	out := make([]uint32, n)
	x := seed
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = uint32(z) & (1<<31 - 1)
	}
	switch seed >> 61 {
	case 5:
		for i := range out {
			out[i] = (out[i] % 9) * 0x0ccccccc
		}
	case 6:
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	case 7:
		sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	}
	return out
}

// fuzzMachine builds a scaled machine without the testing.T helpers the
// unit tests use (fuzz workers call it from the Fuzz goroutine).
func fuzzMachine(t *testing.T, procs int) *machine.Machine {
	m, err := machine.New(machine.Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("machine.New(%d): %v", procs, err)
	}
	return m
}

// checkFiniteCharges asserts every per-processor bucket — whole-run and
// per-phase — is non-negative and finite.
func checkFiniteCharges(t *testing.T, name string, res *Result) {
	if res.Run.TimeNs < 0 || math.IsNaN(res.Run.TimeNs) || math.IsInf(res.Run.TimeNs, 0) {
		t.Fatalf("%s: TimeNs=%v", name, res.Run.TimeNs)
	}
	for i, ps := range res.Run.PerProc {
		for _, b := range append([]machine.Breakdown{ps.Breakdown}, phaseBreakdowns(ps.Phases)...) {
			for _, v := range []float64{b.Busy, b.LMem, b.RMem, b.Sync} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s proc %d: bad breakdown bucket %v in %+v", name, i, v, b)
				}
			}
		}
	}
}

func phaseBreakdowns(m map[string]machine.Breakdown) []machine.Breakdown {
	out := make([]machine.Breakdown, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	return out
}
