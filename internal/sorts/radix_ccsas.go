package sorts

import (
	"fmt"

	"repro/internal/ccsas"
	"repro/internal/machine"
)

// RadixCCSAS runs the parallel radix sort under the cache-coherent
// shared address space model. With buffered == false it is the original
// SPLASH-2 program: keys are written directly into the (mostly remote)
// output partitions as their positions are computed, producing the
// temporally scattered remote writes whose coherence-protocol traffic
// the paper identifies as the bottleneck. With buffered == true it is
// the paper's improved CC-SAS-NEW: keys are first permuted into a local
// buffer and then copied to their destinations in contiguous chunks.
func RadixCCSAS(m *machine.Machine, keysIn []uint32, cfg Config, buffered bool) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()

	src := machine.NewArrayBlocked[uint32](m, "rcc.src", n)
	dst := machine.NewArrayBlocked[uint32](m, "rcc.dst", n)
	copy(src.Data, keysIn)

	world := ccsas.NewWorld(m)
	tree := ccsas.NewPrefixTree(world, B)
	scratch := make([]*localScratch, P)
	var bufs []*machine.Array[uint32]
	for i := 0; i < P; i++ {
		scratch[i] = newLocalScratch(m, fmt.Sprintf("rcc.hist%d", i), B, i)
		if buffered {
			lo, hi := bounds(n, P, i)
			bufs = append(bufs, machine.NewArrayOnProc[uint32](m,
				fmt.Sprintf("rcc.buf%d", i), hi-lo, i))
		}
	}
	m.ResetMemory()

	run := m.Run(func(p *machine.Proc) {
		lo, hi := bounds(n, P, p.ID)
		np := hi - lo
		scatteredFactor := p.ScatteredContentionFactor(P, 4*np)
		bulkFactor := p.ContentionFactor(P, false)
		sc := scratch[p.ID]
		cur, nxt := src, dst
		// Pass 0 reads the freshly initialized local partition; later
		// passes read data scattered in by all processors.
		readClass := machine.Private
		for pass := 0; pass < cfg.Passes(); pass++ {
			p.SetPhase("count")
			counts := countPass(p, cur, lo, np, pass, cfg, sc, readClass)

			// Histogram accumulation through the binary prefix tree.
			p.SetPhase("histogram")
			rank, total := tree.Reduce(p, counts)

			// Global write position for my keys of digit d:
			// (start of bucket d) + (my rank within bucket d).
			bucketStart := make([]int64, B)
			var runTot int64
			for d := 0; d < B; d++ {
				bucketStart[d] = runTot
				runTot += int64(total[d])
			}
			pos := make([]int64, B)
			for d := 0; d < B; d++ {
				pos[d] = bucketStart[d] + int64(rank[d])
			}
			p.Compute(3 * B)

			if !buffered {
				// Original: scatter keys straight to their global
				// positions — fine-grained remote writes contending with
				// the coherence protocol.
				p.SetPhase("permute")
				p.SetContention(scatteredFactor)
				permutePass(p, cur, nxt, lo, np, pass, cfg, sc, pos,
					readClass, machine.ConflictWrite)
				p.SetContention(1)
			} else {
				// CC-SAS-NEW: local permutation into a private buffer
				// (bucket-major), then contiguous chunk copies to the
				// destinations.
				buf := bufs[p.ID]
				p.SetPhase("permute")
				bpos := exclusiveScan(p, counts, 0)
				permutePass(p, cur, buf, lo, np, pass, cfg, sc, bpos,
					readClass, machine.Private)
				p.SetPhase("transfer")
				p.SetContention(bulkFactor)
				var off int64
				for d := 0; d < B; d++ {
					cnt := int64(counts[d])
					if cnt == 0 {
						continue
					}
					buf.LoadRange(p, int(off), int(off+cnt), machine.Private)
					g := pos[d]
					copy(nxt.Data[g:g+cnt], buf.Data[off:off+cnt])
					nxt.StoreRange(p, int(g), int(g+cnt), machine.ConflictWrite)
					p.Compute(int(cnt))
					off += cnt
				}
				p.SetContention(1)
			}
			p.SetPhase("sync")
			world.Barrier(p)
			p.SetPhase("")
			cur, nxt = nxt, cur
			readClass = machine.DirtyElsewhere
		}
	})

	out := src
	if cfg.Passes()%2 == 1 {
		out = dst
	}
	sorted := make([]uint32, n)
	copy(sorted, out.Data)
	model := "ccsas"
	if buffered {
		model = "ccsas-new"
	}
	return &Result{Algorithm: "radix", Model: model, Sorted: sorted,
		RecvCounts: blockedCounts(n, P), Run: run}, nil
}
