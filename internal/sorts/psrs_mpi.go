package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// psrsSampleMsg carries one processor's regular samples to the root.
type psrsSampleMsg struct {
	data []uint32
}

// psrsPivotMsg carries the selected pivots from the root to a leaf.
type psrsPivotMsg struct {
	data []uint32
}

// psrsChunkMsg is the single all-to-all message each processor sends to
// each other processor during the partition exchange.
type psrsChunkMsg struct {
	data []uint32
}

// PsrsMPI runs Parallel Sorting by Regular Sampling under message
// passing. Unlike the sample sort's allgathered splitter selection, the
// pivot step is PSRS's explicit gather/broadcast through rank 0: every
// rank sends its P samples to the root, the root merges and picks the
// P-1 pivots, then sends them back — 2(P-1) point-to-point messages
// serialized at the root. The partition counts are allgathered so every
// rank builds the chunk plan redundantly, and the exchange uses exactly
// one message per pair followed by a local multiway merge.
func PsrsMPI(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := mpi.New(m, cfg.MPI)

	keyArr := make([]*machine.Array[uint32], P)
	tmpArr := make([]*machine.Array[uint32], P)
	recvArr := make([]*machine.Array[uint32], P)
	outArr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		np := hi - lo
		keyArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("pmpi.k%d", i), np, i)
		tmpArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("pmpi.t%d", i), np, i)
		recvArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("pmpi.r%d", i), n, i)
		outArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("pmpi.o%d", i), n, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("pmpi.h%d", i), B, i)
		copy(keyArr[i].Data, keysIn[lo:hi])
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		np := keyArr[me].Len()
		sc := scratch[me]

		p.SetPhase("localsort")
		inTmp := localRadixSort(p, keyArr[me], tmpArr[me], 0, np, cfg, sc, machine.Private)
		sorted := keyArr[me]
		if inTmp {
			sorted = tmpArr[me]
		}
		if P == 1 {
			finalArr[0], finalCounts[0] = sorted, np
			return
		}

		p.SetPhase("sample")
		samples := selectSamples(p, sorted, 0, np, P)

		p.SetPhase("pivot-exchange")
		var pivots []uint32
		if me == 0 {
			pool := make([]uint32, 0, P*P)
			pool = append(pool, samples...)
			for q := 1; q < P; q++ {
				msg := c.Recv(p, q, 0, 0)
				pool = append(pool, msg.Payload.(psrsSampleMsg).data...)
			}
			mergeSamplesCharged(p, pool, P)
			pivots = pivotsFrom(p, pool, P)
			for q := 1; q < P; q++ {
				c.Send(p, q, 1, psrsPivotMsg{data: pivots}, 4*len(pivots))
			}
		} else {
			c.Send(p, 0, 0, psrsSampleMsg{data: samples}, 4*len(samples))
			msg := c.Recv(p, 0, 0, 0)
			pivots = msg.Payload.(psrsPivotMsg).data
		}

		p.SetPhase("partition")
		b := boundariesOf(p, sorted, 0, np, pivots)
		if hook := corruptPSRSBoundary; hook != nil {
			hook(me, np, b)
		}
		counts := psrsDestCounts(p, b)
		hists := mpi.Allgather(c, p, counts)
		plan := newChunkPlan(n, hists)
		p.Compute(plan.computeOps())

		p.SetPhase("transfer")
		incoming := psrsIncoming(plan, me)
		recv := recvArr[me].Grow(incoming)
		// Self chunk: a local copy, no message.
		if selfCnt := int(plan.hists[me][me]); selfCnt > 0 {
			off := int(plan.bufPos[me][me])
			at := int(plan.rank[me][me])
			sorted.LoadRange(p, off, off+selfCnt, machine.Private)
			copy(recv.Data[at:at+selfCnt], sorted.Data[off:off+selfCnt])
			recv.StoreRange(p, at, at+selfCnt, machine.Private)
			p.Compute(selfCnt)
		}
		p.SetContention(p.ContentionFactor(P, false))
		for k := 1; k < P; k++ {
			dst := (me + k) % P
			src := (me - k + P) % P
			cnt := int(plan.hists[me][dst])
			data := make([]uint32, cnt)
			if cnt > 0 {
				off := int(plan.bufPos[me][dst])
				sorted.LoadRange(p, off, off+cnt, machine.Private)
				copy(data, sorted.Data[off:off+cnt])
			}
			c.Send(p, dst, 2, psrsChunkMsg{data: data}, 4*cnt)
			msg := c.Recv(p, src, 0, 0)
			in := msg.Payload.(psrsChunkMsg).data
			at := int(plan.rank[src][me])
			copy(recv.Data[at:at+len(in)], in)
			p.InvalidateRange(recv.Addr(at), recv.Bytes(len(in)))
			p.Compute(8)
		}
		p.SetContention(1)

		p.SetPhase("merge")
		out := outArr[me].Grow(incoming)
		starts, cnts := psrsRuns(plan, me)
		multiwayMergeCharged(p, recv, out, starts, cnts)
		finalArr[me], finalCounts[me] = out, incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "psrs", Model: "mpi-" + cfg.MPI.Engine.String(),
		Sorted: sorted, RecvCounts: finalCounts, Run: run}, nil
}
