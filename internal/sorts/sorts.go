// Package sorts implements the paper's sorting programs on the simulated
// DSM machine: a sequential radix sort (the speedup baseline, Table 1)
// and parallel radix sort and sample sort under the CC-SAS (original and
// locally-buffered "NEW"), MPI and SHMEM programming models.
//
// Every program operates on real data — results are bitwise-verifiable
// sorted permutations of the input — while charging simulated time
// through the machine layer, so the same run yields both a correctness
// check and the paper's performance metrics.
package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/shmem"
)

// Config parameterizes a sort.
type Config struct {
	// Radix is the digit size r in bits. The paper studies 6..12 (and up
	// to 14 in Table 3).
	Radix int
	// KeyBits is the significant key width; keys are < 2^31 as in the
	// paper.
	KeyBits int
	// SampleSize is sample sort's per-processor sample count (128 in the
	// paper).
	SampleSize int
	// GroupSize is sample sort CC-SAS's processes-per-group for sample
	// collection (32 in the paper).
	GroupSize int
	// MPI configures the message-passing library for the MPI variants.
	MPI mpi.Config
	// MPIOneMessagePerDest switches the radix MPI permutation to the
	// NAS-IS style: one message per destination carrying all its chunks,
	// reorganized into place by the receiver. The paper measured both and
	// found per-chunk messages faster on the Origin2000; this variant
	// exists for that ablation.
	MPIOneMessagePerDest bool
	// Shmem configures the one-sided library for the SHMEM variants.
	Shmem shmem.Config
}

// DefaultConfig returns the paper's defaults: radix 8, 31-bit keys, 128
// samples per processor, groups of 32, the improved (Direct/NEW) MPI.
func DefaultConfig() Config {
	return Config{
		Radix:      8,
		KeyBits:    31,
		SampleSize: 128,
		GroupSize:  32,
		MPI:        mpi.DefaultDirect(),
		Shmem:      shmem.DefaultConfig(),
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Radix == 0 {
		c.Radix = d.Radix
	}
	if c.KeyBits == 0 {
		c.KeyBits = d.KeyBits
	}
	if c.SampleSize == 0 {
		c.SampleSize = d.SampleSize
	}
	if c.GroupSize == 0 {
		c.GroupSize = d.GroupSize
	}
	if c.MPI == (mpi.Config{}) {
		c.MPI = d.MPI
	}
	if c.Shmem == (shmem.Config{}) {
		c.Shmem = d.Shmem
	}
	return c
}

func (c Config) validate() error {
	if c.Radix < 1 || c.Radix > 16 {
		return fmt.Errorf("sorts: radix %d out of [1,16]", c.Radix)
	}
	if c.KeyBits < 1 || c.KeyBits > 32 {
		return fmt.Errorf("sorts: key bits %d out of [1,32]", c.KeyBits)
	}
	if c.SampleSize < 1 {
		return fmt.Errorf("sorts: sample size %d must be positive", c.SampleSize)
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("sorts: group size %d must be positive", c.GroupSize)
	}
	return nil
}

// Passes returns the number of radix passes: ceil(KeyBits / Radix), the
// paper's 32/r with 31-bit keys.
func (c Config) Passes() int {
	return (c.KeyBits + c.Radix - 1) / c.Radix
}

// Buckets returns 2^Radix.
func (c Config) Buckets() int { return 1 << c.Radix }

// digit extracts the pass-th radix-r digit of k.
func digit(k uint32, pass, r int) int {
	return int(k>>(pass*r)) & ((1 << r) - 1)
}

// blockedCounts returns the receive counts of a blocked redistribution:
// processor i receives its [i*n/P, (i+1)*n/P) slice of the global
// array. Radix sort's key exchange writes into this layout every pass,
// so its receive balance is flat by construction for any distribution.
func blockedCounts(n, procs int) []int {
	counts := make([]int, procs)
	for i := range counts {
		lo, hi := bounds(n, procs, i)
		counts[i] = hi - lo
	}
	return counts
}

// Result reports one sort run.
type Result struct {
	// Algorithm is "radix" or "sample"; Model names the programming model
	// variant.
	Algorithm, Model string
	// Sorted is the output permutation (ascending).
	Sorted []uint32
	// RecvCounts is the number of keys each processor received in the
	// algorithm's main redistribution: the single splitter-directed
	// exchange for sample sort and PSRS (so skewed splitters show up as
	// imbalance), and the blocked layout for radix sort and the
	// sequential baseline (flat by construction).
	RecvCounts []int
	// Run carries the simulated timing and per-processor stats.
	Run *machine.Result
}

// TimeNs returns the simulated execution time.
func (r *Result) TimeNs() float64 { return r.Run.TimeNs }

// bounds returns the [lo,hi) range of chunk i when n items are split
// into k chunks (identical partitioning everywhere in the package).
func bounds(n, k, i int) (lo, hi int) {
	return i * n / k, (i + 1) * n / k
}

// ilog2 returns ceil(log2(n)) for n >= 1.
func ilog2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
