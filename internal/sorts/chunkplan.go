package sorts

// chunkPlan captures, for one radix pass, where every processor's
// bucket-major send buffer scatters into the globally partitioned output
// array. Each processor computes the plan locally and redundantly from
// the allgathered histograms (as the paper's MPI and SHMEM programs do),
// so senders know exactly what to send and receivers know exactly what
// to expect — one of the simplifications the paper credits to having all
// histogram data locally.
type chunkPlan struct {
	n, procs, buckets int
	// gStart[d] is the global output index where bucket d begins.
	gStart []int64
	// rank[i][d] is processor i's key count rank within bucket d
	// (exclusive prefix over processors).
	rank [][]int64
	// bufPos[i][d] is bucket d's offset inside processor i's bucket-major
	// send buffer (exclusive prefix over buckets of i's histogram).
	bufPos [][]int64
	hists  [][]int32
}

// chunk is one contiguous run of keys moving from a source processor's
// send buffer to a destination processor's output partition.
type chunk struct {
	// srcOff is the offset within the source's send buffer.
	srcOff int
	// dstOff is the offset within the destination's partition.
	dstOff int
	// count is the number of keys.
	count int
	// bucket is the radix digit the run belongs to (diagnostics).
	bucket int
}

// newChunkPlan builds the plan for n total keys over the given per-
// processor histograms.
func newChunkPlan(n int, hists [][]int32) *chunkPlan {
	P := len(hists)
	B := len(hists[0])
	pl := &chunkPlan{n: n, procs: P, buckets: B, hists: hists}
	pl.gStart = make([]int64, B)
	pl.rank = make([][]int64, P)
	pl.bufPos = make([][]int64, P)
	for i := 0; i < P; i++ {
		pl.rank[i] = make([]int64, B)
		pl.bufPos[i] = make([]int64, B)
	}
	// rank: exclusive scan over processors per bucket; total per bucket.
	totals := make([]int64, B)
	for d := 0; d < B; d++ {
		var run int64
		for i := 0; i < P; i++ {
			pl.rank[i][d] = run
			run += int64(hists[i][d])
		}
		totals[d] = run
	}
	// gStart: exclusive scan over buckets.
	var run int64
	for d := 0; d < B; d++ {
		pl.gStart[d] = run
		run += totals[d]
	}
	// bufPos: per-processor bucket-major layout.
	for i := 0; i < P; i++ {
		var off int64
		for d := 0; d < B; d++ {
			pl.bufPos[i][d] = off
			off += int64(hists[i][d])
		}
	}
	return pl
}

// computeOps returns the abstract operation count of building the plan
// (charged to each processor, since each builds it redundantly): the
// rank scan over all processors' histograms dominates.
func (pl *chunkPlan) computeOps() int {
	return pl.procs*pl.buckets + 2*pl.buckets
}

// sendChunks returns the contiguous runs processor src contributes to
// processor dst's partition, in bucket order.
func (pl *chunkPlan) sendChunks(src, dst int) []chunk {
	plo64, phi64 := int64(dst)*int64(pl.n)/int64(pl.procs),
		int64(dst+1)*int64(pl.n)/int64(pl.procs)
	var out []chunk
	for d := 0; d < pl.buckets; d++ {
		cnt := int64(pl.hists[src][d])
		if cnt == 0 {
			continue
		}
		cs := pl.gStart[d] + pl.rank[src][d]
		ce := cs + cnt
		s, e := cs, ce
		if plo64 > s {
			s = plo64
		}
		if phi64 < e {
			e = phi64
		}
		if e <= s {
			continue
		}
		out = append(out, chunk{
			srcOff: int(pl.bufPos[src][d] + (s - cs)),
			dstOff: int(s - plo64),
			count:  int(e - s),
			bucket: d,
		})
	}
	return out
}
