package sorts

import (
	"repro/internal/machine"
)

// localScratch holds one processor's private working state for local
// radix sorting: the histogram array (modeled in the simulated address
// space so its cache footprint is charged — the radix-size tradeoff
// depends on it) and host-side position counters.
type localScratch struct {
	hist *machine.Array[int32]
}

// newLocalScratch allocates scratch for a processor.
func newLocalScratch(m *machine.Machine, name string, buckets, proc int) *localScratch {
	return &localScratch{
		hist: machine.NewArrayOnProc[int32](m, name, buckets, proc),
	}
}

// countPass builds the histogram of the pass-th digit of
// arr.Data[lo:lo+n], charging one sequential key sweep plus per-key
// histogram accesses. firstClass prices the key reads' misses.
func countPass(p *machine.Proc, arr *machine.Array[uint32], lo, n int,
	pass int, cfg Config, sc *localScratch, firstClass machine.Sharing) []int32 {
	b := cfg.Buckets()
	hist := sc.hist
	for j := 0; j < b; j++ {
		hist.Data[j] = 0
	}
	hist.StoreRange(p, 0, b, machine.Private)
	p.Compute(b)
	// One kernel call charges the whole counting loop: per key, the
	// sequential key read, the digit extraction, the histogram access and
	// increment, and 8 ops (shift, mask, load/add/store counter, loop
	// control). Bit-identical to the per-element loop it replaced.
	p.CountStream(arr, lo, n, firstClass,
		uint(pass*cfg.Radix), uint32(b-1), hist, machine.Private, 8)
	out := make([]int32, b)
	copy(out, hist.Data)
	return out
}

// permutePass scatters arr.Data[lo:lo+n] into dst according to pos,
// where pos[d] is the (mutable) next destination index for digit d.
// Destination stores are priced with dstClass; key re-reads with
// srcClass. pos is advanced in place.
func permutePass(p *machine.Proc, arr, dst *machine.Array[uint32], lo, n int,
	pass int, cfg Config, sc *localScratch, pos []int64,
	srcClass, dstClass machine.Sharing) {
	// One kernel call charges the whole permutation loop: per key, the
	// sequential read, the digit extraction, the position-counter access
	// and bump, the scattered destination write, and 13 ops (shift/mask,
	// position load/bump/store, addressing, loop control).
	p.PermuteStream(arr, dst, lo, n,
		uint(pass*cfg.Radix), uint32(cfg.Buckets()-1), sc.hist, pos,
		srcClass, machine.Private, dstClass, 13)
}

// exclusiveScan turns counts into exclusive prefix positions starting at
// base, charging the scan.
func exclusiveScan(p *machine.Proc, counts []int32, base int64) []int64 {
	pos := make([]int64, len(counts))
	run := base
	for d, c := range counts {
		pos[d] = run
		run += int64(c)
	}
	p.Compute(2 * len(counts))
	return pos
}

// localRadixSort sorts arr.Data[lo:lo+n] ascending using cfg.Passes()
// counting passes that toggle between arr and tmp (same index range).
// It returns true when the sorted result ended up in tmp. firstClass
// prices the very first sweep's key reads (later sweeps read data this
// processor itself wrote: Private).
func localRadixSort(p *machine.Proc, arr, tmp *machine.Array[uint32], lo, n int,
	cfg Config, sc *localScratch, firstClass machine.Sharing) (inTmp bool) {
	if n <= 0 {
		return false
	}
	cur, nxt := arr, tmp
	class := firstClass
	for pass := 0; pass < cfg.Passes(); pass++ {
		counts := countPass(p, cur, lo, n, pass, cfg, sc, class)
		pos := exclusiveScan(p, counts, int64(lo))
		permutePass(p, cur, nxt, lo, n, pass, cfg, sc, pos, class, machine.Private)
		cur, nxt = nxt, cur
		class = machine.Private
	}
	return cur == tmp
}

// SeqRadix runs the sequential radix sort the paper uses as the speedup
// baseline for both algorithms (Table 1). m must be a 1-processor
// machine.
func SeqRadix(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	arr := machine.NewArrayOnProc[uint32](m, "seq.keys", n, 0)
	tmp := machine.NewArrayOnProc[uint32](m, "seq.tmp", n, 0)
	sc := newLocalScratch(m, "seq.hist", cfg.Buckets(), 0)
	copy(arr.Data, keysIn)
	m.ResetMemory()
	var inTmp bool
	run := m.Run(func(p *machine.Proc) {
		if p.ID != 0 {
			return
		}
		p.SetPhase("localsort")
		inTmp = localRadixSort(p, arr, tmp, 0, n, cfg, sc, machine.Private)
		p.SetPhase("")
	})
	out := arr
	if inTmp {
		out = tmp
	}
	sorted := make([]uint32, n)
	copy(sorted, out.Data)
	return &Result{Algorithm: "radix", Model: "seq", Sorted: sorted,
		RecvCounts: []int{n}, Run: run}, nil
}
