package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/shmem"
)

// RadixSHMEM runs the parallel radix sort under the SHMEM one-sided
// model, transformed from the MPI program as in the paper: histograms
// are collected with a symmetric allgather, keys are locally permuted
// into a symmetric bucket-major send segment, and — since every process
// has the full histogram locally — communication is receiver-initiated:
// each process gets every remote chunk destined for its partition, which
// also lands the data in its cache.
func RadixSHMEM(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := shmem.New(m, cfg.Shmem)

	// Partition sizes differ by at most one key; symmetric segments are
	// sized for the largest partition.
	maxPart := 0
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		if hi-lo > maxPart {
			maxPart = hi - lo
		}
	}

	sendSeg := shmem.NewSym[uint32](c, "rshm.send", maxPart)
	histSeg := shmem.NewSym[int32](c, "rshm.hist", B)
	histAll := shmem.NewSym[int32](c, "rshm.hists", B*P)
	curArr := make([]*machine.Array[uint32], P)
	nxtArr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		np := hi - lo
		curArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("rshm.a%d", i), np, i)
		nxtArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("rshm.b%d", i), np, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("rshm.h%d", i), B, i)
		copy(curArr[i].Data, keysIn[lo:hi])
	}
	m.ResetMemory()

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		np := curArr[me].Len()
		sc := scratch[me]
		cur, nxt := curArr[me], nxtArr[me]
		for pass := 0; pass < cfg.Passes(); pass++ {
			p.SetPhase("count")
			counts := countPass(p, cur, 0, np, pass, cfg, sc, machine.Private)

			// Symmetric allgather of histograms; plan computed locally.
			p.SetPhase("histogram")
			copy(histSeg.Local(p).Data, counts)
			histSeg.Local(p).StoreRange(p, 0, B, machine.Private)
			p.Compute(B)
			shmem.Collect(p, histSeg, histAll, B)
			hists := make([][]int32, P)
			for i := 0; i < P; i++ {
				hists[i] = histAll.Local(p).Data[i*B : (i+1)*B]
			}
			plan := newChunkPlan(n, hists)
			p.Compute(plan.computeOps())

			// Local permutation into the symmetric send segment.
			p.SetPhase("permute")
			buf := sendSeg.Local(p)
			bpos := make([]int64, B)
			copy(bpos, plan.bufPos[me])
			permutePass(p, cur, buf, 0, np, pass, cfg, sc, bpos,
				machine.Private, machine.Private)

			// Send buffers must be globally complete before anyone pulls.
			p.SetPhase("sync")
			c.Barrier(p)
			p.SetPhase("transfer")

			// Keys staying local move with plain copies.
			for _, ch := range plan.sendChunks(me, me) {
				buf.LoadRange(p, ch.srcOff, ch.srcOff+ch.count, machine.Private)
				copy(nxt.Data[ch.dstOff:ch.dstOff+ch.count],
					buf.Data[ch.srcOff:ch.srcOff+ch.count])
				nxt.StoreRange(p, ch.dstOff, ch.dstOff+ch.count, machine.Private)
				p.Compute(ch.count)
			}
			// Receiver-initiated transfers: get every remote chunk
			// destined here (the get also fills this processor's cache).
			bulk := p.ContentionFactor(P, false)
			p.SetContention(bulk)
			for k := 1; k < P; k++ {
				src := (me + k) % P
				for _, ch := range plan.sendChunks(src, me) {
					sendSeg.GetInto(p, nxt, ch.dstOff, src, ch.srcOff, ch.count)
					p.Compute(4)
				}
			}
			p.SetContention(1)

			// Everyone must finish pulling before send buffers are
			// overwritten by the next pass.
			p.SetPhase("sync")
			c.Barrier(p)
			p.SetPhase("")
			cur, nxt = nxt, cur
		}
	})

	final := curArr
	if cfg.Passes()%2 == 1 {
		final = nxtArr
	}
	sorted := make([]uint32, 0, n)
	for i := 0; i < P; i++ {
		sorted = append(sorted, final[i].Data...)
	}
	return &Result{Algorithm: "radix", Model: "shmem", Sorted: sorted,
		RecvCounts: blockedCounts(n, P), Run: run}, nil
}
