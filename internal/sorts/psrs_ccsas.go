package sorts

import (
	"fmt"

	"repro/internal/ccsas"
	"repro/internal/machine"
)

// PsrsCCSAS runs Parallel Sorting by Regular Sampling under the
// cache-coherent shared address space model: local radix sort, regular
// sampling, a root-side pivot selection published through shared memory
// (processor 0 reads every processor's samples with remote reads, all
// others then read the pivots as shared-read data), binary-search
// partition, a pull-based all-to-all of the partition chunks, and a
// final local multiway merge of the received sorted runs.
func PsrsCCSAS(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	world := ccsas.NewWorld(m)

	keyArr := machine.NewArrayBlocked[uint32](m, "pcc.keys", n)
	tmpArr := machine.NewArrayBlocked[uint32](m, "pcc.tmp", n)
	copy(keyArr.Data, keysIn)

	// Every processor publishes up to P regular samples; the per-proc
	// sample count is min(P, partition size), deterministic from the
	// block bounds, so no count exchange is needed.
	sampleArr := machine.NewArrayBlocked[uint32](m, "pcc.samples", P*P)
	pivotArr := machine.NewArrayRoundRobin[uint32](m, "pcc.pivots", max(1, P-1))
	boundArr := machine.NewArrayBlocked[int64](m, "pcc.bounds", P*(P+1))

	scratch := make([]*localScratch, P)
	recvArr := make([]*machine.Array[uint32], P)
	outArr := make([]*machine.Array[uint32], P)
	for i := 0; i < P; i++ {
		scratch[i] = newLocalScratch(m, fmt.Sprintf("pcc.h%d", i), B, i)
		recvArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("pcc.r%d", i), n, i)
		outArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("pcc.o%d", i), n, i)
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		lo, hi := bounds(n, P, me)
		np := hi - lo
		sc := scratch[me]

		p.SetPhase("localsort")
		inTmp := localRadixSort(p, keyArr, tmpArr, lo, np, cfg, sc, machine.Private)
		sortedArr := keyArr
		if inTmp {
			sortedArr = tmpArr
		}
		if P == 1 {
			// A uniprocessor PSRS is just the local sort.
			finalArr[0], finalCounts[0] = sortedArr, np
			return
		}

		p.SetPhase("sample")
		samples := selectSamples(p, sortedArr, lo, np, P)
		copy(sampleArr.Data[me*P:me*P+len(samples)], samples)
		sampleArr.StoreRange(p, me*P, me*P+len(samples), machine.Private)

		p.SetPhase("pivot-exchange")
		world.Barrier(p)
		// Processor 0 alone gathers all samples, merges the P sorted runs
		// and picks the pivots — PSRS's serialized pivot step, unlike the
		// group-based splitter election of the sample sort.
		if me == 0 {
			pool := make([]uint32, 0, P*P)
			for q := 0; q < P; q++ {
				class := machine.RemoteProduced
				if q == 0 {
					class = machine.Private
				}
				qLo, qHi := bounds(n, P, q)
				cnt := min(P, qHi-qLo)
				if cnt == 0 {
					continue
				}
				sampleArr.LoadRange(p, q*P, q*P+cnt, class)
				pool = append(pool, sampleArr.Data[q*P:q*P+cnt]...)
				p.Compute(3)
			}
			mergeSamplesCharged(p, pool, P)
			pv := pivotsFrom(p, pool, P)
			copy(pivotArr.Data[:len(pv)], pv)
			pivotArr.StoreRange(p, 0, len(pv), machine.Private)
		}
		world.Barrier(p)
		// Broadcast: every processor reads the root's pivots (shared-read
		// lines replicate in each reader's cache).
		pivotArr.LoadRange(p, 0, P-1, machine.SharedRead)
		pivots := make([]uint32, P-1)
		copy(pivots, pivotArr.Data[:P-1])
		p.Compute(P)

		p.SetPhase("partition")
		b := boundariesOf(p, sortedArr, lo, np, pivots)
		if hook := corruptPSRSBoundary; hook != nil {
			hook(me, np, b)
		}
		copy(boundArr.Data[me*(P+1):(me+1)*(P+1)], b)
		boundArr.StoreRange(p, me*(P+1), (me+1)*(P+1), machine.Private)
		world.Barrier(p)
		// Read every processor's boundary vector and build the chunk plan
		// redundantly; destinations play the role of radix buckets, so the
		// plan's rank/bufPos/gStart give the exchange offsets directly.
		hists := make([][]int32, P)
		for q := 0; q < P; q++ {
			class := machine.RemoteProduced
			if q == me {
				class = machine.Private
			}
			boundArr.LoadRange(p, q*(P+1), (q+1)*(P+1), class)
			hists[q] = psrsDestCounts(p, boundArr.Data[q*(P+1):(q+1)*(P+1)])
		}
		plan := newChunkPlan(n, hists)
		p.Compute(plan.computeOps())

		p.SetPhase("transfer")
		incoming := psrsIncoming(plan, me)
		recv := recvArr[me].Grow(incoming)
		p.SetContention(p.ContentionFactor(P, false))
		for k := 0; k < P; k++ {
			q := (me + k) % P
			cnt := int(plan.hists[q][me])
			if cnt == 0 {
				continue
			}
			qLo, _ := bounds(n, P, q)
			start := qLo + int(plan.bufPos[q][me])
			at := int(plan.rank[q][me])
			class := machine.RemoteProduced
			if q == me {
				class = machine.Private
			}
			sortedArr.LoadRange(p, start, start+cnt, class)
			copy(recv.Data[at:at+cnt], sortedArr.Data[start:start+cnt])
			recv.StoreRange(p, at, at+cnt, machine.Private)
			p.Compute(cnt)
		}
		p.SetContention(1)

		p.SetPhase("merge")
		out := outArr[me].Grow(incoming)
		starts, counts := psrsRuns(plan, me)
		multiwayMergeCharged(p, recv, out, starts, counts)
		finalArr[me], finalCounts[me] = out, incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "psrs", Model: "ccsas", Sorted: sorted,
		RecvCounts: finalCounts, Run: run}, nil
}
