package sorts

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// TestPropertyAllProgramsSortArbitraryInput drives each parallel program
// with arbitrary key slices from testing/quick (masked to 31 bits) and
// checks the output is a sorted permutation.
func TestPropertyAllProgramsSortArbitraryInput(t *testing.T) {
	type prog struct {
		name string
		fn   func(*machine.Machine, []uint32, Config) (*Result, error)
	}
	progs := []prog{
		{"radix-ccsas", func(m *machine.Machine, in []uint32, c Config) (*Result, error) {
			return RadixCCSAS(m, in, c, false)
		}},
		{"radix-mpi", RadixMPI},
		{"radix-shmem", RadixSHMEM},
		{"sample-ccsas", SampleCCSAS},
		{"sample-shmem", SampleSHMEM},
	}
	for _, pr := range progs {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			f := func(raw []uint32) bool {
				// Quick can generate empty or tiny slices; pad to at least
				// the processor count and mask to the 31-bit key range.
				in := make([]uint32, max(len(raw), 16))
				for i := range in {
					if i < len(raw) {
						in[i] = raw[i] & 0x7fffffff
					} else {
						in[i] = uint32(i * 2654435761)
					}
				}
				m, err := machine.New(machine.Origin2000Scaled(4))
				if err != nil {
					return false
				}
				res, err := pr.fn(m, in, Config{Radix: 8})
				if err != nil {
					t.Logf("%s: %v", pr.name, err)
					return false
				}
				if len(res.Sorted) != len(in) {
					return false
				}
				var sumIn, sumOut uint64
				for i := range in {
					sumIn += uint64(in[i])
					sumOut += uint64(res.Sorted[i])
					if i > 0 && res.Sorted[i-1] > res.Sorted[i] {
						return false
					}
				}
				return sumIn == sumOut
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertySimulatedTimeMonotoneInWork verifies a basic sanity law of
// the simulator: more keys never take less simulated time (same
// everything else).
func TestPropertySimulatedTimeMonotoneInWork(t *testing.T) {
	timeFor := func(n int) float64 {
		m, err := machine.New(machine.Origin2000Scaled(4))
		if err != nil {
			t.Fatal(err)
		}
		in := make([]uint32, n)
		for i := range in {
			in[i] = uint32(i*2654435761) & 0x7fffffff
		}
		res, err := RadixSHMEM(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs()
	}
	prev := timeFor(1 << 10)
	for _, n := range []int{1 << 11, 1 << 12, 1 << 13, 1 << 14} {
		cur := timeFor(n)
		if cur <= prev {
			t.Errorf("n=%d: time %v not above n/2's %v", n, cur, prev)
		}
		prev = cur
	}
}

// TestPropertyBreakdownsNonNegative checks no program ever produces
// negative time buckets.
func TestPropertyBreakdownsNonNegative(t *testing.T) {
	m := scaled(t, 8)
	in := genKeysForProp(1 << 13)
	res, err := RadixMPI(m, in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range res.Run.PerProc {
		b := ps.Breakdown
		if b.Busy < 0 || b.LMem < 0 || b.RMem < 0 || b.Sync < 0 {
			t.Errorf("proc %d has negative bucket: %+v", i, b)
		}
		if ps.Breakdown.Total() > res.Run.TimeNs+1e-6 {
			t.Errorf("proc %d total %v exceeds run time %v", i, b.Total(), res.Run.TimeNs)
		}
	}
}

func genKeysForProp(n int) []uint32 {
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i*2654435761) & 0x7fffffff
	}
	return in
}
