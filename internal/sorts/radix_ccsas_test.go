package sorts

import (
	"testing"

	"repro/internal/keys"
)

func TestRadixCCSASSorts(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		for _, buffered := range []bool{false, true} {
			m := scaled(t, procs)
			in := genKeys(t, keys.Gauss, 1<<14, procs, 8)
			res, err := RadixCCSAS(m, in, Config{Radix: 8}, buffered)
			if err != nil {
				t.Fatalf("RadixCCSAS(p=%d, buffered=%v): %v", procs, buffered, err)
			}
			checkSorted(t, in, res)
		}
	}
}

func TestRadixCCSASAllDistributions(t *testing.T) {
	for _, d := range keys.AllDists {
		m := scaled(t, 4)
		in := genKeys(t, d, 1<<13, 4, 8)
		res, err := RadixCCSAS(m, in, Config{Radix: 8}, false)
		if err != nil {
			t.Fatalf("RadixCCSAS(%v): %v", d, err)
		}
		checkSorted(t, in, res)
	}
}

func TestRadixCCSASOddPasses(t *testing.T) {
	m := scaled(t, 4)
	in := genKeys(t, keys.Random, 1<<13, 4, 11)
	res, err := RadixCCSAS(m, in, Config{Radix: 11}, false)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, res)
}

func TestRadixCCSASDeterministic(t *testing.T) {
	run := func(buffered bool) float64 {
		m := scaled(t, 8)
		in := genKeys(t, keys.Gauss, 1<<13, 8, 8)
		res, err := RadixCCSAS(m, in, Config{Radix: 8}, buffered)
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs()
	}
	for _, buffered := range []bool{false, true} {
		if a, b := run(buffered), run(buffered); a != b {
			t.Errorf("buffered=%v non-deterministic: %v vs %v", buffered, a, b)
		}
	}
}

func TestRadixCCSASBufferedBeatsOriginalAtScale(t *testing.T) {
	// The paper's core CC-SAS finding: local buffering dramatically
	// improves large-data-set radix sort by eliminating scattered remote
	// writes (Figure 3, CC-SAS vs CC-SAS-NEW).
	m1 := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<17, 8, 8) // 512 KB of keys on 8 procs
	orig, err := RadixCCSAS(m1, in, Config{Radix: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	m2 := scaled(t, 8)
	buf, err := RadixCCSAS(m2, in, Config{Radix: 8}, true)
	if err != nil {
		t.Fatal(err)
	}
	if buf.TimeNs() >= orig.TimeNs() {
		t.Errorf("buffered (%v ns) should beat original (%v ns) on large data",
			buf.TimeNs(), orig.TimeNs())
	}
}

func TestRadixCCSASRemoteTimeDominatesOriginal(t *testing.T) {
	// Figure 4(a): MEM time dominates the original CC-SAS radix at scale.
	m := scaled(t, 8)
	in := genKeys(t, keys.Gauss, 1<<17, 8, 8)
	res, err := RadixCCSAS(m, in, Config{Radix: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Run.TotalBreakdown()
	if bd.Mem() < bd.Busy {
		t.Errorf("original CC-SAS at scale: MEM (%v) should dominate BUSY (%v)", bd.Mem(), bd.Busy)
	}
}
