package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/shmem"
)

// PsrsSHMEM runs Parallel Sorting by Regular Sampling under the SHMEM
// model. Communication is sender-initiated (one-sided puts, the
// Origin's cheap primitive): every rank puts its regular samples into
// the root's pool segment, the root picks the pivots, and after a
// barrier every other rank gets the pivots from the root's symmetric
// pivot segment. The partition counts are collected symmetrically (the
// SHMEM allgather), the chunk exchange puts each chunk straight into
// its destination's symmetric receive buffer at the offset the shared
// chunk plan assigns, and a local multiway merge finishes. Pushing
// rather than pulling keeps a skewed partition's cost on the senders,
// who spread it: regular sampling balances what each rank sends, not
// what it receives.
func PsrsSHMEM(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := shmem.New(m, cfg.Shmem)

	maxPart := 0
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		if hi-lo > maxPart {
			maxPart = hi - lo
		}
	}

	// Symmetric segments: the sorted key arrays, the sample pool the
	// ranks put into, the pivot segment of the broadcast, the
	// partition-count exchange vectors, and the receive buffers the
	// chunk exchange puts into (address-reserved; each rank grows its
	// own once the plan fixes its incoming size).
	segA := shmem.NewSym[uint32](c, "pshm.a", maxPart)
	segB := shmem.NewSym[uint32](c, "pshm.b", maxPart)
	sampleSeg := shmem.NewSym[uint32](c, "pshm.smp", P)
	poolSeg := shmem.NewSym[uint32](c, "pshm.gpool", P*P)
	pivotSeg := shmem.NewSym[uint32](c, "pshm.piv", max(1, P-1))
	countSeg := shmem.NewSym[int32](c, "pshm.dc", P)
	countAll := shmem.NewSym[int32](c, "pshm.dcs", P*P)
	recvSeg := shmem.NewSymReserve[uint32](c, "pshm.r", n)

	outArr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		copy(segA.Seg[i].Data, keysIn[lo:hi])
		outArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("pshm.o%d", i), n, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("pshm.h%d", i), B, i)
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		lo, hi := bounds(n, P, me)
		np := hi - lo
		sc := scratch[me]

		p.SetPhase("localsort")
		inTmp := localRadixSort(p, segA.Seg[me], segB.Seg[me], 0, np, cfg, sc, machine.Private)
		sortedSeg := segA
		if inTmp {
			sortedSeg = segB
		}
		sorted := sortedSeg.Seg[me]
		if P == 1 {
			finalArr[0], finalCounts[0] = sorted, np
			return
		}

		p.SetPhase("sample")
		samples := selectSamples(p, sorted, 0, np, P)
		copy(sampleSeg.Local(p).Data, samples)
		sampleSeg.Local(p).StoreRange(p, 0, len(samples), machine.Private)
		p.Compute(len(samples))

		p.SetPhase("pivot-exchange")
		// Every rank pushes its samples into the root's pool segment;
		// the senders proceed in parallel, so the root never pays a
		// serial round-trip per rank. Per-rank sample counts are
		// min(P, partition size) — deterministic, so no count exchange.
		if me == 0 {
			lp := poolSeg.Local(p)
			copy(lp.Data[:len(samples)], samples)
			lp.StoreRange(p, 0, len(samples), machine.Private)
			p.Compute(len(samples))
		} else {
			poolSeg.PutFrom(p, sampleSeg.Local(p), 0, 0, me*P, len(samples))
			p.Compute(4)
		}
		c.Barrier(p)
		if me == 0 {
			lp := poolSeg.Local(p)
			pool := make([]uint32, 0, P*P)
			for q := 0; q < P; q++ {
				qLo, qHi := bounds(n, P, q)
				cnt := min(P, qHi-qLo)
				if q != 0 {
					// The puts invalidated our copies of these lines.
					lp.LoadRange(p, q*P, q*P+cnt, machine.Private)
				}
				pool = append(pool, lp.Data[q*P:q*P+cnt]...)
				p.Compute(4)
			}
			mergeSamplesCharged(p, pool, P)
			pv := pivotsFrom(p, pool, P)
			copy(pivotSeg.Local(p).Data[:len(pv)], pv)
			pivotSeg.Local(p).StoreRange(p, 0, len(pv), machine.Private)
		}
		c.Barrier(p)
		pivots := make([]uint32, P-1)
		if me != 0 {
			// Broadcast by get: pull rank 0's pivots into the local segment.
			pivotSeg.Get(p, 0, 0, 0, P-1)
			p.Compute(4)
		}
		copy(pivots, pivotSeg.Local(p).Data[:P-1])
		p.Compute(P)

		p.SetPhase("partition")
		b := boundariesOf(p, sorted, 0, np, pivots)
		if hook := corruptPSRSBoundary; hook != nil {
			hook(me, np, b)
		}
		counts := psrsDestCounts(p, b)
		copy(countSeg.Local(p).Data, counts)
		countSeg.Local(p).StoreRange(p, 0, P, machine.Private)
		shmem.Collect(p, countSeg, countAll, P)
		all := countAll.Local(p).Data
		hists := make([][]int32, P)
		for q := 0; q < P; q++ {
			row := make([]int32, P)
			copy(row, all[q*P:(q+1)*P])
			hists[q] = row
		}
		plan := newChunkPlan(n, hists)
		p.Compute(plan.computeOps())

		p.SetPhase("transfer")
		incoming := psrsIncoming(plan, me)
		recv := recvSeg.Local(p).Grow(incoming)
		// Receive buffers must exist before any put targets them.
		c.Barrier(p)
		p.SetContention(p.ContentionFactor(P, false))
		for k := 0; k < P; k++ {
			d := (me + k) % P
			cnt := int(plan.hists[me][d])
			if cnt == 0 {
				continue
			}
			srcOff := int(plan.bufPos[me][d])
			at := int(plan.rank[me][d])
			if d == me {
				sorted.LoadRange(p, srcOff, srcOff+cnt, machine.Private)
				copy(recv.Data[at:at+cnt], sorted.Data[srcOff:srcOff+cnt])
				recv.StoreRange(p, at, at+cnt, machine.Private)
				p.Compute(cnt)
			} else {
				recvSeg.PutFrom(p, sorted, srcOff, d, at, cnt)
				p.Compute(4)
			}
		}
		p.SetContention(1)
		// Every chunk must have landed before the merge reads it.
		c.Barrier(p)

		p.SetPhase("merge")
		out := outArr[me].Grow(incoming)
		starts, cnts := psrsRuns(plan, me)
		multiwayMergeCharged(p, recv, out, starts, cnts)
		finalArr[me], finalCounts[me] = out, incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "psrs", Model: "shmem", Sorted: sorted,
		RecvCounts: finalCounts, Run: run}, nil
}
