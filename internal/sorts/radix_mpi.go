package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// radixChunkMsg is the payload of one permutation-phase message: a
// contiguous run of keys plus its destination offset within the
// receiver's partition.
type radixChunkMsg struct {
	dstOff int
	data   []uint32
}

// stagingNsPerByte prices the extra memory-speed pass the one-message
// variant takes over its payload at each end (gather into the staging
// buffer, stream back out of the arrival buffer).
const stagingNsPerByte = 1.0

// radixDestMsg is the NAS-IS-style payload: every chunk for one
// destination in a single message; the receiver places each run.
type radixDestMsg struct {
	dstOffs []int
	lens    []int
	data    []uint32
}

// RadixMPI runs the parallel radix sort under message passing. The
// structure follows the paper's MPI program: local histograms are
// allgathered so every process computes the global histogram (and all
// send/receive parameters) locally; keys are first permuted into a local
// bucket-major buffer to compose larger messages; and each contiguously-
// destined chunk is sent as its own message so the receiver can place it
// directly (the variant the paper found faster than one-message-per-
// destination reorganization).
func RadixMPI(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := mpi.New(m, cfg.MPI)

	// Per-process partitions: private input/output arrays plus the send
	// buffer, all allocated in the (shared-underneath) address space as
	// the impure model requires.
	curArr := make([]*machine.Array[uint32], P)
	nxtArr := make([]*machine.Array[uint32], P)
	bufArr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		np := hi - lo
		curArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("rmpi.a%d", i), np, i)
		nxtArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("rmpi.b%d", i), np, i)
		bufArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("rmpi.buf%d", i), np, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("rmpi.hist%d", i), B, i)
		copy(curArr[i].Data, keysIn[lo:hi])
	}
	m.ResetMemory()

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		np := curArr[me].Len()
		sc := scratch[me]
		cur, nxt := curArr[me], nxtArr[me]
		buf := bufArr[me]
		for pass := 0; pass < cfg.Passes(); pass++ {
			p.SetPhase("count")
			counts := countPass(p, cur, 0, np, pass, cfg, sc, machine.Private)

			// Collect everyone's histogram; compute the plan locally
			// (redundant on all processes, as the paper notes).
			p.SetPhase("histogram")
			hists := mpi.Allgather(c, p, counts)
			plan := newChunkPlan(n, hists)
			p.Compute(plan.computeOps())

			// Local permutation into the bucket-major send buffer.
			p.SetPhase("permute")
			bpos := make([]int64, B)
			copy(bpos, plan.bufPos[me])
			permutePass(p, cur, buf, 0, np, pass, cfg, sc, bpos,
				machine.Private, machine.Private)

			// Keys staying local move without messages.
			p.SetPhase("transfer")
			for _, ch := range plan.sendChunks(me, me) {
				buf.LoadRange(p, ch.srcOff, ch.srcOff+ch.count, machine.Private)
				copy(nxt.Data[ch.dstOff:ch.dstOff+ch.count],
					buf.Data[ch.srcOff:ch.srcOff+ch.count])
				nxt.StoreRange(p, ch.dstOff, ch.dstOff+ch.count, machine.Private)
				p.Compute(ch.count)
			}

			// Interleaved all-to-all: in round k, send chunks to me+k and
			// receive chunks from me-k, alternating one-for-one so the
			// shallow per-pair windows cannot deadlock.
			p.SetContention(p.ContentionFactor(P, false))
			if cfg.MPIOneMessagePerDest {
				exchangeOneMsgPerDest(p, c, plan, buf, nxt, me, P, pass)
			} else {
				exchangePerChunk(p, c, plan, buf, nxt, me, P, pass)
			}
			p.SetContention(1)
			p.SetPhase("")
			cur, nxt = nxt, cur
		}
	})

	// cfg.Passes() swaps landed the result in curArr when even, nxtArr
	// when odd — reconstruct the final arrays per processor.
	final := curArr
	if cfg.Passes()%2 == 1 {
		final = nxtArr
	}
	sorted := make([]uint32, 0, n)
	for i := 0; i < P; i++ {
		sorted = append(sorted, final[i].Data...)
	}
	model := "mpi-" + cfg.MPI.Engine.String()
	if cfg.MPIOneMessagePerDest {
		model += "-onemsg"
	}
	return &Result{Algorithm: "radix", Model: model, Sorted: sorted,
		RecvCounts: blockedCounts(n, P), Run: run}, nil
}

// exchangePerChunk sends each contiguously-destined run as its own
// message (the paper's chosen variant).
func exchangePerChunk(p *machine.Proc, c *mpi.Comm, plan *chunkPlan,
	buf, nxt *machine.Array[uint32], me, P, pass int) {
	for k := 1; k < P; k++ {
		dst := (me + k) % P
		src := (me - k + P) % P
		sends := plan.sendChunks(me, dst)
		recvs := len(plan.sendChunks(src, me))
		si, ri := 0, 0
		for si < len(sends) || ri < recvs {
			if si < len(sends) {
				ch := sends[si]
				si++
				buf.LoadRange(p, ch.srcOff, ch.srcOff+ch.count, machine.Private)
				data := make([]uint32, ch.count)
				copy(data, buf.Data[ch.srcOff:ch.srcOff+ch.count])
				c.Send(p, dst, pass, radixChunkMsg{dstOff: ch.dstOff, data: data},
					buf.Bytes(ch.count))
			}
			if ri < recvs {
				msg := c.Recv(p, src, 0, 0)
				ri++
				pay := msg.Payload.(radixChunkMsg)
				copy(nxt.Data[pay.dstOff:pay.dstOff+len(pay.data)], pay.data)
				p.InvalidateRange(nxt.Addr(pay.dstOff), nxt.Bytes(len(pay.data)))
				p.Compute(8) // placement bookkeeping
			}
		}
	}
}

// exchangeOneMsgPerDest sends one message per destination (NAS IS
// style): the sender gathers that destination's chunks into one
// contiguous buffer (an extra local copy), and the receiver reorganizes
// the runs into their final positions (extra local stores).
func exchangeOneMsgPerDest(p *machine.Proc, c *mpi.Comm, plan *chunkPlan,
	buf, nxt *machine.Array[uint32], me, P, pass int) {
	for k := 1; k < P; k++ {
		dst := (me + k) % P
		src := (me - k + P) % P

		// Compose the single outgoing message.
		chunks := plan.sendChunks(me, dst)
		var msgOut radixDestMsg
		total := 0
		for _, ch := range chunks {
			total += ch.count
		}
		msgOut.data = make([]uint32, 0, total)
		for _, ch := range chunks {
			buf.LoadRange(p, ch.srcOff, ch.srcOff+ch.count, machine.Private)
			msgOut.dstOffs = append(msgOut.dstOffs, ch.dstOff)
			msgOut.lens = append(msgOut.lens, ch.count)
			msgOut.data = append(msgOut.data, buf.Data[ch.srcOff:ch.srcOff+ch.count]...)
			p.Compute(ch.count) // the gather copy's ALU work
		}
		// The gather writes a staging buffer the wire reads back: one
		// memory-speed pass over the payload.
		p.LocalMemNs(float64(4*total) * stagingNsPerByte)
		c.Send(p, dst, pass, msgOut, 4*total)

		// Receive one message and scatter its runs into place.
		msg := c.Recv(p, src, 0, 0)
		in := msg.Payload.(radixDestMsg)
		// Stream the arrived (uncached) payload back in before scattering.
		p.LocalMemNs(float64(msg.Bytes) * stagingNsPerByte)
		at := 0
		for i, off := range in.dstOffs {
			cnt := in.lens[i]
			copy(nxt.Data[off:off+cnt], in.data[at:at+cnt])
			p.InvalidateRange(nxt.Addr(off), nxt.Bytes(cnt))
			nxt.StoreRange(p, off, off+cnt, machine.Private)
			p.Compute(cnt + 8) // reorganization copy
			at += cnt
		}
	}
}
