package sorts

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestChunkPlanCoversEverything(t *testing.T) {
	// Synthetic histograms: verify chunks tile the output exactly.
	hists := [][]int32{
		{3, 0, 5, 2},
		{1, 4, 0, 2},
		{0, 0, 7, 0},
		{2, 2, 2, 2},
	}
	n := 0
	for _, h := range hists {
		for _, c := range h {
			n += int(c)
		}
	}
	pl := newChunkPlan(n, hists)
	covered := make([]int, n)
	for src := 0; src < 4; src++ {
		bufSeen := make(map[int]bool)
		for dst := 0; dst < 4; dst++ {
			plo := dst * n / 4
			for _, ch := range pl.sendChunks(src, dst) {
				if ch.count <= 0 {
					t.Fatalf("empty chunk %+v", ch)
				}
				for o := 0; o < ch.count; o++ {
					covered[plo+ch.dstOff+o]++
					if bufSeen[ch.srcOff+o] {
						t.Fatalf("src %d buffer offset %d sent twice", src, ch.srcOff+o)
					}
					bufSeen[ch.srcOff+o] = true
				}
			}
		}
		// Every key in src's buffer is sent exactly once.
		var total int32
		for _, c := range hists[src] {
			total += c
		}
		if len(bufSeen) != int(total) {
			t.Fatalf("src %d sent %d keys, owns %d", src, len(bufSeen), total)
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("output position %d covered %d times", i, c)
		}
	}
}

func TestChunkPlanGlobalOrder(t *testing.T) {
	// gStart must be monotone and rank consistent with histogram sums.
	hists := [][]int32{{5, 1}, {2, 8}}
	pl := newChunkPlan(16, hists)
	if pl.gStart[0] != 0 || pl.gStart[1] != 7 {
		t.Errorf("gStart = %v, want [0 7]", pl.gStart)
	}
	if pl.rank[1][0] != 5 || pl.rank[1][1] != 1 {
		t.Errorf("rank[1] = %v, want [5 1]", pl.rank[1])
	}
	if pl.bufPos[0][1] != 5 {
		t.Errorf("bufPos[0][1] = %d, want 5", pl.bufPos[0][1])
	}
}

func TestRadixMPISorts(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		for _, engine := range []mpi.Engine{mpi.Direct, mpi.Staged} {
			m := scaled(t, procs)
			in := genKeys(t, keys.Gauss, 1<<14, procs, 8)
			cfg := Config{Radix: 8, MPI: mpi.ConfigFor(engine)}
			res, err := RadixMPI(m, in, cfg)
			if err != nil {
				t.Fatalf("RadixMPI(p=%d, %v): %v", procs, engine, err)
			}
			checkSorted(t, in, res)
		}
	}
}

func TestRadixMPIAllDistributions(t *testing.T) {
	for _, d := range keys.AllDists {
		m := scaled(t, 4)
		in := genKeys(t, d, 1<<13, 4, 8)
		res, err := RadixMPI(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatalf("RadixMPI(%v): %v", d, err)
		}
		checkSorted(t, in, res)
	}
}

func TestRadixSHMEMSorts(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		m := scaled(t, procs)
		in := genKeys(t, keys.Gauss, 1<<14, procs, 8)
		res, err := RadixSHMEM(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatalf("RadixSHMEM(p=%d): %v", procs, err)
		}
		checkSorted(t, in, res)
	}
}

func TestRadixSHMEMAllDistributions(t *testing.T) {
	for _, d := range keys.AllDists {
		m := scaled(t, 4)
		in := genKeys(t, d, 1<<13, 4, 11)
		res, err := RadixSHMEM(m, in, Config{Radix: 11})
		if err != nil {
			t.Fatalf("RadixSHMEM(%v): %v", d, err)
		}
		checkSorted(t, in, res)
	}
}

func TestRadixModelsDeterministic(t *testing.T) {
	type runner func(m *machine.Machine, in []uint32) (*Result, error)
	cases := map[string]runner{
		"mpi": func(m *machine.Machine, in []uint32) (*Result, error) {
			return RadixMPI(m, in, Config{Radix: 8})
		},
		"shmem": func(m *machine.Machine, in []uint32) (*Result, error) {
			return RadixSHMEM(m, in, Config{Radix: 8})
		},
	}
	for name, fn := range cases {
		run := func() float64 {
			m := scaled(t, 8)
			in := genKeys(t, keys.Gauss, 1<<13, 8, 8)
			res, err := fn(m, in)
			if err != nil {
				t.Fatal(err)
			}
			return res.TimeNs()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s non-deterministic: %v vs %v", name, a, b)
		}
	}
}

func TestRadixStagedSlowerThanDirect(t *testing.T) {
	// Figure 1's shape: the vendor-style staged MPI is slower than the
	// authors' direct implementation for radix sort.
	in := genKeys(t, keys.Gauss, 1<<15, 8, 8)
	direct, err := RadixMPI(scaled(t, 8), in, Config{Radix: 8, MPI: mpi.DefaultDirect()})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := RadixMPI(scaled(t, 8), in, Config{Radix: 8, MPI: mpi.DefaultStaged()})
	if err != nil {
		t.Fatal(err)
	}
	if staged.TimeNs() <= direct.TimeNs() {
		t.Errorf("staged MPI (%v) should be slower than direct (%v)",
			staged.TimeNs(), direct.TimeNs())
	}
}

func TestRadixSHMEMBeatsOriginalCCSASAtScale(t *testing.T) {
	// Figure 3's headline: SHMEM beats the original CC-SAS for large
	// data sets.
	in := genKeys(t, keys.Gauss, 1<<17, 8, 8)
	shm, err := RadixSHMEM(scaled(t, 8), in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RadixCCSAS(scaled(t, 8), in, Config{Radix: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	if shm.TimeNs() >= cc.TimeNs() {
		t.Errorf("SHMEM (%v) should beat original CC-SAS (%v) at scale",
			shm.TimeNs(), cc.TimeNs())
	}
}

func TestRadixLocalDistributionNoRemoteTraffic(t *testing.T) {
	// The local distribution moves no keys between processors: SHMEM
	// radix should transfer (almost) nothing beyond the histogram
	// collectives.
	procs := 8
	m := scaled(t, procs)
	inLocal := genKeys(t, keys.Local, 1<<14, procs, 8)
	resLocal, err := RadixSHMEM(m, inLocal, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	m2 := scaled(t, procs)
	inRemote := genKeys(t, keys.Remote, 1<<14, procs, 8)
	resRemote, err := RadixSHMEM(m2, inRemote, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	var locBytes, remBytes int64
	for i := 0; i < procs; i++ {
		locBytes += resLocal.Run.PerProc[i].Traffic.RemoteBytes
		remBytes += resRemote.Run.PerProc[i].Traffic.RemoteBytes
	}
	// The local distribution still pays for the histogram collectives
	// (the paper: "the only interprocess communication is the collective
	// function call"), so compare against the remote distribution's
	// strictly larger total.
	if locBytes >= remBytes {
		t.Errorf("local dist moved %d remote bytes vs remote dist %d: want less",
			locBytes, remBytes)
	}
	if resLocal.TimeNs() >= resRemote.TimeNs() {
		t.Errorf("local dist (%v) should be faster than remote dist (%v)",
			resLocal.TimeNs(), resRemote.TimeNs())
	}
}

func TestRadixMPIOneMessagePerDestSorts(t *testing.T) {
	for _, d := range []keys.Dist{keys.Gauss, keys.Zero} {
		m := scaled(t, 8)
		in := genKeys(t, d, 1<<14, 8, 8)
		res, err := RadixMPI(m, in, Config{Radix: 8, MPIOneMessagePerDest: true})
		if err != nil {
			t.Fatalf("one-msg variant (%v): %v", d, err)
		}
		checkSorted(t, in, res)
		if res.Model != "mpi-NEW-onemsg" {
			t.Errorf("model label = %q", res.Model)
		}
	}
}

func TestRadixMPIOneMsgTradeoff(t *testing.T) {
	// The paper's tradeoff: one message per destination sends far fewer
	// messages but pays extra gather/reorganization passes over the data
	// (the paper found per-chunk faster on the Origin2000; our simulated
	// machine prices the window stalls of per-chunk more harshly — see
	// EXPERIMENTS.md).
	in := genKeys(t, keys.Gauss, 1<<16, 8, 8)
	perChunk, err := RadixMPI(scaled(t, 8), in, Config{Radix: 8})
	if err != nil {
		t.Fatal(err)
	}
	oneMsg, err := RadixMPI(scaled(t, 8), in, Config{Radix: 8, MPIOneMessagePerDest: true})
	if err != nil {
		t.Fatal(err)
	}
	var chunkMsgs, oneMsgs int64
	var chunkBusy, oneBusy float64
	for i := 0; i < 8; i++ {
		chunkMsgs += perChunk.Run.PerProc[i].Traffic.Messages
		oneMsgs += oneMsg.Run.PerProc[i].Traffic.Messages
		chunkBusy += perChunk.Run.PerProc[i].Breakdown.LMem
		oneBusy += oneMsg.Run.PerProc[i].Breakdown.LMem
	}
	if oneMsgs >= chunkMsgs {
		t.Errorf("one-msg variant sent %d messages vs per-chunk's %d", oneMsgs, chunkMsgs)
	}
	// The reorganization costs the one-msg variant extra local memory
	// passes (gather into and stream out of the staging buffers).
	if oneBusy <= chunkBusy {
		t.Errorf("one-msg local-memory time (%v) should exceed per-chunk's (%v)",
			oneBusy, chunkBusy)
	}
}
