package sorts

import (
	"fmt"

	"repro/internal/ccsas"
	"repro/internal/machine"
)

// SampleCCSAS runs the parallel sample sort under the cache-coherent
// shared address space model, in the paper's five phases: local radix
// sort, sample selection, group-based splitter selection (every set of
// GroupSize processes elects a collector; collectors cooperate to pick
// the p-1 splitters), splitter-directed redistribution using remote
// READS (no remote writes, no scattered traffic), and a final local
// radix sort of the received keys.
func SampleCCSAS(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	world := ccsas.NewWorld(m)

	keyArr := machine.NewArrayBlocked[uint32](m, "scc.keys", n)
	tmpArr := machine.NewArrayBlocked[uint32](m, "scc.tmp", n)
	copy(keyArr.Data, keysIn)

	sCount := cfg.SampleSize
	if sCount > n/P {
		sCount = max(1, n/P)
	}
	sampleArr := machine.NewArrayBlocked[uint32](m, "scc.samples", P*sCount)
	groupSize := cfg.GroupSize
	if groupSize > P {
		groupSize = P
	}
	nGroups := (P + groupSize - 1) / groupSize
	// Collectors publish their group's sorted samples here, grouped
	// contiguously; the lead collector reads them all.
	groupArr := machine.NewArrayBlocked[uint32](m, "scc.groups", P*sCount)
	splitterArr := machine.NewArrayRoundRobin[uint32](m, "scc.splitters", max(1, P-1))
	boundArr := machine.NewArrayBlocked[int64](m, "scc.bounds", P*(P+1))

	scratch := make([]*localScratch, P)
	recvArr := make([]*machine.Array[uint32], P)
	tmp2Arr := make([]*machine.Array[uint32], P)
	for i := 0; i < P; i++ {
		scratch[i] = newLocalScratch(m, fmt.Sprintf("scc.h%d", i), B, i)
		recvArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("scc.recv%d", i), n, i)
		tmp2Arr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("scc.t2%d", i), n, i)
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		lo, hi := bounds(n, P, me)
		np := hi - lo
		sc := scratch[me]

		p.SetPhase("localsort1")
		// Phase 1: local sort of the assigned partition.
		inTmp := localRadixSort(p, keyArr, tmpArr, lo, np, cfg, sc, machine.Private)
		sortedArr := keyArr
		if inTmp {
			sortedArr = tmpArr
		}
		if P == 1 {
			// A uniprocessor sample sort is just the local sort.
			finalArr[0], finalCounts[0] = sortedArr, np
			return
		}

		p.SetPhase("splitters")
		// Phase 2: publish evenly spaced samples.
		samples := selectSamples(p, sortedArr, lo, np, sCount)
		copy(sampleArr.Data[me*sCount:(me+1)*sCount], samples)
		sampleArr.StoreRange(p, me*sCount, me*sCount+len(samples), machine.Private)
		world.Barrier(p)

		// Phase 3: group collectors sort their group's samples; the lead
		// collector merges group results and selects the splitters.
		group := me / groupSize
		if me%groupSize == 0 {
			gLo := group * groupSize
			gHi := min(gLo+groupSize, P)
			pool := make([]uint32, 0, (gHi-gLo)*sCount)
			for q := gLo; q < gHi; q++ {
				sampleArr.LoadRange(p, q*sCount, (q+1)*sCount, machine.RemoteProduced)
				pool = append(pool, sampleArr.Data[q*sCount:(q+1)*sCount]...)
			}
			mergeSamplesCharged(p, pool, gHi-gLo)
			copy(groupArr.Data[gLo*sCount:gLo*sCount+len(pool)], pool)
			groupArr.StoreRange(p, gLo*sCount, gLo*sCount+len(pool), machine.Private)
		}
		world.Barrier(p)
		if me == 0 {
			all := make([]uint32, 0, P*sCount)
			for g := 0; g < nGroups; g++ {
				gLo := g * groupSize
				gHi := min(gLo+groupSize, P)
				cnt := (gHi - gLo) * sCount
				groupArr.LoadRange(p, gLo*sCount, gLo*sCount+cnt, machine.RemoteProduced)
				all = append(all, groupArr.Data[gLo*sCount:gLo*sCount+cnt]...)
			}
			mergeSamplesCharged(p, all, nGroups)
			spl := splittersFrom(p, all, P)
			copy(splitterArr.Data, spl)
			splitterArr.StoreRange(p, 0, len(spl), machine.Private)
		}
		world.Barrier(p)
		splitterArr.LoadRange(p, 0, P-1, machine.SharedRead)
		splitters := make([]uint32, P-1)
		copy(splitters, splitterArr.Data[:P-1])
		p.Compute(P)

		p.SetPhase("redistribute")
		// Phase 4: publish chunk boundaries, then pull incoming chunks
		// from every source with remote reads.
		b := boundariesOf(p, sortedArr, lo, np, splitters)
		copy(boundArr.Data[me*(P+1):(me+1)*(P+1)], b)
		boundArr.StoreRange(p, me*(P+1), (me+1)*(P+1), machine.Private)
		world.Barrier(p)

		incoming := 0
		srcCnt := make([]int, P)
		srcOff := make([]int, P)
		for q := 0; q < P; q++ {
			boundArr.LoadRange(p, q*(P+1)+me, q*(P+1)+me+2, machine.RemoteProduced)
			bq := boundArr.Data[q*(P+1):]
			srcOff[q] = int(bq[me])
			srcCnt[q] = int(bq[me+1] - bq[me])
			incoming += srcCnt[q]
			p.Compute(3)
		}
		recv := recvArr[me].Grow(incoming)
		bulk := p.ContentionFactor(P, false)
		p.SetContention(bulk)
		at := 0
		for k := 0; k < P; k++ {
			q := (me + k) % P
			cnt := srcCnt[q]
			if cnt == 0 {
				continue
			}
			qLo, _ := bounds(n, P, q)
			start := qLo + srcOff[q]
			class := machine.RemoteProduced
			if q == me {
				class = machine.Private
			}
			sortedArr.LoadRange(p, start, start+cnt, class)
			copy(recv.Data[at:at+cnt], sortedArr.Data[start:start+cnt])
			recv.StoreRange(p, at, at+cnt, machine.Private)
			p.Compute(cnt)
			at += cnt
		}
		p.SetContention(1)

		p.SetPhase("localsort2")
		// Phase 5: local sort of the received keys.
		tmp2 := tmp2Arr[me].Grow(incoming)
		inTmp2 := localRadixSort(p, recv, tmp2, 0, incoming, cfg, sc, machine.Private)
		if inTmp2 {
			finalArr[me] = tmp2
		} else {
			finalArr[me] = recv
		}
		finalCounts[me] = incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "sample", Model: "ccsas", Sorted: sorted,
		RecvCounts: finalCounts, Run: run}, nil
}

// gatherSortedSample concatenates per-processor outputs; for the
// uniprocessor case the single "partition" is the whole sorted array.
func gatherSortedSample(final []*machine.Array[uint32], counts []int, n, P int) []uint32 {
	if P == 1 {
		out := make([]uint32, n)
		copy(out, final[0].Data[:n])
		return out
	}
	return gatherSorted(final, counts)
}
