package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/shmem"
)

// SampleSHMEM runs the parallel sample sort under the SHMEM model,
// obtained from the MPI program as in the paper: the only difference is
// that the redistribution phase replaces each send/receive pair with a
// one-sided get (each process pulls its chunk from every source's
// symmetric sorted segment).
func SampleSHMEM(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := shmem.New(m, cfg.Shmem)

	maxPart := 0
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		if hi-lo > maxPart {
			maxPart = hi - lo
		}
	}
	sCount := cfg.SampleSize
	if sCount > n/P {
		sCount = max(1, n/P)
	}

	// Symmetric segments: the key arrays others will get from, the
	// sample and boundary exchange vectors.
	segA := shmem.NewSym[uint32](c, "sshm.a", maxPart)
	segB := shmem.NewSym[uint32](c, "sshm.b", maxPart)
	sampleSeg := shmem.NewSym[uint32](c, "sshm.smp", sCount)
	sampleAll := shmem.NewSym[uint32](c, "sshm.smps", sCount*P)
	boundSeg := shmem.NewSym[int64](c, "sshm.bnd", P+1)
	boundAll := shmem.NewSym[int64](c, "sshm.bnds", (P+1)*P)

	recvArr := make([]*machine.Array[uint32], P)
	tmp2Arr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		copy(segA.Seg[i].Data, keysIn[lo:hi])
		recvArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("sshm.r%d", i), n, i)
		tmp2Arr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("sshm.r2%d", i), n, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("sshm.h%d", i), B, i)
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		lo, hi := bounds(n, P, me)
		np := hi - lo
		sc := scratch[me]

		p.SetPhase("localsort1")
		// Phase 1: local sort within the symmetric segment pair.
		inTmp := localRadixSort(p, segA.Seg[me], segB.Seg[me], 0, np, cfg, sc, machine.Private)
		sortedSeg := segA
		if inTmp {
			sortedSeg = segB
		}
		sorted := sortedSeg.Seg[me]
		if P == 1 {
			finalArr[0], finalCounts[0] = sorted, np
			return
		}

		p.SetPhase("splitters")
		// Phases 2+3: symmetric allgather of samples; splitters computed
		// redundantly everywhere.
		samples := selectSamples(p, sorted, 0, np, sCount)
		copy(sampleSeg.Local(p).Data, samples)
		sampleSeg.Local(p).StoreRange(p, 0, len(samples), machine.Private)
		p.Compute(len(samples))
		shmem.Collect(p, sampleSeg, sampleAll, sCount)
		all := make([]uint32, P*sCount)
		copy(all, sampleAll.Local(p).Data)
		mergeSamplesCharged(p, all, P)
		splitters := splittersFrom(p, all, P)

		p.SetPhase("redistribute")
		// Phase 4: publish boundaries, then pull one chunk per source.
		b := boundariesOf(p, sorted, 0, np, splitters)
		copy(boundSeg.Local(p).Data, b)
		boundSeg.Local(p).StoreRange(p, 0, P+1, machine.Private)
		p.Compute(P)
		shmem.Collect(p, boundSeg, boundAll, P+1)

		bAll := boundAll.Local(p).Data
		incoming := 0
		for q := 0; q < P; q++ {
			incoming += int(bAll[q*(P+1)+me+1] - bAll[q*(P+1)+me])
		}
		p.Compute(2 * P)
		recv := recvArr[me].Grow(incoming)

		p.SetContention(p.ContentionFactor(P, false))
		at := 0
		for k := 0; k < P; k++ {
			q := (me + k) % P
			qOff := int(bAll[q*(P+1)+me])
			cnt := int(bAll[q*(P+1)+me+1]) - qOff
			if cnt == 0 {
				continue
			}
			if q == me {
				sorted.LoadRange(p, qOff, qOff+cnt, machine.Private)
				copy(recv.Data[at:at+cnt], sorted.Data[qOff:qOff+cnt])
				recv.StoreRange(p, at, at+cnt, machine.Private)
				p.Compute(cnt)
			} else {
				sortedSeg.GetInto(p, recv, at, q, qOff, cnt)
				p.Compute(4)
			}
			at += cnt
		}
		p.SetContention(1)

		// Sources must not be overwritten until everyone pulled; phase 5
		// only reads private arrays, so one barrier suffices.
		c.Barrier(p)

		p.SetPhase("localsort2")
		// Phase 5: local sort of the received keys.
		tmp2 := tmp2Arr[me].Grow(incoming)
		inTmp2 := localRadixSort(p, recv, tmp2, 0, incoming, cfg, sc, machine.Private)
		if inTmp2 {
			finalArr[me] = tmp2
		} else {
			finalArr[me] = recv
		}
		finalCounts[me] = incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "sample", Model: "shmem", Sorted: sorted,
		RecvCounts: finalCounts, Run: run}, nil
}
