package sorts

import (
	"sort"

	"repro/internal/machine"
)

// selectSamples picks count evenly spaced keys from the locally sorted
// run arr.Data[lo:lo+n], charging the reads.
func selectSamples(p *machine.Proc, arr *machine.Array[uint32], lo, n, count int) []uint32 {
	if count > n {
		count = n
	}
	out := make([]uint32, count)
	idx := make([]int64, count)
	for j := 0; j < count; j++ {
		// Position (j+1)*n/(count+1): interior points, avoiding the ends.
		i := lo + (j+1)*n/(count+1)
		idx[j] = int64(i)
		out[j] = arr.Data[i]
	}
	// One gather-stream call charges all sample reads (3 ops each for the
	// index arithmetic), replacing count per-element Load/Compute pairs.
	arr.GatherLoad(p, idx, machine.Private, 3)
	return out
}

// sortSamplesCharged sorts a host-side sample slice, charging the
// comparison sort's work.
func sortSamplesCharged(p *machine.Proc, s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n > 1 {
		p.Compute(2 * n * ilog2(n))
	}
}

// mergeSamplesCharged sorts a concatenation of `ways` already-sorted
// runs, charging only a multiway merge (n log ways) — the samples each
// process publishes are pre-sorted, so collectors merge rather than
// re-sort.
func mergeSamplesCharged(p *machine.Proc, s []uint32, ways int) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n > 1 && ways > 1 {
		p.Compute(2 * n * ilog2(ways))
	}
}

// splittersFrom picks procs-1 splitters from the sorted pool of all
// samples by regular sampling.
func splittersFrom(p *machine.Proc, sortedAll []uint32, procs int) []uint32 {
	spl := make([]uint32, procs-1)
	for j := 1; j < procs; j++ {
		spl[j-1] = sortedAll[j*len(sortedAll)/procs]
	}
	p.Compute(2 * procs)
	return spl
}

// boundariesOf computes, for the locally sorted run arr.Data[lo:lo+n]
// and the given splitters, the procs+1 boundary offsets (relative to lo):
// keys [b[j], b[j+1]) go to destination j. Runs of keys equal to a
// repeated splitter are spread evenly across the tied destinations
// (equal keys may legally land on any of them), which keeps heavily
// duplicated inputs — the paper's zero distribution — load balanced.
func boundariesOf(p *machine.Proc, arr *machine.Array[uint32], lo, n int, splitters []uint32) []int64 {
	procs := len(splitters) + 1
	b := make([]int64, procs+1)
	b[procs] = int64(n)
	for j, s := range splitters {
		// Binary search for the first key >= s.
		idx := sort.Search(n, func(i int) bool { return arr.Data[lo+i] >= s })
		b[j+1] = int64(idx)
		p.Compute(2 * ilog2(n+1))
	}
	// Spread equal-splitter runs: consecutive splitters js..je sharing
	// value v pin boundaries b[js+1..je+1] to the same spot, funnelling
	// every key == v to one destination; slice that run across the tied
	// destinations instead.
	for js := 0; js < len(splitters); {
		je := js
		for je+1 < len(splitters) && splitters[je+1] == splitters[js] {
			je++
		}
		if m := je - js + 1; m > 1 {
			v := splitters[js]
			lb := int(b[js+1])
			ub := lb + sort.Search(n-lb, func(i int) bool { return arr.Data[lo+lb+i] > v })
			if run := ub - lb; run > 0 {
				for i := 0; i < m; i++ {
					b[js+1+i] = int64(lb + i*run/m)
				}
				p.Compute(m + 2*ilog2(n+1))
			}
		}
		js = je + 1
	}
	return b
}

// gatherSorted concatenates the per-processor final runs.
func gatherSorted(final []*machine.Array[uint32], counts []int) []uint32 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]uint32, 0, total)
	for i, arr := range final {
		out = append(out, arr.Data[:counts[i]]...)
	}
	return out
}
