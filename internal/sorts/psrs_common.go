package sorts

import (
	"repro/internal/machine"
)

// Shared machinery for Parallel Sorting by Regular Sampling (PSRS,
// Shi & Schaeffer 1992). PSRS differs from the paper's splitter-based
// sample sort in two communication shapes: pivot selection is a
// gather-to-root plus broadcast (the root merges all P*P regular
// samples and picks the P-1 pivots alone), and the received keys are
// multiway-MERGED rather than re-sorted — each processor's contribution
// arrives already sorted, so a P-way merge of the runs finishes the
// sort in one sweep.

// corruptPSRSBoundary, when set, mutates a processor's partition
// boundary vector in place right after it is computed. It exists for
// the mutation tests (internal/check): a corrupted partition must be
// caught by the sorted-output/agreement oracles downstream, never
// silently repriced into a "valid" run.
var corruptPSRSBoundary func(proc, np int, b []int64)

// SetCorruptPSRSBoundaryForTest installs (or, with nil, removes) the
// partition-corruption hook. Not safe to call while runs are in flight.
func SetCorruptPSRSBoundaryForTest(f func(proc, np int, b []int64)) {
	corruptPSRSBoundary = f
}

// pivotsFrom picks procs-1 pivots from the sorted pool of all regular
// samples. The pool holds P groups of g = L/P samples, each group
// drawn by selectSamples at the interior quantiles (k+1)/(g+1) of one
// locally sorted run, so pool index m sits near global quantile
// (m/P + 1)/(g+1); solving that for quantile j/P puts pivot j at index
// j*(g+1) - P/2. (The classic PSRS rho = P/2 offset assumes samples
// taken from the start of each run; applied to these center-shifted
// samples it would double-shift and systematically overload partition
// 0.) Degenerate pools (fewer samples than processors, n < P*P) clamp;
// duplicate pivots are handled downstream by boundariesOf's
// tie-spreading.
func pivotsFrom(p *machine.Proc, sortedAll []uint32, procs int) []uint32 {
	pv := make([]uint32, procs-1)
	L := len(sortedAll)
	if L == 0 {
		return pv
	}
	g := L / procs
	for j := 1; j < procs; j++ {
		idx := j*(g+1) - procs/2
		if idx < 0 {
			idx = 0
		}
		if idx >= L {
			idx = L - 1
		}
		pv[j-1] = sortedAll[idx]
	}
	p.Compute(2 * procs)
	return pv
}

// psrsDestCounts converts partition boundaries b (from boundariesOf,
// len P+1) into the per-destination key counts that act as this
// processor's "histogram" row of the chunk plan: destinations play the
// role radix buckets play in the radix sorts' plans.
func psrsDestCounts(p *machine.Proc, b []int64) []int32 {
	counts := make([]int32, len(b)-1)
	for d := range counts {
		counts[d] = int32(b[d+1] - b[d])
	}
	p.Compute(len(counts))
	return counts
}

// psrsIncoming returns how many keys land on processor me under the
// plan — the total of "bucket" me across all sources.
func psrsIncoming(pl *chunkPlan, me int) int {
	end := int64(pl.n)
	if me+1 < pl.buckets {
		end = pl.gStart[me+1]
	}
	return int(end - pl.gStart[me])
}

// psrsRuns returns the receive-buffer layout of processor me's incoming
// runs: runs arrive source-major (plan.rank is the exclusive prefix over
// sources), so run q occupies [starts[q], starts[q]+counts[q]).
func psrsRuns(pl *chunkPlan, me int) (starts, counts []int) {
	P := pl.procs
	starts = make([]int, P)
	counts = make([]int, P)
	for q := 0; q < P; q++ {
		starts[q] = int(pl.rank[q][me])
		counts[q] = int(pl.hists[q][me])
	}
	return starts, counts
}

// multiwayMergeCharged merges the sorted runs recv[starts[q] :
// starts[q]+counts[q]) into out[0:total] with a binary heap of run
// heads, charging per output key one sequential read of the winning
// head, the heap's ~2·log2(ways) comparisons, and one sequential write.
// Ties break by source rank, keeping the merge deterministic.
func multiwayMergeCharged(p *machine.Proc, recv, out *machine.Array[uint32], starts, counts []int) int {
	type head struct {
		key     uint32
		src     int
		at, end int
	}
	hp := make([]head, 0, len(starts))
	less := func(a, b head) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.src < b.src
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(hp[i], hp[parent]) {
				break
			}
			hp[i], hp[parent] = hp[parent], hp[i]
			i = parent
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r, s := 2*i+1, 2*i+2, i
			if l < len(hp) && less(hp[l], hp[s]) {
				s = l
			}
			if r < len(hp) && less(hp[r], hp[s]) {
				s = r
			}
			if s == i {
				break
			}
			hp[i], hp[s] = hp[s], hp[i]
			i = s
		}
	}
	// Each run head advances sequentially through its own region of recv,
	// so every run gets its own stream cursor (private cache/TLB lanes):
	// the P interleaved streams stop evicting each other's memo state,
	// and each access charges exactly what the LoadSeq/StoreSeq wrappers
	// charged before. readers must not be appended to while open — the
	// cursors' TLB lanes are registered by address.
	readers := make([]machine.SeqCursor, len(starts))
	for q := range starts {
		recv.OpenCursor(&readers[q], p, false, machine.Private)
	}
	var writer machine.SeqCursor
	out.OpenCursor(&writer, p, true, machine.Private)
	for q := range starts {
		if counts[q] == 0 {
			continue
		}
		readers[q].Access(starts[q])
		k := recv.Data[starts[q]]
		hp = append(hp, head{key: k, src: q, at: starts[q] + 1, end: starts[q] + counts[q]})
		siftUp(len(hp) - 1)
	}
	stepOps := 2*ilog2(len(hp)+1) + 4
	total := 0
	for len(hp) > 0 {
		h := hp[0]
		out.Data[total] = h.key
		writer.Access(total)
		p.Compute(stepOps)
		total++
		if h.at < h.end {
			readers[h.src].Access(h.at)
			hp[0] = head{key: recv.Data[h.at], src: h.src, at: h.at + 1, end: h.end}
		} else {
			hp[0] = hp[len(hp)-1]
			hp = hp[:len(hp)-1]
		}
		siftDown()
	}
	p.CloseCursors()
	return total
}
