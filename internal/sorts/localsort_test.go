package sorts

import (
	"sort"
	"testing"

	"repro/internal/keys"
	"repro/internal/machine"
)

// scaled builds the standard scaled experiment machine.
func scaled(t *testing.T, procs int) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m
}

// genKeys produces n keys of distribution d for the given machine size.
func genKeys(t *testing.T, d keys.Dist, n, procs, radix int) []uint32 {
	t.Helper()
	return keys.MustGenerate(d, keys.GenConfig{N: n, Procs: procs, RadixBits: radix})
}

// checkSorted verifies res.Sorted is an ascending permutation of in.
func checkSorted(t *testing.T, in []uint32, res *Result) {
	t.Helper()
	if len(res.Sorted) != len(in) {
		t.Fatalf("%s/%s: output length %d, want %d", res.Algorithm, res.Model, len(res.Sorted), len(in))
	}
	for i := 1; i < len(res.Sorted); i++ {
		if res.Sorted[i-1] > res.Sorted[i] {
			t.Fatalf("%s/%s: not sorted at %d: %d > %d",
				res.Algorithm, res.Model, i, res.Sorted[i-1], res.Sorted[i])
		}
	}
	want := append([]uint32(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if res.Sorted[i] != want[i] {
			t.Fatalf("%s/%s: not a permutation of the input at %d: got %d want %d",
				res.Algorithm, res.Model, i, res.Sorted[i], want[i])
		}
	}
}

func TestConfigPasses(t *testing.T) {
	cases := []struct{ radix, passes int }{
		{8, 4}, {11, 3}, {12, 3}, {7, 5}, {6, 6}, {16, 2},
	}
	for _, c := range cases {
		cfg := Config{Radix: c.radix, KeyBits: 31}
		if got := cfg.Passes(); got != c.passes {
			t.Errorf("radix %d: passes = %d, want %d", c.radix, got, c.passes)
		}
	}
}

func TestDigitExtraction(t *testing.T) {
	k := uint32(0b1101_0110_1011)
	if d := digit(k, 0, 4); d != 0b1011 {
		t.Errorf("digit 0 = %b", d)
	}
	if d := digit(k, 1, 4); d != 0b0110 {
		t.Errorf("digit 1 = %b", d)
	}
	if d := digit(k, 2, 4); d != 0b1101 {
		t.Errorf("digit 2 = %b", d)
	}
}

func TestSeqRadixSorts(t *testing.T) {
	for _, d := range []keys.Dist{keys.Gauss, keys.Random, keys.Zero} {
		m := scaled(t, 1)
		in := genKeys(t, d, 5000, 1, 8)
		res, err := SeqRadix(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatalf("SeqRadix(%v): %v", d, err)
		}
		checkSorted(t, in, res)
		if res.TimeNs() <= 0 {
			t.Errorf("%v: no simulated time", d)
		}
	}
}

func TestSeqRadixOddPasses(t *testing.T) {
	// Radix 11 -> 3 passes: result lands in tmp; verify the copy-out.
	m := scaled(t, 1)
	in := genKeys(t, keys.Random, 3000, 1, 11)
	res, err := SeqRadix(m, in, Config{Radix: 11})
	if err != nil {
		t.Fatalf("SeqRadix: %v", err)
	}
	checkSorted(t, in, res)
}

func TestSeqRadixValidation(t *testing.T) {
	m := scaled(t, 1)
	if _, err := SeqRadix(m, []uint32{3, 1}, Config{Radix: 99}); err == nil {
		t.Error("accepted radix 99")
	}
}

func TestSeqRadixCapacityEffect(t *testing.T) {
	// Simulated time per key must grow once the working set blows the
	// (scaled) cache: the superlinear-speedup mechanism of the paper.
	perKey := func(n int) float64 {
		m := scaled(t, 1)
		in := genKeys(t, keys.Gauss, n, 1, 8)
		res, err := SeqRadix(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatalf("SeqRadix: %v", err)
		}
		return res.TimeNs() / float64(n)
	}
	small := perKey(4096)   // 16 KB data + tmp: inside 64 KB cache
	large := perKey(262144) // 1 MB data: far beyond cache and TLB reach
	if large < 1.5*small {
		t.Errorf("per-key cost small=%v large=%v: expected capacity penalty >= 1.5x", small, large)
	}
}

func TestSeqRadixDeterministic(t *testing.T) {
	run := func() float64 {
		m := scaled(t, 1)
		in := genKeys(t, keys.Gauss, 10000, 1, 8)
		res, err := SeqRadix(m, in, Config{Radix: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
