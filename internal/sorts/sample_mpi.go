package sorts

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// sampleChunkMsg is the single redistribution message each process sends
// to each other process in sample sort.
type sampleChunkMsg struct {
	data []uint32
}

// SampleMPI runs the parallel sample sort under message passing,
// following the paper's MPI program: phases 1, 2 and 5 match CC-SAS; the
// splitter phase uses MPI_Allgather (every process then computes the
// splitters redundantly, with no process groups); and the redistribution
// uses exactly one message per process pair.
func SampleMPI(m *machine.Machine, keysIn []uint32, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keysIn)
	P := m.Procs()
	B := cfg.Buckets()
	c := mpi.New(m, cfg.MPI)

	keyArr := make([]*machine.Array[uint32], P)
	tmpArr := make([]*machine.Array[uint32], P)
	recvArr := make([]*machine.Array[uint32], P)
	tmp2Arr := make([]*machine.Array[uint32], P)
	scratch := make([]*localScratch, P)
	sCount := cfg.SampleSize
	if sCount > n/P {
		sCount = max(1, n/P)
	}
	for i := 0; i < P; i++ {
		lo, hi := bounds(n, P, i)
		np := hi - lo
		keyArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("smpi.k%d", i), np, i)
		tmpArr[i] = machine.NewArrayOnProc[uint32](m, fmt.Sprintf("smpi.t%d", i), np, i)
		recvArr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("smpi.r%d", i), n, i)
		tmp2Arr[i] = machine.NewArrayReserve[uint32](m, fmt.Sprintf("smpi.r2%d", i), n, i)
		scratch[i] = newLocalScratch(m, fmt.Sprintf("smpi.h%d", i), B, i)
		copy(keyArr[i].Data, keysIn[lo:hi])
	}
	m.ResetMemory()

	finalCounts := make([]int, P)
	finalArr := make([]*machine.Array[uint32], P)

	run := m.Run(func(p *machine.Proc) {
		me := p.ID
		np := keyArr[me].Len()
		sc := scratch[me]

		p.SetPhase("localsort1")
		// Phase 1: local sort.
		inTmp := localRadixSort(p, keyArr[me], tmpArr[me], 0, np, cfg, sc, machine.Private)
		sorted := keyArr[me]
		if inTmp {
			sorted = tmpArr[me]
		}
		if P == 1 {
			finalArr[0], finalCounts[0] = sorted, np
			return
		}

		p.SetPhase("splitters")
		// Phases 2+3: allgather samples; compute splitters redundantly.
		samples := selectSamples(p, sorted, 0, np, sCount)
		gathered := mpi.Allgather(c, p, samples)
		all := make([]uint32, 0, P*sCount)
		for _, g := range gathered {
			all = append(all, g...)
		}
		mergeSamplesCharged(p, all, P)
		splitters := splittersFrom(p, all, P)

		p.SetPhase("redistribute")
		// Phase 4: one message per destination.
		b := boundariesOf(p, sorted, 0, np, splitters)
		selfCnt := int(b[me+1] - b[me])
		incomingKnown := selfCnt
		recv := recvArr[me].Grow(min(n, selfCnt))
		if selfCnt > 0 {
			sorted.LoadRange(p, int(b[me]), int(b[me])+selfCnt, machine.Private)
			copy(recv.Data[:selfCnt], sorted.Data[b[me]:b[me+1]])
			recv.StoreRange(p, 0, selfCnt, machine.Private)
			p.Compute(selfCnt)
		}
		at := selfCnt
		p.SetContention(p.ContentionFactor(P, false))
		for k := 1; k < P; k++ {
			dst := (me + k) % P
			src := (me - k + P) % P
			cnt := int(b[dst+1] - b[dst])
			data := make([]uint32, cnt)
			if cnt > 0 {
				sorted.LoadRange(p, int(b[dst]), int(b[dst])+cnt, machine.Private)
				copy(data, sorted.Data[b[dst]:b[dst+1]])
			}
			c.Send(p, dst, 0, sampleChunkMsg{data: data}, 4*cnt)
			msg := c.Recv(p, src, 0, 0)
			in := msg.Payload.(sampleChunkMsg).data
			incomingKnown = at + len(in)
			recv = recvArr[me].Grow(incomingKnown)
			copy(recv.Data[at:at+len(in)], in)
			p.InvalidateRange(recv.Addr(at), recv.Bytes(len(in)))
			p.Compute(8)
			at += len(in)
		}
		p.SetContention(1)
		incoming := at

		p.SetPhase("localsort2")
		// Phase 5: local sort of the received keys.
		tmp2 := tmp2Arr[me].Grow(incoming)
		inTmp2 := localRadixSort(p, recv, tmp2, 0, incoming, cfg, sc, machine.Private)
		if inTmp2 {
			finalArr[me] = tmp2
		} else {
			finalArr[me] = recv
		}
		finalCounts[me] = incoming
	})

	sorted := gatherSortedSample(finalArr, finalCounts, n, P)
	return &Result{Algorithm: "sample", Model: "mpi-" + cfg.MPI.Engine.String(),
		Sorted: sorted, RecvCounts: finalCounts, Run: run}, nil
}
