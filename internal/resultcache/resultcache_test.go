package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

type cfgA struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

// TestKeyDeterministic pins that equal configs and versions hash to
// equal keys, and that any input change moves the key.
func TestKeyDeterministic(t *testing.T) {
	k1, err := Key("v1", cfgA{"radix", 4096})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key("v1", cfgA{"radix", 4096})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equal inputs hashed differently: %s vs %s", k1, k2)
	}
	if !ValidKey(k1) {
		t.Errorf("Key produced an invalid key %q", k1)
	}
	kN, _ := Key("v1", cfgA{"radix", 4097})
	kV, _ := Key("v2", cfgA{"radix", 4096})
	if k1 == kN || k1 == kV || kN == kV {
		t.Errorf("distinct inputs collided: %s %s %s", k1, kN, kV)
	}
}

// TestKeyVersionDomainSeparated pins the version/config domain
// separation: moving bytes across the boundary must change the key.
func TestKeyVersionDomainSeparated(t *testing.T) {
	a, _ := Key("ab", "c")
	b, _ := Key("a", "bc")
	if a == b {
		t.Error("version and config bytes are not domain-separated")
	}
}

func TestValidKey(t *testing.T) {
	good, _ := Key("v", 1)
	for _, tc := range []struct {
		key string
		ok  bool
	}{
		{good, true},
		{"sha256:" + strings.Repeat("0", 64), true},
		{"sha256:" + strings.Repeat("0", 63), false},
		{"sha256:" + strings.Repeat("G", 64), false},
		{"md5:" + strings.Repeat("0", 64), false},
		{"../../etc/passwd", false},
		{"", false},
	} {
		if got := ValidKey(tc.key); got != tc.ok {
			t.Errorf("ValidKey(%q) = %v, want %v", tc.key, got, tc.ok)
		}
	}
}

// TestDoComputesOnce: the second Do for a key must serve the first's
// exact bytes from memory without recomputing.
func TestDoComputesOnce(t *testing.T) {
	s := mustStore(t, Config{})
	var calls atomic.Int64
	compute := func() ([]byte, error) {
		calls.Add(1)
		return []byte(`{"t":1}`), nil
	}
	v1, src1, err := s.Do("k", compute)
	if err != nil || src1 != SourceComputed {
		t.Fatalf("first Do: %q, %v", src1, err)
	}
	v2, src2, err := s.Do("k", compute)
	if err != nil || src2 != SourceMem {
		t.Fatalf("second Do: %q, %v", src2, err)
	}
	if string(v1) != string(v2) {
		t.Errorf("warm bytes %q differ from cold bytes %q", v2, v1)
	}
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
}

// TestDoSingleflight hammers one key from many goroutines; exactly one
// compute may run, everyone must see its bytes.
func TestDoSingleflight(t *testing.T) {
	s := mustStore(t, Config{})
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 64
	vals := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			v, _, err := s.Do("k", func() ([]byte, error) {
				calls.Add(1)
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[w] = v
		}(w)
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times under contention, want 1", calls.Load())
	}
	for w, v := range vals {
		if string(v) != "payload" {
			t.Errorf("worker %d saw %q", w, v)
		}
	}
	st := s.Stats()
	if st.Computed != 1 {
		t.Errorf("Stats.Computed = %d, want 1", st.Computed)
	}
	if st.MemHits+st.Shared != workers-1 {
		t.Errorf("MemHits+Shared = %d, want %d", st.MemHits+st.Shared, workers-1)
	}
}

// TestErrorsNotCached is the cache-poisoning regression, resultcache
// flavor: a failed compute must be retried by the next caller, and the
// waiters of the failed flight must all see the error.
func TestErrorsNotCached(t *testing.T) {
	s := mustStore(t, Config{Dir: t.TempDir()})
	k, _ := Key("v1", "poisonable")
	injected := errors.New("injected failure")
	fail := true
	v, _, err := s.Do(k, func() ([]byte, error) {
		if fail {
			return nil, injected
		}
		return []byte("recovered"), nil
	})
	if !errors.Is(err, injected) || v != nil {
		t.Fatalf("first Do = %q, %v; want injected failure", v, err)
	}
	fail = false
	v, src, err := s.Do(k, func() ([]byte, error) { return []byte("recovered"), nil })
	if err != nil {
		t.Fatalf("second Do still failing: %v (error was cached)", err)
	}
	if src != SourceComputed || string(v) != "recovered" {
		t.Errorf("second Do = %q from %q, want computed %q", v, src, "recovered")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Errorf("Stats.Errors = %d, want 1", st.Errors)
	}
	// The failed flight must not have persisted anything either.
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("disk tier holds %d files, want exactly the retried success", len(ents))
	}
}

// TestPanicContained: a panicking compute becomes an error, is not
// cached, and leaves the store fully usable.
func TestPanicContained(t *testing.T) {
	s := mustStore(t, Config{})
	_, _, err := s.Do("k", func() ([]byte, error) { panic("boom at cell") })
	if err == nil || !strings.Contains(err.Error(), "boom at cell") {
		t.Fatalf("panicking compute returned %v, want panic-derived error", err)
	}
	if !strings.Contains(err.Error(), "resultcache_test.go") {
		t.Errorf("panic error carries no stack: %v", err)
	}
	v, src, err := s.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" || src != SourceComputed {
		t.Errorf("store unusable after panic: %q, %q, %v", v, src, err)
	}
}

// TestLRUBound fills the memory tier past MaxEntries and checks the
// oldest keys were evicted while the newest survive.
func TestLRUBound(t *testing.T) {
	s := mustStore(t, Config{MaxEntries: 4})
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := s.Do(k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemEntries != 4 {
		t.Errorf("MemEntries = %d, want 4", st.MemEntries)
	}
	if st.Evictions != 6 {
		t.Errorf("Evictions = %d, want 6", st.Evictions)
	}
	if _, _, ok := s.Get("k0"); ok {
		t.Error("evicted key k0 still served from memory")
	}
	if v, src, ok := s.Get("k9"); !ok || src != SourceMem || string(v) != "k9" {
		t.Errorf("freshest key: %q, %q, %v", v, src, ok)
	}
}

// TestDiskTierSurvivesRestart computes through one store and reads the
// same keys through a fresh store on the same directory: the values
// must come back byte-identical from disk without recomputing.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustStore(t, Config{Dir: dir})
	key, _ := Key("v1", cfgA{"radix", 64})
	want := []byte(`{"time_ns":42}`)
	if _, _, err := s1.Do(key, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	s2 := mustStore(t, Config{Dir: dir})
	v, src, err := s2.Do(key, func() ([]byte, error) {
		t.Error("restarted store recomputed a persisted result")
		return nil, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDisk || string(v) != string(want) {
		t.Errorf("restart read %q from %q, want %q from disk", v, src, want)
	}
	// Promoted to memory: the next read is a mem hit.
	if _, src, ok := s2.Get(key); !ok || src != SourceMem {
		t.Errorf("disk hit was not promoted to memory (src %q, ok %v)", src, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Computed != 0 {
		t.Errorf("restart stats = %+v, want 1 disk hit, 0 computed", st)
	}
}

// TestDiskTierAtomicNoTempLeak checks the write path leaves only the
// final file behind and that empty/corrupt files read as misses.
func TestDiskTierAtomicNoTempLeak(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, Config{Dir: dir})
	key, _ := Key("v1", 7)
	if _, _, err := s.Do(key, func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || strings.HasPrefix(ents[0].Name(), ".tmp-") {
		t.Fatalf("disk tier left %v, want exactly one final file", ents)
	}
	// Truncate the file: the store must treat it as a miss and recompute.
	if err := os.WriteFile(filepath.Join(dir, ents[0].Name()), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustStore(t, Config{Dir: dir})
	v, src, err := s2.Do(key, func() ([]byte, error) { return []byte("x2"), nil })
	if err != nil || src != SourceComputed || string(v) != "x2" {
		t.Errorf("corrupt file not treated as miss: %q, %q, %v", v, src, err)
	}
}

// TestGetMissAndInvalidKeys: lookups never invent values, and keys that
// could escape the cache directory are rejected outright.
func TestGetMissAndInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, Config{Dir: dir})
	if _, _, ok := s.Get("sha256:" + strings.Repeat("a", 64)); ok {
		t.Error("Get invented a value for an absent key")
	}
	if _, _, ok := s.Get("../escape"); ok {
		t.Error("Get accepted a traversal key")
	}
	if p := s.path("../escape"); p != "" {
		t.Errorf("path(%q) = %q, want rejection", "../escape", p)
	}
}

// TestDoBehindGetFlight runs concurrent Get and Do traffic on the same
// missing key: every Do must end with the value even when it initially
// lands behind a lookup-only flight.
func TestDoBehindGetFlight(t *testing.T) {
	s := mustStore(t, Config{})
	const rounds = 50
	for r := 0; r < rounds; r++ {
		key := fmt.Sprintf("k%d", r)
		gate := make(chan struct{})
		var wg sync.WaitGroup
		var calls atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-gate
				s.Get(key)
			}()
		}
		vals := make([][]byte, 4)
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				<-gate
				v, _, err := s.Do(key, func() ([]byte, error) {
					calls.Add(1)
					return []byte(key), nil
				})
				if err != nil {
					t.Error(err)
				}
				vals[d] = v
			}(d)
		}
		close(gate)
		wg.Wait()
		if calls.Load() != 1 {
			t.Fatalf("round %d: compute ran %d times, want 1", r, calls.Load())
		}
		for d, v := range vals {
			if string(v) != key {
				t.Fatalf("round %d: Do %d got %q, want %q", r, d, v, key)
			}
		}
	}
}

// TestCodeVersionStable: whatever the build stamps, the version must be
// non-empty and stable across calls (keys depend on it).
func TestCodeVersionStable(t *testing.T) {
	v := CodeVersion()
	if v == "" {
		t.Fatal("CodeVersion is empty")
	}
	if v2 := CodeVersion(); v2 != v {
		t.Errorf("CodeVersion changed between calls: %q then %q", v, v2)
	}
}
