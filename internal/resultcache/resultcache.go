// Package resultcache is a content-addressed store for deterministic
// experiment results. Every simulation in this repository is a pure
// function of (experiment configuration, seed, code version) — byte-
// identical at any parallelism — so a result, once computed, is valid
// forever. The store exploits that: results are keyed by a canonical
// hash of their inputs, identical in-flight computations are
// singleflight-deduplicated, and completed results live in an
// LRU-bounded in-memory tier backed by an optional persistent on-disk
// tier (one JSON file per key, written atomically), so repeat queries
// cost ~0 across process restarts.
//
// It generalizes the harness's singleflight baseline cache (figures.go)
// and applies the same hard-won rule: errors are never cached. A failed
// or panicking compute is reported to every waiter of that flight and
// then forgotten, so the next caller retries instead of being poisoned
// by a stale error.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime/debug"
	"sync"
)

// Key returns the content address of a result: "sha256:<hex>" over the
// code version and the canonical JSON encoding of config. encoding/json
// writes struct fields in declaration order and map keys sorted, so the
// encoding — and therefore the key — is deterministic for a given
// config value. Two processes running the same code version agree on
// every key, which is what lets the disk tier be shared across
// restarts.
func Key(version string, config any) (string, error) {
	buf, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("resultcache: encoding config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0}) // domain-separate version from config bytes
	h.Write(buf)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// CodeVersion identifies the running code in cache keys. It prefers the
// VCS revision stamped into the build (plus a "+dirty" marker for
// modified trees), then the main module version, then "dev". Results
// keyed under "dev" are still internally consistent within one build;
// they just cannot distinguish two different dev builds, which is the
// same trust model as any local cache.
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = "dev"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			codeVersion = rev + dirty
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			codeVersion = v
		}
	})
	return codeVersion
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// keyPattern is the only key shape the disk tier maps to a file name.
// Keys reach the store from HTTP paths (GET /v1/result/{hash}), so
// anything that does not match is treated as absent rather than being
// spliced into a filesystem path.
var keyPattern = regexp.MustCompile(`^sha256:[0-9a-f]{64}$`)

// ValidKey reports whether key has the canonical "sha256:<64 hex>"
// shape produced by Key.
func ValidKey(key string) bool { return keyPattern.MatchString(key) }

// Source says which tier satisfied a lookup.
type Source string

const (
	// SourceMem is an in-memory LRU hit.
	SourceMem Source = "mem"
	// SourceDisk is a persistent-tier hit (the value was promoted to
	// memory on the way out).
	SourceDisk Source = "disk"
	// SourceComputed means this call ran the compute function.
	SourceComputed Source = "computed"
	// SourceShared means the call joined another caller's in-flight
	// lookup/compute for the same key and shared its outcome.
	SourceShared Source = "shared"
)

// Stats are the store's monotonic counters plus two gauges (InFlight,
// MemEntries). Hit ratio over a window is (MemHits+DiskHits+Shared) /
// (MemHits+DiskHits+Shared+Computed+Errors) diffed across snapshots.
type Stats struct {
	MemHits    int64 `json:"mem_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Shared     int64 `json:"shared"`
	Computed   int64 `json:"computed"`
	Errors     int64 `json:"errors"`
	Evictions  int64 `json:"evictions"`
	DiskErrors int64 `json:"disk_errors"`
	InFlight   int   `json:"in_flight"`
	MemEntries int   `json:"mem_entries"`
}

// Config configures a Store.
type Config struct {
	// Dir is the persistent tier's directory (created if missing). Empty
	// disables the disk tier.
	Dir string
	// MaxEntries bounds the in-memory tier (default 1024). The disk tier
	// is unbounded: one small JSON file per distinct result ever
	// computed.
	MaxEntries int
}

// Store is a two-tier content-addressed result store with singleflight
// admission. It is safe for concurrent use.
type Store struct {
	dir string
	max int

	mu     sync.Mutex
	lru    *list.List               // front = most recent; values are *memEntry
	mem    map[string]*list.Element // key → LRU element
	flight map[string]*flight       // key → in-flight lookup/compute
	stats  Stats
}

// memEntry is one in-memory cache slot.
type memEntry struct {
	key string
	val []byte
}

// flight is one singleflight slot: the first caller fills val/err and
// closes done; everyone else waits on done. Unlike memEntry a flight is
// always removed when it completes — errors live only as long as their
// flight, never in a tier. computing distinguishes a Do flight (will
// produce a value) from a lookup-only Get flight (may legitimately end
// empty), so a Do never mistakes a Get's empty miss for its own result.
type flight struct {
	done      chan struct{}
	computing bool
	val       []byte
	err       error
	src       Source
}

// New opens a store, creating the disk-tier directory when configured.
func New(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Store{
		dir:    cfg.Dir,
		max:    cfg.MaxEntries,
		lru:    list.New(),
		mem:    make(map[string]*list.Element),
		flight: make(map[string]*flight),
	}, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.InFlight = len(s.flight)
	st.MemEntries = s.lru.Len()
	return st
}

// Get returns the cached value for key from the memory or disk tier,
// without computing anything. It joins an in-flight Do for the key if
// one exists (reporting SourceShared and that flight's outcome).
func (s *Store) Get(key string) ([]byte, Source, bool) {
	val, src, err := s.do(key, nil)
	if err != nil || val == nil {
		return nil, src, false
	}
	return val, src, true
}

// Do returns the value for key, computing it at most once: memory tier,
// then disk tier, then compute, with all concurrent callers for the
// same key sharing one flight. A successful compute is stored in both
// tiers; its exact bytes are returned to every caller forever after, so
// warm responses are byte-identical to cold ones. A compute that fails
// — or panics; the panic is recovered and converted into an error — is
// returned to every waiter of that flight and then dropped: errors are
// never cached, the next caller retries (the baseline-cache poisoning
// fix, generalized).
func (s *Store) Do(key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	if compute == nil {
		return nil, SourceComputed, fmt.Errorf("resultcache: nil compute for %s", key)
	}
	return s.do(key, compute)
}

// do is the shared Get/Do body; compute == nil means lookup-only.
func (s *Store) do(key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	var f *flight
	for {
		s.mu.Lock()
		if el, ok := s.mem[key]; ok {
			s.lru.MoveToFront(el)
			s.stats.MemHits++
			val := el.Value.(*memEntry).val
			s.mu.Unlock()
			return val, SourceMem, nil
		}
		if g, ok := s.flight[key]; ok {
			if compute == nil || g.computing {
				s.stats.Shared++
				s.mu.Unlock()
				<-g.done
				return g.val, SourceShared, g.err
			}
			// A Do behind a lookup-only Get flight: wait it out, then
			// retry — either the Get promoted a disk value to memory, or
			// this caller opens its own computing flight.
			s.mu.Unlock()
			<-g.done
			continue
		}
		f = &flight{done: make(chan struct{}), computing: compute != nil}
		s.flight[key] = f
		s.mu.Unlock()
		break
	}

	f.val, f.src, f.err = s.fill(key, compute)

	s.mu.Lock()
	delete(s.flight, key)
	switch {
	case f.err != nil:
		s.stats.Errors++
	case f.val == nil:
		// Lookup-only miss: nothing to admit.
	default:
		if f.src == SourceDisk {
			s.stats.DiskHits++
		} else {
			s.stats.Computed++
		}
		s.admit(key, f.val)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.src, f.err
}

// fill resolves a missed key outside the lock: disk tier first, then
// the compute function (guarded against panics). It returns a nil value
// with a nil error only for lookup-only calls that miss everywhere.
func (s *Store) fill(key string, compute func() ([]byte, error)) (val []byte, src Source, err error) {
	if buf, ok := s.readDisk(key); ok {
		return buf, SourceDisk, nil
	}
	if compute == nil {
		return nil, SourceDisk, nil
	}
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, fmt.Errorf("resultcache: compute for %s panicked: %v\n%s", key, r, debug.Stack())
		}
	}()
	val, err = compute()
	if err != nil {
		return nil, SourceComputed, err
	}
	s.writeDisk(key, val)
	return val, SourceComputed, nil
}

// admit inserts a value into the memory tier, evicting from the LRU
// tail past MaxEntries. Caller holds s.mu.
func (s *Store) admit(key string, val []byte) {
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*memEntry).val = val
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, val: val})
	for s.lru.Len() > s.max {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.mem, tail.Value.(*memEntry).key)
		s.stats.Evictions++
	}
}

// path maps a key to its disk-tier file, or "" when the key is invalid
// or the disk tier is disabled.
func (s *Store) path(key string) string {
	if s.dir == "" || !ValidKey(key) {
		return ""
	}
	return filepath.Join(s.dir, "sha256-"+key[len("sha256:"):]+".json")
}

// readDisk returns the persisted value for key, if any.
func (s *Store) readDisk(key string) ([]byte, bool) {
	p := s.path(key)
	if p == "" {
		return nil, false
	}
	buf, err := os.ReadFile(p)
	if err != nil || len(buf) == 0 {
		return nil, false
	}
	return buf, true
}

// writeDisk persists a value atomically: temp file in the same
// directory, then rename, so a concurrent reader (or a crash) never
// observes a partial file. Persistence is best-effort — a failure only
// bumps DiskErrors; the memory tier still serves the value.
func (s *Store) writeDisk(key string, val []byte) {
	p := s.path(key)
	if p == "" {
		return
	}
	fail := func() {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		fail()
		return
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		fail()
	}
}
