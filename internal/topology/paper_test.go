package topology

import (
	"math"
	"testing"
)

// TestPaperLatencyNumbers pins the Origin2000 latency model against the
// numbers the paper (and the Origin2000 documentation) quote: 313 ns to
// local memory, ~100 ns per router hop, and the furthest/average remote
// latencies on the 64-processor machine (32 nodes on a 16-router
// hypercube). Any change to the topology arithmetic that moves these
// fails loudly, since every simulated remote access is priced on top of
// them.
func TestPaperLatencyNumbers(t *testing.T) {
	top := origin64(t)

	// 64 procs → 32 nodes → 16 routers → dimension-4 hypercube.
	if top.Nodes() != 32 || top.Routers() != 16 || top.Dimension() != 4 {
		t.Fatalf("machine shape: nodes=%d routers=%d dim=%d, want 32/16/4",
			top.Nodes(), top.Routers(), top.Dimension())
	}

	cases := []struct {
		name     string
		from, to int // node ids
		hops     int
		wantNs   float64
	}{
		// Local memory: the paper's 313 ns.
		{"local", 0, 0, 0, 313},
		// Neighbor node on the same router: remote base, zero extra hops.
		{"same-router", 0, 1, 0, 600},
		// Routers 0 and 1: Hamming distance 1 → +100 ns.
		{"one-hop", 0, 2, 1, 700},
		// Routers 1 and 2 (01 vs 10): Hamming distance 2.
		{"two-hops", 2, 4, 2, 800},
		// Routers 0 and 7 (0000 vs 0111): Hamming distance 3.
		{"three-hops", 0, 14, 3, 900},
		// Routers 0 and 15 (0000 vs 1111): the far corner of the cube.
		{"four-hops-corner", 0, 30, 4, 1000},
		// Routers 2 and 13 (0010 vs 1101): complementary ids, also 4 hops.
		{"four-hops-complement", 5, 27, 4, 1000},
	}
	for _, c := range cases {
		if got := top.Hops(c.from, c.to); got != c.hops {
			t.Errorf("%s: Hops(%d,%d) = %d, want %d", c.name, c.from, c.to, got, c.hops)
		}
		if got := top.ReadLatency(c.from, c.to); got != c.wantNs {
			t.Errorf("%s: ReadLatency(%d,%d) = %v ns, want %v ns", c.name, c.from, c.to, got, c.wantNs)
		}
		// Latency is symmetric on the hypercube.
		if got := top.ReadLatency(c.to, c.from); got != c.wantNs {
			t.Errorf("%s: ReadLatency(%d,%d) = %v ns, want %v ns (symmetry)", c.name, c.to, c.from, got, c.wantNs)
		}
	}

	// The model's extremes against the machine's published figures. The
	// calibration (600 ns base + 100 ns/hop) lands within 1% of both the
	// 1010 ns furthest-memory and 796 ns average-memory numbers.
	if got := top.FurthestReadLatency(); got != 1000 {
		t.Errorf("FurthestReadLatency = %v ns, want 1000 ns", got)
	}
	if got, published := top.FurthestReadLatency(), 1010.0; math.Abs(got-published)/published > 0.01 {
		t.Errorf("FurthestReadLatency = %v ns, >1%% from the published %v ns", got, published)
	}
	if got := top.AverageReadLatency(); got != 791.03125 {
		t.Errorf("AverageReadLatency = %v ns, want 791.03125 ns", got)
	}
	if got, published := top.AverageReadLatency(), 796.0; math.Abs(got-published)/published > 0.01 {
		t.Errorf("AverageReadLatency = %v ns, >1%% from the published %v ns", got, published)
	}

	// +100 ns per hop, exactly, across every node pair: the latency
	// model is an affine function of hop count and nothing else.
	for a := 0; a < top.Nodes(); a++ {
		for b := 0; b < top.Nodes(); b++ {
			if a == b {
				continue
			}
			want := 600 + 100*float64(top.Hops(a, b))
			if got := top.ReadLatency(a, b); got != want {
				t.Fatalf("ReadLatency(%d,%d) = %v, want %v (600 + 100/hop)", a, b, got, want)
			}
		}
	}
}
