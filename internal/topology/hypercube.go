package topology

import "fmt"

// Topology is the Origin2000 binary hypercube: nodes paired onto
// routers, routers wired as a hypercube whose hop count is the Hamming
// distance between router ids. It is the default network (Config.Kind
// "" or KindHypercube) and the machine the paper measured; its latency
// arithmetic is preserved bit-for-bit across the subsystem refactor
// (internal/topology/paper_test.go pins the published shape).
type Topology struct {
	cfg       Config
	nodes     int
	routers   int
	dimension int // hypercube dimension over routers
	average   float64
}

// NewHypercube validates cfg and builds the hypercube. Unlike the other
// network kinds, the hypercube genuinely needs a power-of-two router
// count — Hamming-distance routing is undefined otherwise — so that
// constraint lives here, not in the generic New.
func NewHypercube(cfg Config) (*Topology, error) {
	nodes, routers, err := shapeOf(cfg)
	if err != nil {
		return nil, err
	}
	dim := 0
	for 1<<dim < routers {
		dim++
	}
	if 1<<dim != routers {
		return nil, fmt.Errorf("topology: hypercube router count %d is not a power of two", routers)
	}
	t := &Topology{cfg: cfg, nodes: nodes, routers: routers, dimension: dim}
	t.average = t.meanReadLatency()
	return t, nil
}

// meanReadLatency computes the exact mean uncontended read latency over
// all ordered node pairs.
//
// When every router carries the full NodesPerRouter complement the
// hypercube is vertex-transitive over nodes, so every row of the latency
// matrix is a permutation of node 0's row and the node-0 mean IS the
// all-pairs mean. That fast path keeps the historical addition order
// (and hence the exact float the paper tests pin, 791.03125 ns for the
// 64-proc Origin). A ragged last router breaks the symmetry, so the
// general path takes the exact all-pairs mean instead — the node-0
// shortcut is measurably wrong there (see TestAverageReadLatencyAsymmetric).
func (t *Topology) meanReadLatency() float64 {
	if t.nodes%t.cfg.NodesPerRouter == 0 {
		sum := 0.0
		for n := 0; n < t.nodes; n++ {
			sum += t.ReadLatency(0, n)
		}
		return sum / float64(t.nodes)
	}
	total := 0.0
	for a := 0; a < t.nodes; a++ {
		row := 0.0
		for b := 0; b < t.nodes; b++ {
			row += t.ReadLatency(a, b)
		}
		total += row
	}
	return total / float64(t.nodes*t.nodes)
}

// Kind returns KindHypercube.
func (t *Topology) Kind() string { return KindHypercube }

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// Processors returns the total processor count.
func (t *Topology) Processors() int { return t.cfg.Processors }

// Nodes returns the number of memory nodes.
func (t *Topology) Nodes() int { return t.nodes }

// Routers returns the number of routers.
func (t *Topology) Routers() int { return t.routers }

// Dimension returns the hypercube dimension across routers.
func (t *Topology) Dimension() int { return t.dimension }

// NodeOf returns the node housing processor p.
func (t *Topology) NodeOf(p int) int {
	if p < 0 || p >= t.cfg.Processors {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", p, t.cfg.Processors))
	}
	return p / t.cfg.ProcsPerNode
}

// RouterOf returns the router to which node n attaches.
func (t *Topology) RouterOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.cfg.NodesPerRouter
}

// Hops returns the number of router-to-router hops between the routers of
// nodes a and b. Two nodes on the same router are 0 hops apart; on a
// hypercube the hop count is the Hamming distance between router ids.
func (t *Topology) Hops(a, b int) int {
	ra, rb := t.RouterOf(a), t.RouterOf(b)
	x := uint(ra ^ rb)
	hops := 0
	for x != 0 {
		hops += int(x & 1)
		x >>= 1
	}
	return hops
}

// LocalLatency returns the uncontended latency (ns) of a read satisfied
// by the local node's memory.
func (t *Topology) LocalLatency() float64 { return t.cfg.LocalLatency }

// ReadLatency returns the uncontended latency (ns) for a processor on
// node from to read the first word of a line homed on node to.
func (t *Topology) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.Hops(from, to))
}

// MaxHops returns the largest hop count between any two nodes, i.e. the
// hypercube dimension.
func (t *Topology) MaxHops() int { return t.dimension }

// FurthestReadLatency returns the uncontended latency to the furthest
// remote memory.
func (t *Topology) FurthestReadLatency() float64 {
	if t.nodes == 1 {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.dimension)
}

// AverageReadLatency returns the exact mean uncontended read latency
// over all ordered (from, to) node pairs — the figure the Origin2000
// documentation quotes as the "average of local and all remote
// memories". Precomputed at construction (see meanReadLatency).
func (t *Topology) AverageReadLatency() float64 { return t.average }

// TransferTime returns the time (ns) to stream size bytes across one
// link at peak bandwidth. Latency is not included; callers add the
// appropriate per-transaction latency separately.
func (t *Topology) TransferTime(size int) float64 {
	if size <= 0 {
		return 0
	}
	return float64(size) / t.cfg.LinkBandwidth
}

// DistanceClass returns 0 for local pairs and 1+hops otherwise. Remote
// latency is affine in the hop count, so pairs of equal hop count have
// bit-identical latency.
func (t *Topology) DistanceClass(from, to int) int {
	if from == to {
		return 0
	}
	return 1 + t.Hops(from, to)
}

// NumDistanceClasses returns dimension+2: class 0 (local) plus classes
// 1..dimension+1 for 0..dimension router hops.
func (t *Topology) NumDistanceClasses() int { return t.dimension + 2 }
