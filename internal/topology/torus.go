package topology

import (
	"fmt"
	"math"
)

// torus is a 2D or 3D torus: routers sit on a wrap-around grid and the
// hop count between two routers is the Manhattan distance with ring
// wrap-around in each dimension (dimension-ordered routing).
type torus struct {
	base
	dims []int // router grid, [W,H] or [W,H,D]
}

func newTorus2D(cfg Config) (Network, error) { return newTorus(cfg, 2) }
func newTorus3D(cfg Config) (Network, error) { return newTorus(cfg, 3) }

func newTorus(cfg Config, want int) (Network, error) {
	nodes, routers, err := shapeOf(cfg)
	if err != nil {
		return nil, err
	}
	kind := KindTorus
	if want == 3 {
		kind = KindTorus3D
	}
	dims, err := torusDims(cfg, kind, want, routers)
	if err != nil {
		return nil, err
	}
	t := &torus{
		base: base{cfg: cfg, kind: kind, nodes: nodes, routers: routers},
		dims: dims,
	}
	t.finalize(t)
	return t, nil
}

// torusDims resolves the router grid: explicit dimensions must multiply
// to the router count exactly, all-zero dimensions derive the most
// balanced (near-square or near-cubic) factorization.
func torusDims(cfg Config, kind string, want, routers int) ([]int, error) {
	given := []int{cfg.TorusWidth, cfg.TorusHeight, cfg.TorusDepth}[:3]
	set := 0
	for _, d := range given[:want] {
		if d != 0 {
			set++
		}
	}
	if kind == KindTorus && cfg.TorusDepth != 0 {
		return nil, fmt.Errorf("topology: torus depth %d set on a 2D torus (use kind %q)", cfg.TorusDepth, KindTorus3D)
	}
	if set == 0 {
		return deriveTorusDims(want, routers), nil
	}
	if set != want {
		return nil, fmt.Errorf("topology: %s needs all %d grid dimensions set (or none), got width=%d height=%d depth=%d",
			kind, want, cfg.TorusWidth, cfg.TorusHeight, cfg.TorusDepth)
	}
	dims := make([]int, want)
	prod := 1
	for i := range dims {
		dims[i] = given[i]
		if dims[i] < 1 {
			return nil, fmt.Errorf("topology: %s grid dimension %d must be positive", kind, dims[i])
		}
		prod *= dims[i]
	}
	if prod != routers {
		return nil, fmt.Errorf("topology: %s grid %v holds %d routers, machine has %d",
			kind, dims, prod, routers)
	}
	return dims, nil
}

// deriveTorusDims factors routers into the most balanced grid: the
// largest divisor at most the d-th root becomes the first dimension,
// recursively. Prime router counts degrade to a ring (×1 dimensions).
func deriveTorusDims(want, routers int) []int {
	if want == 1 {
		return []int{routers}
	}
	root := int(math.Round(math.Pow(float64(routers), 1/float64(want))))
	if root < 1 {
		root = 1
	}
	if root > routers {
		root = routers
	}
	d := 1
	for c := root; c >= 1; c-- {
		if routers%c == 0 {
			d = c
			break
		}
	}
	return append([]int{d}, deriveTorusDims(want-1, routers/d)...)
}

// routerOf returns the router of node n.
func (t *torus) routerOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.cfg.NodesPerRouter
}

func (t *torus) Hops(a, b int) int {
	ra, rb := t.routerOf(a), t.routerOf(b)
	hops := 0
	for _, size := range t.dims {
		ca, cb := ra%size, rb%size
		ra, rb = ra/size, rb/size
		d := ca - cb
		if d < 0 {
			d = -d
		}
		if wrap := size - d; wrap < d {
			d = wrap
		}
		hops += d
	}
	return hops
}

func (t *torus) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.Hops(from, to))
}

// DistanceClass: 0 local, 1+hops otherwise (latency is affine in hops).
func (t *torus) DistanceClass(from, to int) int {
	if from == to {
		return 0
	}
	return 1 + t.Hops(from, to)
}

func (t *torus) NumDistanceClasses() int { return t.maxHops + 2 }
