package topology

import (
	"fmt"
	"math"
)

// dragonfly is a dragonfly network: routers are partitioned into groups,
// every group is internally all-to-all (one cheap local link between any
// two routers of a group), and every pair of groups is joined by exactly
// one long global link. The global link between groups g1 and g2
// attaches at local router index g2 mod size(g1) inside g1 and
// g1 mod size(g2) inside g2 — a deterministic symmetric assignment.
//
// Routing is minimal-latency over the actual link graph: each local hop
// costs HopLatency, each global hop costs GlobalHopLatency (default
// 3×HopLatency), and the route between two routers is the cheapest path
// (ties broken toward fewer links, then fewer global links). Hops() is
// the plain shortest-path link count, which makes it a genuine graph
// metric — gateway placement can make an indirect two-global route
// shorter in links than the canonical local-global-local route, and a
// formula that ignored that would violate the triangle inequality the
// axiom suite checks.
type dragonfly struct {
	base
	groupRouters int // routers per full group (last group may be partial)
	groups       int
	globalNs     float64 // latency of one global hop

	// Per ordered router pair (r1*routers + r2):
	hops    []int16 // shortest-path link count
	locals  []int16 // local links on the min-latency path
	globals []int16 // global links on the min-latency path
	classes []int32 // distance class (≥1; 0 is reserved for local pairs)

	numClasses int
}

func newDragonfly(cfg Config) (Network, error) {
	nodes, routers, err := shapeOf(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.GlobalHopLatency < 0 {
		return nil, fmt.Errorf("topology: global hop latency must be non-negative, got %g", cfg.GlobalHopLatency)
	}
	if cfg.GlobalHopLatency != 0 && cfg.GlobalHopLatency < cfg.HopLatency {
		// A global link cheaper than a local link would make remote reads
		// faster than nearer ones (latency no longer monotone in hops).
		return nil, fmt.Errorf("topology: dragonfly global hop latency %g below local hop latency %g",
			cfg.GlobalHopLatency, cfg.HopLatency)
	}
	gr := cfg.DragonflyGroupRouters
	if gr == 0 {
		gr = int(math.Ceil(math.Sqrt(float64(routers))))
	}
	if gr < 1 || gr > routers {
		return nil, fmt.Errorf("topology: dragonfly group size %d out of range [1,%d] for %d routers",
			cfg.DragonflyGroupRouters, routers, routers)
	}
	globalNs := cfg.GlobalHopLatency
	if globalNs == 0 {
		globalNs = 3 * cfg.HopLatency
	}
	t := &dragonfly{
		base:         base{cfg: cfg, kind: KindDragonfly, nodes: nodes, routers: routers},
		groupRouters: gr,
		groups:       (routers + gr - 1) / gr,
		globalNs:     globalNs,
	}
	t.computeRoutes()
	t.finalize(t)
	return t, nil
}

// dragonflyEdge is one undirected link of the router graph.
type dragonflyEdge struct {
	a, b   int
	global bool
}

// groupSize returns the router count of group g (the last group may be
// partial).
func (t *dragonfly) groupSize(g int) int {
	if g == t.groups-1 {
		return t.routers - g*t.groupRouters
	}
	return t.groupRouters
}

// edges builds the link list: all-to-all within each group, one global
// link per group pair, attached at the deterministic gateway routers.
func (t *dragonfly) edges() []dragonflyEdge {
	var es []dragonflyEdge
	for g := 0; g < t.groups; g++ {
		lo := g * t.groupRouters
		hi := lo + t.groupSize(g)
		for a := lo; a < hi; a++ {
			for b := a + 1; b < hi; b++ {
				es = append(es, dragonflyEdge{a: a, b: b})
			}
		}
	}
	for g1 := 0; g1 < t.groups; g1++ {
		for g2 := g1 + 1; g2 < t.groups; g2++ {
			a := g1*t.groupRouters + g2%t.groupSize(g1)
			b := g2*t.groupRouters + g1%t.groupSize(g2)
			es = append(es, dragonflyEdge{a: a, b: b, global: true})
		}
	}
	return es
}

// computeRoutes fills the per-router-pair hop and min-latency tables and
// assigns distance classes. Bellman–Ford relaxation to a fixpoint is
// exact and cheap here: every minimal route has at most five links
// (local-global-local-global-local), so few rounds converge even on the
// largest simulated machines.
func (t *dragonfly) computeRoutes() {
	r := t.routers
	es := t.edges()
	t.hops = make([]int16, r*r)
	t.locals = make([]int16, r*r)
	t.globals = make([]int16, r*r)
	const inf = int16(math.MaxInt16)
	for i := range t.hops {
		t.hops[i], t.locals[i], t.globals[i] = inf, inf, inf
	}
	// latency comparison for candidate (a locals, b globals): cheaper
	// cost first, then fewer links, then fewer globals. The cost is
	// recomputed from (a, b) in a fixed expression, so equal (a, b) means
	// bit-identical cost everywhere.
	cost := func(a, b int16) float64 {
		return float64(a)*t.cfg.HopLatency + float64(b)*t.globalNs
	}
	better := func(a1, b1, a2, b2 int16) bool {
		c1, c2 := cost(a1, b1), cost(a2, b2)
		if c1 != c2 {
			return c1 < c2
		}
		if a1+b1 != a2+b2 {
			return a1+b1 < a2+b2
		}
		return b1 < b2
	}
	for src := 0; src < r; src++ {
		row := src * r
		t.hops[row+src], t.locals[row+src], t.globals[row+src] = 0, 0, 0
		for changed := true; changed; {
			changed = false
			for _, e := range es {
				for _, d := range [2][2]int{{e.a, e.b}, {e.b, e.a}} {
					from, to := d[0], d[1]
					if t.hops[row+from] == inf {
						continue
					}
					if h := t.hops[row+from] + 1; h < t.hops[row+to] {
						t.hops[row+to] = h
						changed = true
					}
					la, lb := t.locals[row+from], t.globals[row+from]
					if la == inf {
						continue
					}
					if e.global {
						lb++
					} else {
						la++
					}
					if t.locals[row+to] == inf || better(la, lb, t.locals[row+to], t.globals[row+to]) {
						t.locals[row+to], t.globals[row+to] = la, lb
						changed = true
					}
				}
			}
		}
	}
	// Distance classes: one per distinct (hops, locals, globals) triple,
	// assigned in row-major encounter order (deterministic); 0 stays
	// reserved for the from == to node pairs.
	t.classes = make([]int32, r*r)
	type routeShape struct{ h, a, b int16 }
	seen := map[routeShape]int32{}
	for i := range t.classes {
		s := routeShape{t.hops[i], t.locals[i], t.globals[i]}
		id, ok := seen[s]
		if !ok {
			id = int32(len(seen)) + 1
			seen[s] = id
		}
		t.classes[i] = id
	}
	t.numClasses = len(seen) + 1
}

// routerOf returns the router of node n.
func (t *dragonfly) routerOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.cfg.NodesPerRouter
}

func (t *dragonfly) Hops(a, b int) int {
	return int(t.hops[t.routerOf(a)*t.routers+t.routerOf(b)])
}

func (t *dragonfly) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	i := t.routerOf(from)*t.routers + t.routerOf(to)
	return t.cfg.RemoteBaseLatency +
		t.cfg.HopLatency*float64(t.locals[i]) + t.globalNs*float64(t.globals[i])
}

// DistanceClass: 0 local, else the class of the router pair's route
// shape — equal class means an identical (hops, locals, globals) triple
// and hence bit-identical latency.
func (t *dragonfly) DistanceClass(from, to int) int {
	if from == to {
		return 0
	}
	return int(t.classes[t.routerOf(from)*t.routers+t.routerOf(to)])
}

func (t *dragonfly) NumDistanceClasses() int { return t.numClasses }
