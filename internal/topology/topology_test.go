package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// origin64 is the full-size Origin2000 configuration used throughout the
// tests: 64 processors, 2 per node, node pairs on routers, 16-router
// hypercube.
func origin64(t *testing.T) *Topology {
	t.Helper()
	top, err := NewHypercube(Config{
		Processors:        64,
		ProcsPerNode:      2,
		NodesPerRouter:    2,
		LocalLatency:      313,
		HopLatency:        100,
		RemoteBaseLatency: 600,
		LinkBandwidth:     0.8,
	})
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	return top
}

func TestOriginShape(t *testing.T) {
	top := origin64(t)
	if got := top.Nodes(); got != 32 {
		t.Errorf("Nodes() = %d, want 32", got)
	}
	if got := top.Routers(); got != 16 {
		t.Errorf("Routers() = %d, want 16", got)
	}
	if got := top.Dimension(); got != 4 {
		t.Errorf("Dimension() = %d, want 4", got)
	}
	if got := top.Processors(); got != 64 {
		t.Errorf("Processors() = %d, want 64", got)
	}
}

func TestNodeOf(t *testing.T) {
	top := origin64(t)
	cases := []struct{ proc, node int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {62, 31}, {63, 31},
	}
	for _, c := range cases {
		if got := top.NodeOf(c.proc); got != c.node {
			t.Errorf("NodeOf(%d) = %d, want %d", c.proc, got, c.node)
		}
	}
}

func TestRouterOf(t *testing.T) {
	top := origin64(t)
	cases := []struct{ node, router int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {30, 15}, {31, 15},
	}
	for _, c := range cases {
		if got := top.RouterOf(c.node); got != c.router {
			t.Errorf("RouterOf(%d) = %d, want %d", c.node, got, c.router)
		}
	}
}

func TestHopsSameRouter(t *testing.T) {
	top := origin64(t)
	if got := top.Hops(0, 1); got != 0 {
		t.Errorf("Hops(0,1) = %d, want 0 (same router)", got)
	}
	if got := top.Hops(0, 0); got != 0 {
		t.Errorf("Hops(0,0) = %d, want 0", got)
	}
}

func TestHopsHammingDistance(t *testing.T) {
	top := origin64(t)
	// Node 2 is on router 1, node 0 on router 0: routers differ in one bit.
	if got := top.Hops(0, 2); got != 1 {
		t.Errorf("Hops(0,2) = %d, want 1", got)
	}
	// Node 30 is on router 15 (0b1111), node 0 on router 0: 4 bits differ.
	if got := top.Hops(0, 30); got != 4 {
		t.Errorf("Hops(0,30) = %d, want 4", got)
	}
}

func TestHopsSymmetric(t *testing.T) {
	top := origin64(t)
	f := func(a, b uint8) bool {
		na := int(a) % top.Nodes()
		nb := int(b) % top.Nodes()
		return top.Hops(na, nb) == top.Hops(nb, na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	top := origin64(t)
	f := func(a, b, c uint8) bool {
		na := int(a) % top.Nodes()
		nb := int(b) % top.Nodes()
		nc := int(c) % top.Nodes()
		return top.Hops(na, nc) <= top.Hops(na, nb)+top.Hops(nb, nc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsBoundedByDimension(t *testing.T) {
	top := origin64(t)
	for a := 0; a < top.Nodes(); a++ {
		for b := 0; b < top.Nodes(); b++ {
			if h := top.Hops(a, b); h < 0 || h > top.Dimension() {
				t.Fatalf("Hops(%d,%d) = %d outside [0,%d]", a, b, h, top.Dimension())
			}
		}
	}
}

func TestReadLatencyShape(t *testing.T) {
	top := origin64(t)
	local := top.ReadLatency(0, 0)
	if local != 313 {
		t.Errorf("local latency = %v, want 313", local)
	}
	furthest := top.FurthestReadLatency()
	if furthest != 600+4*100 {
		t.Errorf("furthest latency = %v, want 1000", furthest)
	}
	avg := top.AverageReadLatency()
	// The Origin2000 documentation quotes ~796 ns for the average of local
	// and all remote memories on a 64-processor machine. Our calibration
	// should land within 10%.
	if math.Abs(avg-796) > 79.6 {
		t.Errorf("average latency = %v, want within 10%% of 796", avg)
	}
	if !(local < avg && avg < furthest) {
		t.Errorf("want local < average < furthest, got %v, %v, %v", local, avg, furthest)
	}
}

func TestReadLatencyMonotonicInHops(t *testing.T) {
	top := origin64(t)
	for a := 0; a < top.Nodes(); a++ {
		for b := 0; b < top.Nodes(); b++ {
			if a == b {
				continue
			}
			lat := top.ReadLatency(a, b)
			want := 600 + 100*float64(top.Hops(a, b))
			if lat != want {
				t.Fatalf("ReadLatency(%d,%d) = %v, want %v", a, b, lat, want)
			}
		}
	}
}

func TestTransferTime(t *testing.T) {
	top := origin64(t)
	if got := top.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
	if got := top.TransferTime(-5); got != 0 {
		t.Errorf("TransferTime(-5) = %v, want 0", got)
	}
	// 800 bytes at 0.8 bytes/ns = 1000 ns.
	if got := top.TransferTime(800); got != 1000 {
		t.Errorf("TransferTime(800) = %v, want 1000", got)
	}
}

func TestTransferTimeAdditive(t *testing.T) {
	top := origin64(t)
	f := func(a, b uint16) bool {
		sum := top.TransferTime(int(a)) + top.TransferTime(int(b))
		joint := top.TransferTime(int(a) + int(b))
		return math.Abs(sum-joint) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	base := Config{
		Processors: 64, ProcsPerNode: 2, NodesPerRouter: 2,
		LocalLatency: 313, HopLatency: 100, RemoteBaseLatency: 600, LinkBandwidth: 0.8,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero processors", func(c *Config) { c.Processors = 0 }},
		{"negative processors", func(c *Config) { c.Processors = -4 }},
		{"zero procs per node", func(c *Config) { c.ProcsPerNode = 0 }},
		{"zero nodes per router", func(c *Config) { c.NodesPerRouter = 0 }},
		{"non-multiple", func(c *Config) { c.Processors = 63 }},
		{"non-power-of-two routers", func(c *Config) { c.Processors = 24 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted invalid config %+v", cfg)
			}
		})
	}
}

func TestSmallMachines(t *testing.T) {
	// Single node machine: everything is local, zero hops.
	top, err := NewHypercube(Config{
		Processors: 2, ProcsPerNode: 2, NodesPerRouter: 2,
		LocalLatency: 313, HopLatency: 100, RemoteBaseLatency: 600, LinkBandwidth: 0.8,
	})
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	if top.Nodes() != 1 || top.Routers() != 1 || top.Dimension() != 0 {
		t.Errorf("single-node shape wrong: nodes=%d routers=%d dim=%d",
			top.Nodes(), top.Routers(), top.Dimension())
	}
	if got := top.FurthestReadLatency(); got != 313 {
		t.Errorf("single-node furthest latency = %v, want local 313", got)
	}
}

func TestNodeOfPanicsOutOfRange(t *testing.T) {
	top := origin64(t)
	for _, p := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOf(%d) did not panic", p)
				}
			}()
			top.NodeOf(p)
		}()
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}
