package topology

import "fmt"

// numa2 is a two-tier chiplet NUMA: nodes are grouped into packages, a
// read inside a package pays only the cheap on-package interconnect
// (RemoteBaseLatency), and a read crossing packages additionally pays
// one expensive off-package link (GlobalHopLatency, default
// 6×HopLatency). The "routers" of this shape are the packages
// themselves; HopLatency only sets the inter-package default.
type numa2 struct {
	base
	pkgNodes int // nodes per package
	globalNs float64
}

func newNUMA2(cfg Config) (Network, error) {
	nodes, _, err := shapeOf(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.GlobalHopLatency < 0 {
		return nil, fmt.Errorf("topology: global hop latency must be non-negative, got %g", cfg.GlobalHopLatency)
	}
	pn := cfg.PackageNodes
	if pn == 0 {
		pn = (nodes + 3) / 4
	}
	if pn < 1 || pn > nodes {
		return nil, fmt.Errorf("topology: numa2 package size %d out of range [1,%d] for %d nodes",
			cfg.PackageNodes, nodes, nodes)
	}
	globalNs := cfg.GlobalHopLatency
	if globalNs == 0 {
		globalNs = 6 * cfg.HopLatency
	}
	packages := (nodes + pn - 1) / pn
	t := &numa2{
		base:     base{cfg: cfg, kind: KindNUMA2, nodes: nodes, routers: packages},
		pkgNodes: pn,
		globalNs: globalNs,
	}
	t.finalize(t)
	return t, nil
}

// packageOf returns the package housing node n.
func (t *numa2) packageOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.pkgNodes
}

// Hops: 0 within a package, 1 across (one off-package link).
func (t *numa2) Hops(a, b int) int {
	if t.packageOf(a) == t.packageOf(b) {
		return 0
	}
	return 1
}

func (t *numa2) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	if t.packageOf(from) == t.packageOf(to) {
		return t.cfg.RemoteBaseLatency
	}
	return t.cfg.RemoteBaseLatency + t.globalNs
}

// DistanceClass: 0 local, 1 on-package remote, 2 off-package.
func (t *numa2) DistanceClass(from, to int) int {
	if from == to {
		return 0
	}
	if t.packageOf(from) == t.packageOf(to) {
		return 1
	}
	return 2
}

func (t *numa2) NumDistanceClasses() int { return 3 }
