package topology

import (
	"math/rand"
	"strings"
	"testing"
)

// testNetConfig is the Origin2000 parameter set reshaped onto an
// arbitrary network kind — the configuration the axiom suite and the
// fuzz target build everything from.
func testNetConfig(kind string, procs int) Config {
	return Config{
		Kind:              kind,
		Processors:        procs,
		ProcsPerNode:      2,
		NodesPerRouter:    2,
		LocalLatency:      313,
		HopLatency:        100,
		RemoteBaseLatency: 600,
		LinkBandwidth:     0.8,
	}
}

// axiomSizes returns processor counts that the kind accepts: the
// hypercube needs a power-of-two router count, the other shapes are
// exercised on ragged sizes too (including ≥128 simulated procs).
func axiomSizes(kind string) []int {
	if kind == KindHypercube {
		return []int{2, 4, 8, 64, 128, 256}
	}
	return []int{2, 6, 24, 52, 64, 128, 250, 1024}
}

// TestNetworkMetricAxioms checks the metric axioms every Network must
// satisfy, across all registered kinds and a spread of machine sizes:
// zero self-distance, hop symmetry, the triangle inequality over
// routers, latency symmetry, and latency monotone in hops.
func TestNetworkMetricAxioms(t *testing.T) {
	for _, kind := range Kinds() {
		for _, procs := range axiomSizes(kind) {
			kind, procs := kind, procs
			t.Run(kind+"/"+itoa(procs), func(t *testing.T) {
				t.Parallel()
				net, err := New(testNetConfig(kind, procs))
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				checkMetricAxioms(t, net)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func checkMetricAxioms(t *testing.T, net Network) {
	t.Helper()
	n := net.Nodes()
	if got := net.NodeOf(0); got != 0 {
		t.Errorf("NodeOf(0) = %d, want 0", got)
	}
	if got := net.NodeOf(net.Processors() - 1); got != n-1 {
		t.Errorf("NodeOf(last proc) = %d, want %d", got, n-1)
	}
	if net.Routers() < 1 || net.Routers() > n {
		t.Errorf("Routers() = %d outside [1,%d]", net.Routers(), n)
	}

	// Hop-indexed latency extremes for the monotonicity check, plus
	// running max/avg for the summary-statistic checks.
	minLat := map[int]float64{}
	maxLat := map[int]float64{}
	maxHops, furthest, total := 0, 0.0, 0.0
	for a := 0; a < n; a++ {
		row := 0.0
		for b := 0; b < n; b++ {
			h := net.Hops(a, b)
			if h < 0 {
				t.Fatalf("Hops(%d,%d) = %d negative", a, b, h)
			}
			if a == b && h != 0 {
				t.Fatalf("Hops(%d,%d) = %d, want 0 self-distance", a, b, h)
			}
			if hr := net.Hops(b, a); hr != h {
				t.Fatalf("Hops asymmetric: (%d,%d)=%d, (%d,%d)=%d", a, b, h, b, a, hr)
			}
			lat := net.ReadLatency(a, b)
			if lr := net.ReadLatency(b, a); lr != lat {
				t.Fatalf("ReadLatency asymmetric: (%d,%d)=%v, (%d,%d)=%v", a, b, lat, b, a, lr)
			}
			if lat <= 0 {
				t.Fatalf("ReadLatency(%d,%d) = %v not positive", a, b, lat)
			}
			if cur, ok := minLat[h]; !ok || lat < cur {
				minLat[h] = lat
			}
			if lat > maxLat[h] {
				maxLat[h] = lat
			}
			if h > maxHops {
				maxHops = h
			}
			if lat > furthest {
				furthest = lat
			}
			row += lat

			cls := net.DistanceClass(a, b)
			if cls < 0 || cls >= net.NumDistanceClasses() {
				t.Fatalf("DistanceClass(%d,%d) = %d outside [0,%d)", a, b, cls, net.NumDistanceClasses())
			}
			if (cls == 0) != (a == b) {
				t.Fatalf("DistanceClass(%d,%d) = %d; class 0 must be exactly the local pairs", a, b, cls)
			}
			if cr := net.DistanceClass(b, a); cr != cls {
				t.Fatalf("DistanceClass asymmetric: (%d,%d)=%d, (%d,%d)=%d", a, b, cls, b, a, cr)
			}
		}
		total += row
	}

	// Latency monotone in hops: every pair at a strictly larger hop count
	// is at least as expensive as every pair at a smaller one.
	for h1, mx := range maxLat {
		for h2, mn := range minLat {
			if h1 < h2 && mx > mn {
				t.Errorf("latency not monotone in hops: max lat at %d hops = %v > min lat at %d hops = %v",
					h1, mx, h2, mn)
			}
		}
	}

	if got := net.MaxHops(); got != maxHops {
		t.Errorf("MaxHops() = %d, want observed %d", got, maxHops)
	}
	if got := net.FurthestReadLatency(); got != furthest {
		t.Errorf("FurthestReadLatency() = %v, want observed %v", got, furthest)
	}
	if got, want := net.AverageReadLatency(), total/float64(n*n); got != want {
		// The symmetric hypercube fast path sums a single row in the
		// historical order, which is an exact mean but a different
		// addition order; allow only that rounding-level slack.
		if diff := got - want; diff > 1e-9*want || diff < -1e-9*want {
			t.Errorf("AverageReadLatency() = %v, want all-pairs mean %v", got, want)
		}
	}

	// Triangle inequality over routers: exhaustive on small machines,
	// seeded-random sampling on large ones.
	check := func(a, b, c int) {
		if net.Hops(a, c) > net.Hops(a, b)+net.Hops(b, c) {
			t.Fatalf("triangle inequality violated: Hops(%d,%d)=%d > Hops(%d,%d)=%d + Hops(%d,%d)=%d",
				a, c, net.Hops(a, c), a, b, net.Hops(a, b), b, c, net.Hops(b, c))
		}
	}
	if n <= 24 {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					check(a, b, c)
				}
			}
		}
	} else {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20000; i++ {
			check(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
	}

	// Distance classes partition the pairs into bit-identical latencies:
	// every pair of a class must have the same latency and hop count.
	classLat := map[int]float64{}
	classHops := map[int]int{}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			cls := net.DistanceClass(a, b)
			lat, h := net.ReadLatency(a, b), net.Hops(a, b)
			if prev, ok := classLat[cls]; ok {
				if prev != lat {
					t.Fatalf("class %d has two latencies: %v and %v at (%d,%d)", cls, prev, lat, a, b)
				}
				if classHops[cls] != h {
					t.Fatalf("class %d has two hop counts: %d and %d at (%d,%d)", cls, classHops[cls], h, a, b)
				}
			} else {
				classLat[cls], classHops[cls] = lat, h
			}
		}
	}
}

// TestAverageReadLatencyAsymmetric is the regression for the node-0
// shortcut bug: on a machine whose last router carries fewer nodes the
// latency rows differ per node, so the historical "average from node 0"
// is not the all-pairs mean. 6 processors at 2 per node put 3 nodes on
// 2 routers (a legal power-of-two hypercube): node 0 shares its router
// with node 1 only, node 2 sits alone, and the two row means disagree.
func TestAverageReadLatencyAsymmetric(t *testing.T) {
	top, err := NewHypercube(testNetConfig(KindHypercube, 6))
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	if top.Nodes() != 3 || top.Routers() != 2 {
		t.Fatalf("unexpected shape: %d nodes on %d routers", top.Nodes(), top.Routers())
	}
	node0 := 0.0
	for b := 0; b < top.Nodes(); b++ {
		node0 += top.ReadLatency(0, b)
	}
	node0 /= float64(top.Nodes())
	want := 0.0
	for a := 0; a < top.Nodes(); a++ {
		for b := 0; b < top.Nodes(); b++ {
			want += top.ReadLatency(a, b)
		}
	}
	want /= float64(top.Nodes() * top.Nodes())
	if node0 == want {
		t.Fatalf("test network not asymmetric: node-0 mean == all-pairs mean == %v", want)
	}
	if got := top.AverageReadLatency(); got != want {
		t.Errorf("AverageReadLatency() = %v, want all-pairs mean %v (node-0 shortcut gives %v)",
			got, want, node0)
	}
}

// TestPerKindValidation checks that each network kind rejects exactly
// its own malformed configurations, with errors that name the problem.
func TestPerKindValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"unknown kind", func(c *Config) { c.Kind = "moebius" }, "unknown kind"},
		{"hypercube non-power-of-two routers", func(c *Config) { c.Kind = KindHypercube; c.Processors = 24 }, "power of two"},
		{"fattree arity too large", func(c *Config) { c.Kind = KindFatTree; c.FatTreeArity = 99 }, "arity"},
		{"fattree negative arity", func(c *Config) { c.Kind = KindFatTree; c.FatTreeArity = -1 }, "arity"},
		{"torus grid mismatch", func(c *Config) { c.Kind = KindTorus; c.TorusWidth = 3; c.TorusHeight = 3 }, "routers"},
		{"torus partial grid", func(c *Config) { c.Kind = KindTorus; c.TorusWidth = 4 }, "dimensions"},
		{"torus depth on 2D", func(c *Config) { c.Kind = KindTorus; c.TorusDepth = 2 }, "depth"},
		{"torus3d grid mismatch", func(c *Config) {
			c.Kind = KindTorus3D
			c.TorusWidth, c.TorusHeight, c.TorusDepth = 3, 2, 2
		}, "routers"},
		{"dragonfly group too large", func(c *Config) { c.Kind = KindDragonfly; c.DragonflyGroupRouters = 99 }, "group size"},
		{"dragonfly cheap global link", func(c *Config) { c.Kind = KindDragonfly; c.GlobalHopLatency = 50 }, "below local hop latency"},
		{"dragonfly negative global", func(c *Config) { c.Kind = KindDragonfly; c.GlobalHopLatency = -1 }, "non-negative"},
		{"numa2 package too large", func(c *Config) { c.Kind = KindNUMA2; c.PackageNodes = 99 }, "package size"},
		{"numa2 negative package", func(c *Config) { c.Kind = KindNUMA2; c.PackageNodes = -2 }, "package size"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testNetConfig("", 32)
			c.mutate(&cfg)
			_, err := New(cfg)
			if err == nil {
				t.Fatalf("New accepted invalid config %+v", cfg)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestKindsRegistry pins the registered kind names the CLI flags and
// simd validation advertise.
func TestKindsRegistry(t *testing.T) {
	want := []string{KindDragonfly, KindFatTree, KindHypercube, KindNUMA2, KindTorus, KindTorus3D}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
	for _, k := range want {
		if _, err := New(testNetConfig(k, 64)); err != nil {
			t.Errorf("New(%s, 64 procs): %v", k, err)
		}
	}
}

// TestDefaultKindIsHypercube: an empty Kind must build the bit-for-bit
// Origin2000 hypercube.
func TestDefaultKindIsHypercube(t *testing.T) {
	net, err := New(testNetConfig("", 64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if net.Kind() != KindHypercube {
		t.Fatalf("default kind = %q, want %q", net.Kind(), KindHypercube)
	}
	if _, ok := net.(*Topology); !ok {
		t.Fatalf("default network is %T, want *Topology", net)
	}
}
