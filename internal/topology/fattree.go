package topology

import (
	"fmt"
	"math"
)

// fatTree is a k-ary fat-tree (folded Clos): each router is a leaf
// switch, leaves are grouped into pods of FatTreeArity under an
// aggregation layer, and pods meet at a core layer. With full bisection
// bandwidth the route between two leaves is the canonical up*/down*
// path, so the hop count depends only on how much of the tree the pair
// shares:
//
//	same leaf   0 hops
//	same pod    2 hops (leaf → aggregation → leaf)
//	cross-pod   4 hops (leaf → aggregation → core → aggregation → leaf)
type fatTree struct {
	base
	arity int // leaves per pod
	pods  int
}

func newFatTree(cfg Config) (Network, error) {
	nodes, routers, err := shapeOf(cfg)
	if err != nil {
		return nil, err
	}
	arity := cfg.FatTreeArity
	if arity == 0 {
		arity = int(math.Ceil(math.Sqrt(float64(routers))))
	}
	if arity < 1 || arity > routers {
		return nil, fmt.Errorf("topology: fat-tree arity %d out of range [1,%d] for %d leaf switches",
			cfg.FatTreeArity, routers, routers)
	}
	t := &fatTree{
		base:  base{cfg: cfg, kind: KindFatTree, nodes: nodes, routers: routers},
		arity: arity,
		pods:  (routers + arity - 1) / arity,
	}
	t.finalize(t)
	return t, nil
}

// leafOf returns the leaf switch of node n.
func (t *fatTree) leafOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.cfg.NodesPerRouter
}

func (t *fatTree) Hops(a, b int) int {
	la, lb := t.leafOf(a), t.leafOf(b)
	switch {
	case la == lb:
		return 0
	case la/t.arity == lb/t.arity:
		return 2
	default:
		return 4
	}
}

func (t *fatTree) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.Hops(from, to))
}

// DistanceClass: 0 local, 1 same leaf, 2 same pod, 3 cross-pod.
func (t *fatTree) DistanceClass(from, to int) int {
	if from == to {
		return 0
	}
	return 1 + t.Hops(from, to)/2
}

func (t *fatTree) NumDistanceClasses() int { return 4 }
