package topology

import "testing"

// FuzzNetworkMetrics explores random (kind, machine size, node pair)
// tuples and holds every constructed network to the pointwise metric
// contracts: symmetry of hops, latency, and distance class; zero
// self-distance; positive latency; class 0 exactly on local pairs; and
// agreement of the summary statistics with the pair being probed.
// Invalid configurations must be rejected by New, never panic.
func FuzzNetworkMetrics(f *testing.F) {
	f.Add(uint8(0), uint16(64), uint16(0), uint16(31))
	f.Add(uint8(1), uint16(52), uint16(3), uint16(17))
	f.Add(uint8(2), uint16(24), uint16(1), uint16(11))
	f.Add(uint8(3), uint16(250), uint16(7), uint16(99))
	f.Add(uint8(4), uint16(1024), uint16(511), uint16(0))
	f.Add(uint8(5), uint16(6), uint16(0), uint16(2))
	f.Fuzz(func(t *testing.T, kindSel uint8, procs, pa, pb uint16) {
		kinds := Kinds()
		cfg := testNetConfig(kinds[int(kindSel)%len(kinds)], 1+int(procs)%2048)
		net, err := New(cfg)
		if err != nil {
			return // invalid size for this kind (e.g. odd procs, non-power-of-two hypercube)
		}
		n := net.Nodes()
		a, b := int(pa)%n, int(pb)%n
		h := net.Hops(a, b)
		if h != net.Hops(b, a) {
			t.Fatalf("%s: Hops(%d,%d)=%d != Hops(%d,%d)=%d", net.Kind(), a, b, h, b, a, net.Hops(b, a))
		}
		if h < 0 || h > net.MaxHops() {
			t.Fatalf("%s: Hops(%d,%d)=%d outside [0,%d]", net.Kind(), a, b, h, net.MaxHops())
		}
		if a == b && h != 0 {
			t.Fatalf("%s: self-distance Hops(%d,%d)=%d", net.Kind(), a, b, h)
		}
		lat := net.ReadLatency(a, b)
		if lat != net.ReadLatency(b, a) {
			t.Fatalf("%s: ReadLatency(%d,%d)=%v != ReadLatency(%d,%d)=%v",
				net.Kind(), a, b, lat, b, a, net.ReadLatency(b, a))
		}
		if lat <= 0 || lat > net.FurthestReadLatency() {
			t.Fatalf("%s: ReadLatency(%d,%d)=%v outside (0,%v]",
				net.Kind(), a, b, lat, net.FurthestReadLatency())
		}
		cls := net.DistanceClass(a, b)
		if cls != net.DistanceClass(b, a) {
			t.Fatalf("%s: DistanceClass(%d,%d)=%d != DistanceClass(%d,%d)=%d",
				net.Kind(), a, b, cls, b, a, net.DistanceClass(b, a))
		}
		if cls < 0 || cls >= net.NumDistanceClasses() {
			t.Fatalf("%s: DistanceClass(%d,%d)=%d outside [0,%d)",
				net.Kind(), a, b, cls, net.NumDistanceClasses())
		}
		if (cls == 0) != (a == b) {
			t.Fatalf("%s: DistanceClass(%d,%d)=%d; class 0 must be exactly local pairs",
				net.Kind(), a, b, cls)
		}
		if avg := net.AverageReadLatency(); avg < net.LocalLatency() || avg > net.FurthestReadLatency() {
			t.Fatalf("%s: AverageReadLatency()=%v outside [%v,%v]",
				net.Kind(), avg, net.LocalLatency(), net.FurthestReadLatency())
		}
	})
}
