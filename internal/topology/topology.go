// Package topology models the interconnect of a cache-coherent DSM
// machine: processors grouped into nodes, nodes attached to routers, and
// routers wired into one of several network shapes. The default shape is
// the SGI Origin2000's binary hypercube; a k-ary fat-tree, 2D/3D tori, a
// dragonfly, and a two-tier chiplet NUMA are available for the
// beyond-paper scale studies (DESIGN.md §12).
//
// The package is purely combinatorial and deterministic. It answers
// questions such as "how many router hops separate processor 12's node
// from the home node of this page?" and converts hop counts into
// uncontended latencies using the machine's latency parameters.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Kind names of the built-in network shapes, usable in Config.Kind.
const (
	// KindHypercube is the Origin2000 binary hypercube (the default).
	KindHypercube = "hypercube"
	// KindFatTree is a k-ary fat-tree: leaf switches grouped into pods
	// under aggregation switches, pods joined by a core layer.
	KindFatTree = "fattree"
	// KindTorus is a 2D torus (routers on a wrap-around grid).
	KindTorus = "torus"
	// KindTorus3D is a 3D torus.
	KindTorus3D = "torus3d"
	// KindDragonfly is a dragonfly: all-to-all router groups joined by
	// long global links.
	KindDragonfly = "dragonfly"
	// KindNUMA2 is a two-tier chiplet NUMA: packages of nodes with cheap
	// intra-package and expensive inter-package links.
	KindNUMA2 = "numa2"
)

// Config describes the physical organization of the machine. It is a
// pure value (no slices or maps), so machine configurations built from
// it stay comparable and JSON-canonical.
type Config struct {
	// Kind selects the network shape by registered name ("" selects
	// KindHypercube). See New.
	Kind string

	// Processors is the total processor count. It must be a positive
	// multiple of ProcsPerNode.
	Processors int
	// ProcsPerNode is the number of processors sharing a node (and its
	// memory). The Origin2000 packages 2 processors per node.
	ProcsPerNode int
	// NodesPerRouter is the number of nodes attached to one router.
	// The Origin2000 attaches each pair of nodes to a router.
	NodesPerRouter int

	// LocalLatency is the uncontended latency of a read satisfied by the
	// local node's memory (nanoseconds). 313 ns on the Origin2000.
	LocalLatency float64
	// HopLatency is the additional latency per router hop (nanoseconds).
	// About 100 ns on the Origin2000.
	HopLatency float64
	// RemoteBaseLatency is the uncontended latency of a read satisfied by
	// a remote node reached through zero intervening router hops beyond
	// the first router (nanoseconds). Calibrated so that the average and
	// furthest remote latencies land near the Origin2000's published
	// 796 ns and 1010 ns.
	RemoteBaseLatency float64
	// LinkBandwidth is the peak point-to-point bandwidth between nodes in
	// bytes per nanosecond (1.6 GB/s total both directions on the
	// Origin2000, i.e. 0.8 GB/s per direction = 0.8 bytes/ns).
	LinkBandwidth float64

	// GlobalHopLatency is the extra latency of one long link: a dragonfly
	// global link, or a two-tier NUMA inter-package link (nanoseconds).
	// Zero selects the kind's default (3×HopLatency for the dragonfly,
	// 6×HopLatency for numa2). Ignored by the other kinds.
	GlobalHopLatency float64
	// FatTreeArity is the number of leaf switches per fat-tree pod.
	// Zero derives ⌈√leaves⌉. Ignored by the other kinds.
	FatTreeArity int
	// TorusWidth/TorusHeight/TorusDepth give the router grid of a torus.
	// For KindTorus, Width×Height must equal the router count (Depth must
	// be zero); for KindTorus3D, Width×Height×Depth must. Zeros derive a
	// near-square (near-cubic) factorization. Ignored by the other kinds.
	TorusWidth  int
	TorusHeight int
	TorusDepth  int
	// DragonflyGroupRouters is the number of routers per dragonfly group.
	// Zero derives ⌈√routers⌉. Ignored by the other kinds.
	DragonflyGroupRouters int
	// PackageNodes is the number of nodes per numa2 package. Zero derives
	// ⌈nodes/4⌉ (four chiplet packages). Ignored by the other kinds.
	PackageNodes int
}

// Network is an immutable view of one machine interconnect. All
// implementations are deterministic pure functions of their Config.
//
// Two properties are contracts the pricing layer depends on
// (DESIGN.md §12):
//
//   - ReadLatency is symmetric: ReadLatency(a, b) == ReadLatency(b, a)
//     bit-for-bit, for every node pair.
//   - ReadLatency and Hops are exact functions of DistanceClass: every
//     node pair in one distance class has bit-identical latency and
//     equal hop count, and class 0 is exactly the local (a == a) pairs.
//
// TestDistanceClassInvariants enforces both across every registered kind.
type Network interface {
	// Kind is the registered name of the network's shape.
	Kind() string
	// Config returns the configuration the network was built from.
	Config() Config
	// Processors returns the total processor count.
	Processors() int
	// Nodes returns the number of memory nodes.
	Nodes() int
	// Routers returns the number of routers (switches).
	Routers() int
	// NodeOf returns the node housing processor p.
	NodeOf(p int) int
	// Hops returns the number of router-to-router hops between the
	// routers of nodes a and b (0 for nodes sharing a router).
	Hops(a, b int) int
	// MaxHops returns the largest hop count between any two nodes.
	MaxHops() int
	// LocalLatency returns the uncontended latency (ns) of a read
	// satisfied by the local node's memory.
	LocalLatency() float64
	// ReadLatency returns the uncontended latency (ns) for a processor on
	// node from to read the first word of a line homed on node to.
	ReadLatency(from, to int) float64
	// FurthestReadLatency returns the uncontended latency to the furthest
	// memory.
	FurthestReadLatency() float64
	// AverageReadLatency returns the exact mean uncontended read latency
	// over all ordered (from, to) node pairs, local pairs included.
	AverageReadLatency() float64
	// TransferTime returns the time (ns) to stream size bytes across one
	// link at peak bandwidth, excluding per-transaction latency.
	TransferTime(size int) float64
	// DistanceClass maps a node pair to its distance class in
	// [0, NumDistanceClasses): an index such that every pair of the class
	// has bit-identical ReadLatency. Class 0 is the local (from == to)
	// pairs. The pricing tables are memoized per class, not per pair, so
	// the memo stays O(classes) at any machine size.
	DistanceClass(from, to int) int
	// NumDistanceClasses returns the number of distance classes. Not
	// every class below the bound need be inhabited.
	NumDistanceClasses() int
}

// Builder constructs one network kind from a configuration.
type Builder func(Config) (Network, error)

// builders is the kind registry. Built-in kinds register here; Register
// adds external ones.
var builders = map[string]Builder{
	KindHypercube: func(cfg Config) (Network, error) { return NewHypercube(cfg) },
	KindFatTree:   newFatTree,
	KindTorus:     newTorus2D,
	KindTorus3D:   newTorus3D,
	KindDragonfly: newDragonfly,
	KindNUMA2:     newNUMA2,
}

// Register adds a network kind under a name. It panics on an empty name
// or a duplicate: registration races are programming errors, caught at
// init time.
func Register(kind string, build Builder) {
	if kind == "" || build == nil {
		panic("topology: Register needs a non-empty kind and a builder")
	}
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("topology: kind %q registered twice", kind))
	}
	builders[kind] = build
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New validates cfg and builds the network of cfg.Kind ("" selects the
// hypercube). Validation is per kind: only the hypercube requires a
// power-of-two router count, each other shape checks exactly the
// constraints it needs.
func New(cfg Config) (Network, error) {
	kind := cfg.Kind
	if kind == "" {
		kind = KindHypercube
	}
	build, ok := builders[kind]
	if !ok {
		return nil, fmt.Errorf("topology: unknown kind %q (known: %s)",
			cfg.Kind, strings.Join(Kinds(), ", "))
	}
	return build(cfg)
}

// MustNew is New but panics on configuration errors. It is intended for
// the package-level machine presets, whose parameters are static.
func MustNew(cfg Config) Network {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// shapeOf validates the generic fields every kind shares and returns the
// node and router counts.
func shapeOf(cfg Config) (nodes, routers int, err error) {
	if cfg.Processors <= 0 {
		return 0, 0, fmt.Errorf("topology: processors must be positive, got %d", cfg.Processors)
	}
	if cfg.ProcsPerNode <= 0 {
		return 0, 0, fmt.Errorf("topology: procs per node must be positive, got %d", cfg.ProcsPerNode)
	}
	if cfg.NodesPerRouter <= 0 {
		return 0, 0, fmt.Errorf("topology: nodes per router must be positive, got %d", cfg.NodesPerRouter)
	}
	if cfg.Processors%cfg.ProcsPerNode != 0 {
		return 0, 0, fmt.Errorf("topology: processors (%d) not a multiple of procs per node (%d)",
			cfg.Processors, cfg.ProcsPerNode)
	}
	nodes = cfg.Processors / cfg.ProcsPerNode
	routers = (nodes + cfg.NodesPerRouter - 1) / cfg.NodesPerRouter
	return nodes, routers, nil
}

// base carries the state and methods every Network implementation
// shares: the configuration, node mapping, link arithmetic, and the
// distance statistics computed once at construction by finalize.
type base struct {
	cfg     Config
	kind    string
	nodes   int
	routers int

	maxHops  int
	furthest float64
	average  float64
}

func (b *base) Kind() string          { return b.kind }
func (b *base) Config() Config        { return b.cfg }
func (b *base) Processors() int       { return b.cfg.Processors }
func (b *base) Nodes() int            { return b.nodes }
func (b *base) Routers() int          { return b.routers }
func (b *base) LocalLatency() float64 { return b.cfg.LocalLatency }
func (b *base) MaxHops() int          { return b.maxHops }

// NodeOf returns the node housing processor p.
func (b *base) NodeOf(p int) int {
	if p < 0 || p >= b.cfg.Processors {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", p, b.cfg.Processors))
	}
	return p / b.cfg.ProcsPerNode
}

// FurthestReadLatency returns the uncontended latency to the furthest
// memory.
func (b *base) FurthestReadLatency() float64 { return b.furthest }

// AverageReadLatency returns the exact all-pairs mean uncontended read
// latency, precomputed at construction.
func (b *base) AverageReadLatency() float64 { return b.average }

// TransferTime returns the time (ns) to stream size bytes across one
// link at peak bandwidth. Latency is not included; callers add the
// appropriate per-transaction latency separately.
func (b *base) TransferTime(size int) float64 {
	if size <= 0 {
		return 0
	}
	return float64(size) / b.cfg.LinkBandwidth
}

// finalize computes the distance statistics — max hops, furthest read
// latency, and the exact all-pairs mean read latency — by scanning every
// ordered node pair of the finished network. Row sums accumulate before
// the total so the addition order (and hence the stored float) is a
// deterministic function of the shape alone.
func (b *base) finalize(n Network) {
	total := 0.0
	for a := 0; a < b.nodes; a++ {
		row := 0.0
		for v := 0; v < b.nodes; v++ {
			if h := n.Hops(a, v); h > b.maxHops {
				b.maxHops = h
			}
			lat := n.ReadLatency(a, v)
			if lat > b.furthest {
				b.furthest = lat
			}
			row += lat
		}
		total += row
	}
	b.average = total / float64(b.nodes*b.nodes)
}
