// Package topology models the interconnect of an SGI Origin2000-class
// CC-NUMA machine: processors grouped into nodes, nodes paired onto
// routers, and routers wired as a binary hypercube.
//
// The package is purely combinatorial and deterministic. It answers
// questions such as "how many router hops separate processor 12's node
// from the home node of this page?" and converts hop counts into
// uncontended latencies using the machine's latency parameters.
package topology

import "fmt"

// Config describes the physical organization of the machine.
type Config struct {
	// Processors is the total processor count. It must be a positive
	// multiple of ProcsPerNode.
	Processors int
	// ProcsPerNode is the number of processors sharing a node (and its
	// memory). The Origin2000 packages 2 processors per node.
	ProcsPerNode int
	// NodesPerRouter is the number of nodes attached to one router.
	// The Origin2000 attaches each pair of nodes to a router.
	NodesPerRouter int

	// LocalLatency is the uncontended latency of a read satisfied by the
	// local node's memory (nanoseconds). 313 ns on the Origin2000.
	LocalLatency float64
	// HopLatency is the additional latency per router hop (nanoseconds).
	// About 100 ns on the Origin2000.
	HopLatency float64
	// RemoteBaseLatency is the uncontended latency of a read satisfied by
	// a remote node reached through zero intervening router hops beyond
	// the first router (nanoseconds). Calibrated so that the average and
	// furthest remote latencies land near the Origin2000's published
	// 796 ns and 1010 ns.
	RemoteBaseLatency float64
	// LinkBandwidth is the peak point-to-point bandwidth between nodes in
	// bytes per nanosecond (1.6 GB/s total both directions on the
	// Origin2000, i.e. 0.8 GB/s per direction = 0.8 bytes/ns).
	LinkBandwidth float64
}

// Topology is an immutable view of the machine's interconnect.
type Topology struct {
	cfg       Config
	nodes     int
	routers   int
	dimension int // hypercube dimension over routers
}

// New validates cfg and builds the topology.
func New(cfg Config) (*Topology, error) {
	if cfg.Processors <= 0 {
		return nil, fmt.Errorf("topology: processors must be positive, got %d", cfg.Processors)
	}
	if cfg.ProcsPerNode <= 0 {
		return nil, fmt.Errorf("topology: procs per node must be positive, got %d", cfg.ProcsPerNode)
	}
	if cfg.NodesPerRouter <= 0 {
		return nil, fmt.Errorf("topology: nodes per router must be positive, got %d", cfg.NodesPerRouter)
	}
	if cfg.Processors%cfg.ProcsPerNode != 0 {
		return nil, fmt.Errorf("topology: processors (%d) not a multiple of procs per node (%d)",
			cfg.Processors, cfg.ProcsPerNode)
	}
	nodes := cfg.Processors / cfg.ProcsPerNode
	routers := (nodes + cfg.NodesPerRouter - 1) / cfg.NodesPerRouter
	dim := 0
	for 1<<dim < routers {
		dim++
	}
	if 1<<dim != routers {
		return nil, fmt.Errorf("topology: router count %d is not a power of two", routers)
	}
	return &Topology{cfg: cfg, nodes: nodes, routers: routers, dimension: dim}, nil
}

// MustNew is New but panics on configuration errors. It is intended for
// the package-level machine presets, whose parameters are static.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// Processors returns the total processor count.
func (t *Topology) Processors() int { return t.cfg.Processors }

// Nodes returns the number of memory nodes.
func (t *Topology) Nodes() int { return t.nodes }

// Routers returns the number of routers.
func (t *Topology) Routers() int { return t.routers }

// Dimension returns the hypercube dimension across routers.
func (t *Topology) Dimension() int { return t.dimension }

// NodeOf returns the node housing processor p.
func (t *Topology) NodeOf(p int) int {
	if p < 0 || p >= t.cfg.Processors {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", p, t.cfg.Processors))
	}
	return p / t.cfg.ProcsPerNode
}

// RouterOf returns the router to which node n attaches.
func (t *Topology) RouterOf(n int) int {
	if n < 0 || n >= t.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	return n / t.cfg.NodesPerRouter
}

// Hops returns the number of router-to-router hops between the routers of
// nodes a and b. Two nodes on the same router are 0 hops apart; on a
// hypercube the hop count is the Hamming distance between router ids.
func (t *Topology) Hops(a, b int) int {
	ra, rb := t.RouterOf(a), t.RouterOf(b)
	x := uint(ra ^ rb)
	hops := 0
	for x != 0 {
		hops += int(x & 1)
		x >>= 1
	}
	return hops
}

// ReadLatency returns the uncontended latency (ns) for a processor on
// node from to read the first word of a line homed on node to.
func (t *Topology) ReadLatency(from, to int) float64 {
	if from == to {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.Hops(from, to))
}

// MaxHops returns the largest hop count between any two nodes, i.e. the
// hypercube dimension.
func (t *Topology) MaxHops() int { return t.dimension }

// FurthestReadLatency returns the uncontended latency to the furthest
// remote memory.
func (t *Topology) FurthestReadLatency() float64 {
	if t.nodes == 1 {
		return t.cfg.LocalLatency
	}
	return t.cfg.RemoteBaseLatency + t.cfg.HopLatency*float64(t.dimension)
}

// AverageReadLatency returns the mean uncontended read latency over all
// (local and remote) destinations from node 0 — the figure the Origin2000
// documentation quotes as the "average of local and all remote memories".
// By hypercube symmetry the average is the same from every node.
func (t *Topology) AverageReadLatency() float64 {
	sum := 0.0
	for n := 0; n < t.nodes; n++ {
		sum += t.ReadLatency(0, n)
	}
	return sum / float64(t.nodes)
}

// TransferTime returns the time (ns) to stream size bytes across one
// link at peak bandwidth. Latency is not included; callers add the
// appropriate per-transaction latency separately.
func (t *Topology) TransferTime(size int) float64 {
	if size <= 0 {
		return 0
	}
	return float64(size) / t.cfg.LinkBandwidth
}
