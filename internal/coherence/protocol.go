// Package coherence implements a directory-based invalidation protocol
// engine in the style of the SGI Origin2000's coherence protocol.
//
// The engine has two layers:
//
//   - Protocol walks the protocol state machine for one transaction
//     (read, read-exclusive, upgrade, writeback) given the directory
//     state, and returns the network messages exchanged, the critical-path
//     latency, and the new directory state. Latencies come from the
//     machine topology; invalidations fan out in parallel and are gathered
//     as acknowledgements, as on the Origin2000.
//
//   - Directory tracks per-line sharing state so the protocol can be
//     driven transaction-by-transaction; the machine simulator uses it to
//     derive the per-access-class costs it charges, and the unit tests use
//     it to verify protocol invariants (single writer, no stale sharers).
package coherence

import (
	"fmt"

	"repro/internal/topology"
)

// DirState is the directory's view of one line.
type DirState int

const (
	// Unowned means no cache holds the line; memory is up to date.
	Unowned DirState = iota
	// Shared means one or more caches hold read-only copies.
	Shared
	// Exclusive means exactly one cache holds the line, possibly dirty.
	Exclusive
)

// String returns the conventional name of the state.
func (s DirState) String() string {
	switch s {
	case Unowned:
		return "Unowned"
	case Shared:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("DirState(%d)", int(s))
	}
}

// Params sets the protocol's cost constants.
type Params struct {
	// CtrlBytes is the size of a control message (request, intervention,
	// invalidation, acknowledgement) on the wire, including headers.
	CtrlBytes int
	// DataBytes is the size of a data-carrying message: one cache line
	// plus header.
	DataBytes int
	// DirOccupancy is the directory/memory-controller occupancy charged
	// once per transaction at the home node (ns).
	DirOccupancy float64
}

// DefaultParams returns cost constants sized for a 128-byte line machine.
func DefaultParams(lineSize int) Params {
	return Params{
		CtrlBytes:    16,
		DataBytes:    lineSize + 16,
		DirOccupancy: 40,
	}
}

// Protocol prices coherence transactions on a given topology.
type Protocol struct {
	top    topology.Network
	params Params
}

// NewProtocol builds a protocol engine.
func NewProtocol(top topology.Network, params Params) *Protocol {
	return &Protocol{top: top, params: params}
}

// Result describes one priced transaction.
type Result struct {
	// Latency is the critical-path latency in nanoseconds.
	Latency float64
	// Messages is the total number of network messages exchanged.
	Messages int
	// TrafficBytes is the total bytes moved, across all messages.
	TrafficBytes int
	// NewState is the directory state after the transaction.
	NewState DirState
}

// msg prices one network message between two nodes: the topology's
// uncontended point-to-point latency plus wire time for the payload.
func (p *Protocol) msg(from, to, bytes int) float64 {
	lat := p.top.ReadLatency(from, to)
	if from == to {
		// Same-node controller-to-controller traffic: the topology's local
		// latency already covers the memory access; transfers stay on-node.
		lat = p.top.LocalLatency()
	}
	return lat + p.top.TransferTime(bytes)
}

// Read prices a read miss by requester (node id) for a line homed at
// home, given directory state st, current owner (valid for Exclusive),
// and current sharer nodes (valid for Shared).
func (p *Protocol) Read(requester, home, owner int, st DirState, sharers []int) Result {
	switch st {
	case Unowned, Shared:
		// Two-hop: request to home, data reply. The topology latency for
		// (requester, home) already includes the memory access time, so
		// the transaction is one request/response pair plus directory
		// occupancy.
		lat := p.msg(requester, home, p.params.CtrlBytes) +
			p.params.DirOccupancy +
			p.top.TransferTime(p.params.DataBytes)
		newState := Shared
		if st == Unowned {
			// The Origin grants an exclusive (clean) copy to the first
			// reader so a later write by the same processor needs no
			// further traffic.
			newState = Exclusive
		}
		return Result{
			Latency:      lat,
			Messages:     2,
			TrafficBytes: p.params.CtrlBytes + p.params.DataBytes,
			NewState:     newState,
		}
	case Exclusive:
		if owner == requester {
			// Should have hit in cache; price as a local re-fetch.
			return Result{
				Latency:      p.params.DirOccupancy,
				Messages:     0,
				TrafficBytes: 0,
				NewState:     Exclusive,
			}
		}
		// Three-hop: request to home, intervention to owner, data from
		// owner to requester (plus a sharing writeback owner->home off the
		// critical path).
		lat := p.msg(requester, home, p.params.CtrlBytes) +
			p.params.DirOccupancy +
			p.msg(home, owner, p.params.CtrlBytes) +
			p.msg(owner, requester, p.params.DataBytes)
		return Result{
			Latency:      lat,
			Messages:     4,
			TrafficBytes: 2*p.params.CtrlBytes + 2*p.params.DataBytes,
			NewState:     Shared,
		}
	default:
		panic(fmt.Sprintf("coherence: bad directory state %v", st))
	}
}

// Write prices a write miss (read-exclusive) by requester for a line
// homed at home, given directory state st, owner, and sharers.
func (p *Protocol) Write(requester, home, owner int, st DirState, sharers []int) Result {
	switch st {
	case Unowned:
		lat := p.msg(requester, home, p.params.CtrlBytes) +
			p.params.DirOccupancy +
			p.top.TransferTime(p.params.DataBytes)
		return Result{
			Latency:      lat,
			Messages:     2,
			TrafficBytes: p.params.CtrlBytes + p.params.DataBytes,
			NewState:     Exclusive,
		}
	case Shared:
		// Request to home; home sends data to requester and invalidations
		// to all sharers in parallel; sharers ack to the requester. The
		// critical path is the request plus the slower of the data reply
		// and the slowest invalidate/ack chain.
		reqLat := p.msg(requester, home, p.params.CtrlBytes) + p.params.DirOccupancy
		dataLat := p.top.TransferTime(p.params.DataBytes)
		invalLat := 0.0
		nInval := 0
		traffic := p.params.CtrlBytes + p.params.DataBytes
		for _, s := range sharers {
			if s == requester {
				continue
			}
			nInval++
			chain := p.msg(home, s, p.params.CtrlBytes) + p.msg(s, requester, p.params.CtrlBytes)
			if chain > invalLat {
				invalLat = chain
			}
			traffic += 2 * p.params.CtrlBytes
		}
		lat := reqLat + max(dataLat, invalLat)
		return Result{
			Latency:      lat,
			Messages:     2 + 2*nInval,
			TrafficBytes: traffic,
			NewState:     Exclusive,
		}
	case Exclusive:
		if owner == requester {
			return Result{Latency: p.params.DirOccupancy, NewState: Exclusive}
		}
		// Three-hop ownership transfer: request to home, intervention to
		// owner, data+ownership from owner to requester.
		lat := p.msg(requester, home, p.params.CtrlBytes) +
			p.params.DirOccupancy +
			p.msg(home, owner, p.params.CtrlBytes) +
			p.msg(owner, requester, p.params.DataBytes)
		return Result{
			Latency:      lat,
			Messages:     4,
			TrafficBytes: 2*p.params.CtrlBytes + p.params.DataBytes + p.params.CtrlBytes,
			NewState:     Exclusive,
		}
	default:
		panic(fmt.Sprintf("coherence: bad directory state %v", st))
	}
}

// Upgrade prices a write hit on a Shared line held by requester: no data
// transfer, only invalidations of the other sharers.
func (p *Protocol) Upgrade(requester, home int, sharers []int) Result {
	reqLat := p.msg(requester, home, p.params.CtrlBytes) + p.params.DirOccupancy
	invalLat := 0.0
	nInval := 0
	traffic := p.params.CtrlBytes
	for _, s := range sharers {
		if s == requester {
			continue
		}
		nInval++
		chain := p.msg(home, s, p.params.CtrlBytes) + p.msg(s, requester, p.params.CtrlBytes)
		if chain > invalLat {
			invalLat = chain
		}
		traffic += 2 * p.params.CtrlBytes
	}
	// Home's grant to the requester when there are no sharers to await.
	grant := p.top.TransferTime(p.params.CtrlBytes)
	return Result{
		Latency:      reqLat + max(grant, invalLat),
		Messages:     2 + 2*nInval,
		TrafficBytes: traffic + p.params.CtrlBytes,
		NewState:     Exclusive,
	}
}

// Writeback prices a dirty line's eviction from owner back to home.
func (p *Protocol) Writeback(owner, home int) Result {
	lat := p.msg(owner, home, p.params.DataBytes) + p.params.DirOccupancy
	return Result{
		Latency:      lat,
		Messages:     2, // data + ack
		TrafficBytes: p.params.DataBytes + p.params.CtrlBytes,
		NewState:     Unowned,
	}
}
