package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func testTopo(t *testing.T) topology.Network {
	t.Helper()
	top, err := topology.New(topology.Config{
		Processors:        64,
		ProcsPerNode:      2,
		NodesPerRouter:    2,
		LocalLatency:      313,
		HopLatency:        100,
		RemoteBaseLatency: 600,
		LinkBandwidth:     0.8,
	})
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return top
}

func testProto(t *testing.T) *Protocol {
	t.Helper()
	return NewProtocol(testTopo(t), DefaultParams(128))
}

func TestReadUnownedLocal(t *testing.T) {
	p := testProto(t)
	res := p.Read(0, 0, -1, Unowned, nil)
	// Local fill: local latency + occupancy + data wire time.
	want := 313 + 16/0.8 + 40 + 144/0.8
	if !close(res.Latency, want) {
		t.Errorf("latency = %v, want %v", res.Latency, want)
	}
	if res.NewState != Exclusive {
		t.Errorf("new state = %v, want Exclusive (Origin grants exclusive to first reader)", res.NewState)
	}
	if res.Messages != 2 {
		t.Errorf("messages = %d, want 2", res.Messages)
	}
}

func TestReadUnownedRemoteCostsMore(t *testing.T) {
	p := testProto(t)
	local := p.Read(0, 0, -1, Unowned, nil)
	oneHop := p.Read(0, 2, -1, Unowned, nil)   // node 2: router 1, 1 hop
	fourHop := p.Read(0, 30, -1, Unowned, nil) // node 30: router 15, 4 hops
	if !(local.Latency < oneHop.Latency && oneHop.Latency < fourHop.Latency) {
		t.Errorf("latencies not monotone in distance: %v, %v, %v",
			local.Latency, oneHop.Latency, fourHop.Latency)
	}
}

func TestReadDirtyRemoteIsThreeHop(t *testing.T) {
	p := testProto(t)
	// Line homed at node 4, dirty in node 8's cache, read by node 0.
	threeHop := p.Read(0, 4, 8, Exclusive, nil)
	twoHop := p.Read(0, 4, -1, Unowned, nil)
	if threeHop.Latency <= twoHop.Latency {
		t.Errorf("3-hop read (%v) should cost more than 2-hop (%v)",
			threeHop.Latency, twoHop.Latency)
	}
	if threeHop.Messages != 4 {
		t.Errorf("3-hop read messages = %d, want 4", threeHop.Messages)
	}
	if threeHop.NewState != Shared {
		t.Errorf("3-hop read new state = %v, want Shared", threeHop.NewState)
	}
}

func TestReadOwnLineCheap(t *testing.T) {
	p := testProto(t)
	res := p.Read(3, 5, 3, Exclusive, nil)
	if res.Latency != 40 {
		t.Errorf("re-read of own exclusive line latency = %v, want just occupancy 40", res.Latency)
	}
	if res.Messages != 0 {
		t.Errorf("messages = %d, want 0", res.Messages)
	}
}

func TestWriteSharedInvalidations(t *testing.T) {
	p := testProto(t)
	none := p.Write(0, 4, -1, Unowned, nil)
	one := p.Write(0, 4, -1, Shared, []int{9})
	three := p.Write(0, 4, -1, Shared, []int{9, 17, 30})
	if !(none.Latency < one.Latency) {
		t.Errorf("write with 1 invalidation (%v) should cost more than none (%v)",
			one.Latency, none.Latency)
	}
	if one.Latency > three.Latency {
		t.Errorf("write with 3 invalidations (%v) should cost at least as much as 1 (%v)",
			three.Latency, one.Latency)
	}
	if three.Messages != 2+2*3 {
		t.Errorf("messages = %d, want 8", three.Messages)
	}
	if three.NewState != Exclusive {
		t.Errorf("new state = %v, want Exclusive", three.NewState)
	}
}

func TestWriteSharedRequesterAmongSharersNotInvalidated(t *testing.T) {
	p := testProto(t)
	res := p.Write(0, 4, -1, Shared, []int{0})
	if res.Messages != 2 {
		t.Errorf("requester-only sharer should need no invalidations; messages = %d, want 2", res.Messages)
	}
}

func TestWriteExclusiveTransfer(t *testing.T) {
	p := testProto(t)
	res := p.Write(0, 4, 8, Exclusive, nil)
	if res.NewState != Exclusive {
		t.Errorf("new state = %v, want Exclusive", res.NewState)
	}
	twoHop := p.Write(0, 4, -1, Unowned, nil)
	if res.Latency <= twoHop.Latency {
		t.Errorf("ownership transfer (%v) should cost more than unowned write (%v)",
			res.Latency, twoHop.Latency)
	}
}

func TestUpgradeCheaperThanWriteMiss(t *testing.T) {
	p := testProto(t)
	up := p.Upgrade(0, 4, []int{0, 9})
	miss := p.Write(0, 4, -1, Shared, []int{9})
	if up.Latency > miss.Latency {
		t.Errorf("upgrade (%v) should not cost more than a full write miss (%v)",
			up.Latency, miss.Latency)
	}
	if up.TrafficBytes >= miss.TrafficBytes {
		t.Errorf("upgrade traffic (%d) should be less than write-miss traffic (%d): no data transfer",
			up.TrafficBytes, miss.TrafficBytes)
	}
}

func TestWritebackCost(t *testing.T) {
	p := testProto(t)
	local := p.Writeback(4, 4)
	remote := p.Writeback(4, 30)
	if local.Latency >= remote.Latency {
		t.Errorf("local writeback (%v) should be cheaper than remote (%v)",
			local.Latency, remote.Latency)
	}
	if remote.NewState != Unowned {
		t.Errorf("writeback new state = %v, want Unowned", remote.NewState)
	}
}

func TestLatencyAlwaysPositive(t *testing.T) {
	p := testProto(t)
	f := func(req, home, owner uint8, st uint8, nSharers uint8) bool {
		r := int(req) % 32
		h := int(home) % 32
		o := int(owner) % 32
		state := DirState(int(st) % 3)
		if state == Exclusive && o == r {
			// own-line re-access has occupancy-only latency; still positive
		}
		sharers := make([]int, int(nSharers)%8)
		for i := range sharers {
			sharers[i] = (h + i + 1) % 32
		}
		read := p.Read(r, h, o, state, sharers)
		write := p.Write(r, h, o, state, sharers)
		return read.Latency > 0 && write.Latency > 0 &&
			read.TrafficBytes >= 0 && write.TrafficBytes >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
