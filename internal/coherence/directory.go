package coherence

import (
	"fmt"
	"sort"
)

// LineState is the directory's full record for one line.
type LineState struct {
	State DirState
	// Owner is the owning node when State is Exclusive.
	Owner int
	// Sharers is the set of sharing nodes when State is Shared.
	Sharers map[int]bool
}

// Directory tracks per-line coherence state and drives the Protocol for
// each access, returning the priced transaction. It is not safe for
// concurrent use; the machine simulator uses per-access-class pricing in
// parallel phases and the directory in verification tests and sequential
// analyses.
type Directory struct {
	proto *Protocol
	// homeOf maps a line address to its home node.
	homeOf func(line uint64) int
	lines  map[uint64]*LineState
}

// NewDirectory builds a directory over the given protocol. homeOf maps a
// line address to the node that homes it.
func NewDirectory(proto *Protocol, homeOf func(line uint64) int) *Directory {
	return &Directory{proto: proto, homeOf: homeOf, lines: make(map[uint64]*LineState)}
}

// State returns the directory record for a line, creating an Unowned
// record on first touch.
func (d *Directory) State(line uint64) *LineState {
	ls, ok := d.lines[line]
	if !ok {
		ls = &LineState{State: Unowned, Sharers: make(map[int]bool)}
		d.lines[line] = ls
	}
	return ls
}

// sharerList returns the sharers in deterministic order.
func (ls *LineState) sharerList() []int {
	out := make([]int, 0, len(ls.Sharers))
	for s := range ls.Sharers {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Read performs a read of line by a processor on node requester and
// returns the priced transaction.
func (d *Directory) Read(requester int, line uint64) Result {
	ls := d.State(line)
	home := d.homeOf(line)
	res := d.proto.Read(requester, home, ls.Owner, ls.State, ls.sharerList())
	switch res.NewState {
	case Exclusive:
		ls.State = Exclusive
		ls.Owner = requester
		clear(ls.Sharers)
	case Shared:
		if ls.State == Exclusive {
			// 3-hop read: the previous owner retains a shared copy.
			ls.Sharers[ls.Owner] = true
		}
		ls.State = Shared
		ls.Sharers[requester] = true
		ls.Owner = -1
	}
	return res
}

// Write performs a write (read-exclusive or upgrade) of line by a
// processor on node requester.
func (d *Directory) Write(requester int, line uint64) Result {
	ls := d.State(line)
	home := d.homeOf(line)
	var res Result
	if ls.State == Shared && ls.Sharers[requester] {
		res = d.proto.Upgrade(requester, home, ls.sharerList())
	} else {
		res = d.proto.Write(requester, home, ls.Owner, ls.State, ls.sharerList())
	}
	ls.State = Exclusive
	ls.Owner = requester
	clear(ls.Sharers)
	return res
}

// Writeback evicts a dirty line from the owner back to memory.
func (d *Directory) Writeback(owner int, line uint64) (Result, error) {
	ls := d.State(line)
	if ls.State != Exclusive || ls.Owner != owner {
		return Result{}, fmt.Errorf("coherence: writeback of line %#x by node %d but state is %v owner %d",
			line, owner, ls.State, ls.Owner)
	}
	home := d.homeOf(line)
	res := d.proto.Writeback(owner, home)
	ls.State = Unowned
	ls.Owner = -1
	clear(ls.Sharers)
	return res, nil
}

// CheckInvariants verifies the single-writer / valid-state invariants and
// returns the first violation found, or nil.
func (d *Directory) CheckInvariants() error {
	for line, ls := range d.lines {
		switch ls.State {
		case Unowned:
			if len(ls.Sharers) != 0 {
				return fmt.Errorf("line %#x unowned but has sharers %v", line, ls.sharerList())
			}
		case Shared:
			if len(ls.Sharers) == 0 {
				return fmt.Errorf("line %#x shared but has no sharers", line)
			}
		case Exclusive:
			if len(ls.Sharers) != 0 {
				return fmt.Errorf("line %#x exclusive but has sharers %v", line, ls.sharerList())
			}
			if ls.Owner < 0 {
				return fmt.Errorf("line %#x exclusive with invalid owner %d", line, ls.Owner)
			}
		default:
			return fmt.Errorf("line %#x in invalid state %v", line, ls.State)
		}
	}
	return nil
}
