package coherence

import (
	"testing"
	"testing/quick"
)

func testDir(t *testing.T) *Directory {
	t.Helper()
	// Blocked home mapping: 1 KB of line address space per node, 32 nodes.
	homeOf := func(line uint64) int { return int(line/8) % 32 }
	return NewDirectory(testProto(t), homeOf)
}

func TestDirectoryReadReadWrite(t *testing.T) {
	d := testDir(t)
	const line = 100

	// First read: Unowned -> Exclusive at reader.
	d.Read(3, line)
	if st := d.State(line); st.State != Exclusive || st.Owner != 3 {
		t.Fatalf("after first read: %+v, want Exclusive owner 3", st)
	}

	// Second reader: Exclusive -> Shared with both.
	d.Read(7, line)
	st := d.State(line)
	if st.State != Shared {
		t.Fatalf("after second read: state %v, want Shared", st.State)
	}
	if !st.Sharers[3] || !st.Sharers[7] {
		t.Fatalf("sharers = %v, want {3,7}", st.sharerList())
	}

	// Write by a third node invalidates both sharers.
	res := d.Write(12, line)
	st = d.State(line)
	if st.State != Exclusive || st.Owner != 12 {
		t.Fatalf("after write: %+v, want Exclusive owner 12", st)
	}
	if len(st.Sharers) != 0 {
		t.Fatalf("sharers not cleared after write: %v", st.sharerList())
	}
	if res.Messages != 2+2*2 {
		t.Errorf("write messages = %d, want 6 (2 sharers invalidated)", res.Messages)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirectoryUpgradePath(t *testing.T) {
	d := testDir(t)
	const line = 40
	d.Read(5, line)         // Exclusive at 5
	d.Read(6, line)         // Shared {5,6}
	res := d.Write(5, line) // 5 already shares: upgrade
	// Upgrade moves no data: traffic should be control messages only,
	// strictly less than a data-carrying transaction.
	if res.TrafficBytes >= 144 {
		t.Errorf("upgrade traffic = %d bytes, want control-only (< data message size)", res.TrafficBytes)
	}
	st := d.State(line)
	if st.State != Exclusive || st.Owner != 5 {
		t.Fatalf("after upgrade: %+v, want Exclusive owner 5", st)
	}
}

func TestDirectoryWriteback(t *testing.T) {
	d := testDir(t)
	const line = 9
	d.Write(2, line)
	if _, err := d.Writeback(2, line); err != nil {
		t.Fatalf("Writeback: %v", err)
	}
	if st := d.State(line); st.State != Unowned {
		t.Fatalf("after writeback: %v, want Unowned", st.State)
	}
	// Writeback by a non-owner is a protocol error.
	d.Write(2, line)
	if _, err := d.Writeback(5, line); err == nil {
		t.Error("writeback by non-owner accepted")
	}
}

func TestDirectoryInvariantsUnderRandomTraffic(t *testing.T) {
	d := testDir(t)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			node := int(op>>8) % 32
			line := uint64(op % 64)
			switch op % 3 {
			case 0:
				d.Read(node, line)
			case 1:
				d.Write(node, line)
			case 2:
				st := d.State(line)
				if st.State == Exclusive {
					if _, err := d.Writeback(st.Owner, line); err != nil {
						return false
					}
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreeHopReadKeepsOldOwnerAsSharer(t *testing.T) {
	d := testDir(t)
	const line = 77
	d.Write(9, line) // dirty at 9
	d.Read(4, line)  // 3-hop; 9 does a sharing writeback and keeps a copy
	st := d.State(line)
	if st.State != Shared {
		t.Fatalf("state = %v, want Shared", st.State)
	}
	if !st.Sharers[9] || !st.Sharers[4] {
		t.Errorf("sharers = %v, want {4,9}", st.sharerList())
	}
}
