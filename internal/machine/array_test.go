package machine

import (
	"testing"
	"testing/quick"
)

func TestArrayReserveGrow(t *testing.T) {
	m := testMachine(t, 2)
	a := NewArrayReserve[uint32](m, "r", 1000, 0)
	if a.Len() != 0 {
		t.Fatalf("fresh reserve has len %d", a.Len())
	}
	base := a.Addr(0)
	a.Grow(10)
	if a.Len() != 10 {
		t.Errorf("after Grow(10): len %d", a.Len())
	}
	a.Data[9] = 42
	a.Grow(500)
	if a.Len() != 500 {
		t.Errorf("after Grow(500): len %d", a.Len())
	}
	if a.Data[9] != 42 {
		t.Error("Grow lost data")
	}
	if a.Addr(0) != base {
		t.Error("Grow moved the simulated base address")
	}
	// Shrinking requests are no-ops.
	a.Grow(5)
	if a.Len() != 500 {
		t.Errorf("Grow(5) shrank to %d", a.Len())
	}
}

func TestArrayGrowBeyondCapacityPanics(t *testing.T) {
	m := testMachine(t, 2)
	a := NewArrayReserve[uint32](m, "r", 100, 0)
	defer func() {
		if recover() == nil {
			t.Error("Grow past capacity did not panic")
		}
	}()
	a.Grow(101)
}

func TestArrayLoadStoreRoundTrip(t *testing.T) {
	m := testMachine(t, 2)
	a := NewArrayOnProc[uint32](m, "x", 128, 0)
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		a.Store(p, 7, 99, Private)
		if got := a.Load(p, 7, Private); got != 99 {
			t.Errorf("Load = %d", got)
		}
		a.StoreSeq(p, 8, 100, Private)
		if got := a.LoadSeq(p, 8, Private); got != 100 {
			t.Errorf("LoadSeq = %d", got)
		}
	})
}

func TestSeqAccessCheaperThanScattered(t *testing.T) {
	// The same miss pattern costs less via LoadSeq (MSHR overlap) than
	// via Load (dependent access).
	m := testMachine(t, 2)
	a := NewArrayOnProc[uint32](m, "seq", 1<<16, 0)
	b := NewArrayOnProc[uint32](m, "scat", 1<<16, 0)
	var seqCost, scatCost float64
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		before := p.Stats().Breakdown.LMem
		for i := 0; i < a.Len(); i += 32 {
			a.LoadSeq(p, i, Private)
		}
		seqCost = p.Stats().Breakdown.LMem - before
		before = p.Stats().Breakdown.LMem
		for i := 0; i < b.Len(); i += 32 {
			b.Load(p, i, Private)
		}
		scatCost = p.Stats().Breakdown.LMem - before
	})
	if seqCost >= scatCost {
		t.Errorf("stream cost (%v) should be below scattered cost (%v)", seqCost, scatCost)
	}
}

func TestInvalidateRange(t *testing.T) {
	m := testMachine(t, 2)
	a := NewArrayOnProc[uint32](m, "x", 1024, 0)
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		a.LoadRange(p, 0, 1024, Private)
		if !p.CacheContains(a.Addr(0)) || !p.CacheContains(a.Addr(1000)) {
			t.Fatal("warmup failed")
		}
		p.InvalidateRange(a.Addr(0), a.Bytes(512))
		if p.CacheContains(a.Addr(0)) {
			t.Error("invalidated line still present")
		}
		if !p.CacheContains(a.Addr(1000)) {
			t.Error("line outside the range was dropped")
		}
		p.InvalidateRange(a.Addr(0), 0) // no-op
	})
}

func TestBarrierPropertyClocksEqualAfterwards(t *testing.T) {
	// Property: whatever work precedes a barrier, all clocks agree right
	// after it.
	f := func(work [4]uint16) bool {
		m := testMachine(t, 4)
		clocks := make([]float64, 4)
		m.Run(func(p *Proc) {
			p.Compute(int(work[p.ID]))
			m.Barrier(p)
			clocks[p.ID] = p.Now()
		})
		for i := 1; i < 4; i++ {
			if clocks[i] != clocks[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScatteredContentionLoadDependence(t *testing.T) {
	cfg := Origin2000Scaled(64)
	light := cfg.scatteredContention(64, 1024)           // tiny burst
	heavy := cfg.scatteredContention(64, cfg.Cache.Size) // cache-scale scatter
	if light >= heavy {
		t.Errorf("light-load factor (%v) should be below heavy-load (%v)", light, heavy)
	}
	if light <= 1 {
		t.Errorf("floored light-load factor should still exceed 1, got %v", light)
	}
	over := cfg.scatteredContention(64, 100*cfg.Cache.Size)
	if over != heavy {
		t.Errorf("load should saturate at 1: %v vs %v", over, heavy)
	}
}

func TestBulkTransferZeroBytes(t *testing.T) {
	m := testMachine(t, 2)
	res := m.Run(func(p *Proc) {
		if p.ID == 0 {
			p.BulkTransfer(0, 0, 0, false)
		}
	})
	if res.PerProc[0].Breakdown.Total() != 0 {
		t.Error("zero-byte transfer charged time")
	}
}

func TestResultAggregates(t *testing.T) {
	m := testMachine(t, 4)
	res := m.Run(func(p *Proc) {
		p.Compute(100 * (p.ID + 1))
	})
	maxB := res.MaxBreakdown()
	if !closeTo(maxB.Busy, 400*m.Config().OpNs) {
		t.Errorf("MaxBreakdown busy = %v", maxB.Busy)
	}
	tot := res.TotalBreakdown()
	if !closeTo(tot.Busy, (100+200+300+400)*m.Config().OpNs) {
		t.Errorf("TotalBreakdown busy = %v", tot.Busy)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{Busy: 1, LMem: 2, RMem: 3, Sync: 4}
	if b.Total() != 10 {
		t.Errorf("Total = %v", b.Total())
	}
	if b.Mem() != 5 {
		t.Errorf("Mem = %v", b.Mem())
	}
	var sum Breakdown
	sum.Add(b)
	sum.Add(b)
	if sum.Total() != 20 {
		t.Errorf("Add total = %v", sum.Total())
	}
}
