package machine

import (
	"testing"
)

func testMachine(t *testing.T, procs int) *Machine {
	t.Helper()
	m, err := New(Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidateDefaults(t *testing.T) {
	cfg := Origin2000(64)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Origin2000(64) invalid: %v", err)
	}
	if cfg.Coherence.DataBytes == 0 {
		t.Error("Validate did not fill coherence defaults")
	}
	bad := Origin2000(64)
	bad.OpNs = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted OpNs=0")
	}
}

func TestOriginConfigsDiffer(t *testing.T) {
	full := Origin2000(64)
	scaled := Origin2000Scaled(64)
	if full.Cache.Size != 4<<20 {
		t.Errorf("full cache size: %d", full.Cache.Size)
	}
	if full.Cache.Size/scaled.Cache.Size != ScaleFactor {
		t.Errorf("scaled cache should be %dx smaller, ratio %d",
			ScaleFactor, full.Cache.Size/scaled.Cache.Size)
	}
	if full.TLB.PageSize/scaled.TLB.PageSize != ScaleFactor {
		t.Errorf("page scale = %d, want %d", full.TLB.PageSize/scaled.TLB.PageSize, ScaleFactor)
	}
	if full.BarrierBaseNs/scaled.BarrierBaseNs != ScaleFactor {
		t.Errorf("barrier cost should scale by %d", ScaleFactor)
	}
}

func TestRunCollectsPerProcStats(t *testing.T) {
	m := testMachine(t, 4)
	res := m.Run(func(p *Proc) {
		p.Compute(100 * (p.ID + 1))
	})
	if len(res.PerProc) != 4 {
		t.Fatalf("got %d proc stats", len(res.PerProc))
	}
	for i, ps := range res.PerProc {
		want := float64(100*(i+1)) * m.Config().OpNs
		if !closeTo(ps.Breakdown.Busy, want) {
			t.Errorf("proc %d busy = %v, want %v", i, ps.Breakdown.Busy, want)
		}
	}
	if !closeTo(res.TimeNs, 400*m.Config().OpNs) {
		t.Errorf("TimeNs = %v, want slowest proc's 400 ops", res.TimeNs)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() float64 {
		m := testMachine(t, 8)
		// Permute src into a separate dst, as the real sorting programs
		// do: i -> (i+7919) mod n is a bijection, so every host-slice
		// element is written by exactly one processor and the body is
		// race-free (an earlier version scattered into src itself, which
		// raced each proc's reads against others' writes under -race).
		src := NewArrayBlocked[uint32](m, "keys", 1<<14)
		dst := NewArrayBlocked[uint32](m, "out", 1<<14)
		res := m.Run(func(p *Proc) {
			n := src.Len() / m.Procs()
			lo := p.ID * n
			for i := lo; i < lo+n; i++ {
				v := src.Load(p, i, Private)
				dst.Store(p, (i+7919)%dst.Len(), v+uint32(i), RemoteProduced)
			}
			m.Barrier(p)
			p.Compute(10)
		})
		return res.TimeNs
	}
	t1, t2, t3 := run(), run(), run()
	if t1 != t2 || t2 != t3 {
		t.Errorf("non-deterministic times: %v, %v, %v", t1, t2, t3)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	m := testMachine(t, 4)
	res := m.Run(func(p *Proc) {
		p.Compute(1000 * (p.ID + 1)) // proc 3 arrives last
		m.Barrier(p)
		if want := 4000*m.Config().OpNs + m.barrierCost(); !closeTo(p.Now(), want) {
			t.Errorf("proc %d released at %v, want %v", p.ID, p.Now(), want)
		}
	})
	// Proc 0 waited longest: sync = 3000 ops + cost.
	wantSync := 3000*m.Config().OpNs + m.barrierCost()
	if !closeTo(res.PerProc[0].Breakdown.Sync, wantSync) {
		t.Errorf("proc 0 sync = %v, want %v", res.PerProc[0].Breakdown.Sync, wantSync)
	}
	// Proc 3 only paid the barrier cost.
	if !closeTo(res.PerProc[3].Breakdown.Sync, m.barrierCost()) {
		t.Errorf("proc 3 sync = %v, want %v", res.PerProc[3].Breakdown.Sync, m.barrierCost())
	}
}

func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	m := testMachine(t, 4)
	m.Run(func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.Compute((p.ID + 1) * 10)
			m.Barrier(p)
		}
	})
	// Determinism across episodes is validated by all procs ending at the
	// same virtual time.
	res := m.Run(func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.Compute((p.ID + 1) * 10)
			m.Barrier(p)
		}
	})
	t0 := res.PerProc[0].Breakdown.Total()
	for i, ps := range res.PerProc {
		if !closeTo(ps.Breakdown.Total(), t0) {
			t.Errorf("proc %d total %v != proc 0 total %v", i, ps.Breakdown.Total(), t0)
		}
	}
}

func TestLocalVsRemoteCharging(t *testing.T) {
	m := testMachine(t, 8)
	arr := NewArrayBlocked[uint32](m, "keys", 1<<14) // 64 KB: 8 KB per proc partition
	perProc := arr.Len() / 8
	res := m.Run(func(p *Proc) {
		if p.ID == 0 {
			// Proc 0 reads its own partition: local misses only.
			arr.LoadRange(p, 0, perProc, Private)
		}
		if p.ID == 7 {
			// Proc 7 reads proc 0's partition: remote misses.
			arr.LoadRange(p, 0, perProc, Private)
		}
	})
	p0, p7 := res.PerProc[0].Breakdown, res.PerProc[7].Breakdown
	if p0.LMem == 0 || p0.RMem != 0 {
		t.Errorf("proc 0 (local reader): lmem=%v rmem=%v, want lmem>0 rmem=0", p0.LMem, p0.RMem)
	}
	if p7.RMem == 0 {
		t.Errorf("proc 7 (remote reader): rmem=%v, want > 0", p7.RMem)
	}
	if p7.RMem <= p0.LMem {
		t.Errorf("remote reading (%v) should cost more than local (%v)", p7.RMem, p0.LMem)
	}
	if res.PerProc[7].Traffic.RemoteBytes == 0 {
		t.Error("remote reader generated no traffic")
	}
}

func TestSharingClassCosts(t *testing.T) {
	// RemoteProduced (3-hop) must cost more than Private (2-hop) for the
	// same remote addresses.
	m := testMachine(t, 8)
	arr := NewArrayBlocked[uint32](m, "keys", 1<<14)
	perProc := arr.Len() / 8
	res := m.Run(func(p *Proc) {
		switch p.ID {
		case 1:
			arr.LoadRange(p, 7*perProc, 8*perProc, Private)
		case 2:
			arr.LoadRange(p, 7*perProc, 8*perProc, RemoteProduced)
		}
	})
	if res.PerProc[2].Breakdown.RMem <= res.PerProc[1].Breakdown.RMem {
		t.Errorf("RemoteProduced (%v) should cost more than Private (%v)",
			res.PerProc[2].Breakdown.RMem, res.PerProc[1].Breakdown.RMem)
	}
}

func TestCacheCapacityEffect(t *testing.T) {
	// Reading a working set that fits in cache twice should be much
	// cheaper the second time; one that exceeds cache should not.
	m := testMachine(t, 2)
	cacheBytes := m.Config().Cache.Size
	// small fits both the cache and the TLB reach (64 pages).
	small := NewArrayOnProc[uint32](m, "small", cacheBytes/16, 0)
	big := NewArrayOnProc[uint32](m, "big", cacheBytes, 0) // 4x cache

	var smallSecond, bigSecond float64
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		small.LoadRange(p, 0, small.Len(), Private)
		before := p.Stats().Breakdown.LMem
		small.LoadRange(p, 0, small.Len(), Private)
		smallSecond = p.Stats().Breakdown.LMem - before

		big.LoadRange(p, 0, big.Len(), Private)
		before = p.Stats().Breakdown.LMem
		big.LoadRange(p, 0, big.Len(), Private)
		bigSecond = p.Stats().Breakdown.LMem - before
	})
	if smallSecond != 0 {
		t.Errorf("second walk of cache-resident set cost %v, want 0", smallSecond)
	}
	if bigSecond == 0 {
		t.Error("second walk of over-capacity set cost 0, want misses")
	}
}

func TestContentionFactor(t *testing.T) {
	cfg := Origin2000Scaled(64)
	if f := cfg.contentionFactor(1, true); f != 1 {
		t.Errorf("single proc factor = %v, want 1", f)
	}
	bulk := cfg.contentionFactor(64, false)
	scattered := cfg.contentionFactor(64, true)
	if bulk <= 1 || scattered <= bulk {
		t.Errorf("want 1 < bulk (%v) < scattered (%v)", bulk, scattered)
	}
	cfg.NoContention = true
	if f := cfg.contentionFactor(64, true); f != 1 {
		t.Errorf("NoContention factor = %v, want 1", f)
	}
}

func TestFlatMemoryAblation(t *testing.T) {
	cfg := Origin2000Scaled(8)
	cfg.FlatMemory = true
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	arr := NewArrayBlocked[uint32](m, "keys", 1<<14)
	perProc := arr.Len() / 8
	res := m.Run(func(p *Proc) {
		if p.ID == 7 {
			arr.LoadRange(p, 0, perProc, RemoteProduced)
		}
	})
	if res.PerProc[7].Breakdown.RMem != 0 {
		t.Errorf("flat memory should charge everything locally, rmem = %v",
			res.PerProc[7].Breakdown.RMem)
	}
}

func TestBulkTransfer(t *testing.T) {
	m := testMachine(t, 4)
	dst := NewArrayOnProc[uint32](m, "buf", 1024, 0)
	res := m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		p.BulkTransfer(1, 4096, dst.Addr(0), true)
	})
	ps := res.PerProc[0]
	if ps.Breakdown.RMem == 0 {
		t.Error("bulk transfer from remote node charged nothing")
	}
	if ps.Traffic.Messages != 1 || ps.Traffic.RemoteBytes != 4096 {
		t.Errorf("traffic = %+v, want 1 message, 4096 bytes", ps.Traffic)
	}
	// intoCache: destination lines now resident.
	if !m.Proc(0).CacheContains(dst.Addr(0)) {
		t.Error("intoCache transfer did not install lines")
	}
}

func TestBulkTransferLocal(t *testing.T) {
	m := testMachine(t, 4)
	dst := NewArrayOnProc[uint32](m, "buf", 1024, 0)
	res := m.Run(func(p *Proc) {
		if p.ID == 0 {
			p.BulkTransfer(0, 4096, dst.Addr(0), false)
		}
	})
	ps := res.PerProc[0]
	if ps.Breakdown.LMem == 0 || ps.Breakdown.RMem != 0 {
		t.Errorf("local bulk transfer: lmem=%v rmem=%v", ps.Breakdown.LMem, ps.Breakdown.RMem)
	}
}

func TestWaitUntilChargesSync(t *testing.T) {
	m := testMachine(t, 2)
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		p.Compute(10)
		was := p.Now()
		p.WaitUntil(was + 500)
		if !closeTo(p.Stats().Breakdown.Sync, 500) {
			t.Errorf("sync = %v, want 500", p.Stats().Breakdown.Sync)
		}
		after := p.Stats().Breakdown.Sync
		p.WaitUntil(was) // past: no-op
		if p.Stats().Breakdown.Sync != after {
			t.Error("WaitUntil(past) changed sync")
		}
	})
}

func TestTLBMissesCharged(t *testing.T) {
	m := testMachine(t, 2)
	// Touch one word per page across many pages: every access TLB-misses.
	arr := NewArrayOnProc[uint32](m, "pages", 1<<16, 0)
	pageWords := m.Config().TLB.PageSize / 4
	res := m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		for i := 0; i < arr.Len(); i += pageWords {
			arr.Load(p, i, Private)
		}
	})
	ps := res.PerProc[0]
	wantPages := uint64(arr.Len() / pageWords)
	if ps.TLBMisses != wantPages {
		t.Errorf("TLB misses = %d, want %d", ps.TLBMisses, wantPages)
	}
}

func TestRunRepanicsProcPanic(t *testing.T) {
	m := testMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("Run did not propagate processor panic")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID == 1 {
			panic("boom")
		}
	})
}

func TestArrayAddressing(t *testing.T) {
	m := testMachine(t, 4)
	a32 := NewArrayBlocked[uint32](m, "a32", 100)
	a64 := NewArrayBlocked[uint64](m, "a64", 100)
	if a32.ElemSize() != 4 || a64.ElemSize() != 8 {
		t.Errorf("elem sizes: %d, %d", a32.ElemSize(), a64.ElemSize())
	}
	if a32.Addr(10)-a32.Addr(0) != 40 {
		t.Error("uint32 stride wrong")
	}
	if a64.Addr(10)-a64.Addr(0) != 80 {
		t.Error("uint64 stride wrong")
	}
	if a32.Bytes(10) != 40 {
		t.Error("Bytes wrong")
	}
}

func TestArrayBlockedHomes(t *testing.T) {
	m := testMachine(t, 8)
	// One page per processor partition.
	page := m.Config().TLB.PageSize
	arr := NewArrayBlocked[uint32](m, "k", 8*page/4)
	as := m.AddressSpace()
	for proc := 0; proc < 8; proc++ {
		addr := arr.Addr(proc * page / 4)
		if got, want := as.HomeOf(addr), m.Topology().NodeOf(proc); got != want {
			t.Errorf("partition %d homed on %d, want %d", proc, got, want)
		}
	}
}

func TestResetMemory(t *testing.T) {
	m := testMachine(t, 2)
	arr := NewArrayOnProc[uint32](m, "x", 64, 0)
	m.Run(func(p *Proc) {
		if p.ID == 0 {
			arr.Load(p, 0, Private)
		}
	})
	if !m.Proc(0).CacheContains(arr.Addr(0)) {
		t.Fatal("line not cached after load")
	}
	m.ResetMemory()
	if m.Proc(0).CacheContains(arr.Addr(0)) {
		t.Error("line survived ResetMemory")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(1+b)
}
