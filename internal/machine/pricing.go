package machine

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/topology"
)

// This file implements the memoized coherence pricing table (ISSUE 4).
//
// Every charge missCharge ever computes is a pure function of a small
// tuple — (Sharing class, read/write, requester node, home node) — plus
// the run-constant topology and protocol parameters, so the whole price
// matrix is computed once at Machine.New by calling the live
// coherence.Protocol, and the per-miss hot path becomes one slice
// lookup. coherence.Protocol remains the reference oracle:
// TestPriceTableMatchesProtocol replays every entry against it.

// priceEntry is one precomputed coherence charge.
type priceEntry struct {
	// latencyNs is the transaction's critical-path latency in
	// nanoseconds, before miss-overlap division.
	latencyNs float64
	// trafficBytes is added to Traffic.RemoteBytes when remote is true.
	trafficBytes int64
	// remote selects chargeRemote (contention-scaled RMEM) vs
	// chargeLocal (LMEM).
	remote bool
}

// numPriceClasses is one row pair (read, write) per Sharing class.
const numPriceClasses = 2 * (int(DirtyElsewhere) + 1)

// priceClass maps (sharing class, write) to a row index.
func priceClass(sh Sharing, write bool) int {
	i := int(sh) * 2
	if write {
		i++
	}
	return i
}

// priceTable holds the precomputed charges, memoized per topology
// distance class rather than per (requester, home) node pair: every
// charge below depends on the pair only through quantities the Network
// contract guarantees are constant within a distance class (ReadLatency,
// the remote/local split, and run-constant scalars), so one entry per
// class is exact and the memo stays O(classes) — not O(nodes²) — on
// 128–1024-proc machines. classOf carries the pair→class map the hot
// path indexes through. Immutable after construction and shared by all
// processors.
type priceTable struct {
	nodes   int
	classes int
	// classOf[requester*nodes+home] is the topology distance class of
	// the node pair (class 0 = local).
	classOf []int32
	// miss[class][distanceClass] prices one cache miss.
	miss [numPriceClasses][]priceEntry
	// writeback[distanceClass] prices one dirty-line eviction
	// (directory occupancy plus wire time; the round-trip latency is
	// off the processor's critical path).
	writeback []priceEntry
}

// priceFor computes one miss charge by walking the live protocol
// engine: the single source of truth shared by newPriceTable (which
// memoizes it over every combination at Machine.New) and by paranoid
// mode (which recomputes it per miss and compares against the memoized
// entry the hot path read). The arithmetic replicates the legacy
// missCharge switch term for term — float addition order matters for
// byte-identical results.
func priceFor(top topology.Network, proto *coherence.Protocol, params coherence.Params,
	sh Sharing, write bool, req, home int) priceEntry {
	remote := home != req
	mk := func(res coherence.Result) priceEntry {
		return priceEntry{
			latencyNs:    res.Latency,
			trafficBytes: int64(res.TrafficBytes),
			remote:       remote,
		}
	}
	switch sh {
	case Private:
		if write {
			return mk(proto.Write(req, home, -1, coherence.Unowned, nil))
		}
		return mk(proto.Read(req, home, -1, coherence.Unowned, nil))
	case RemoteProduced:
		if write {
			return mk(proto.Write(req, home, home, coherence.Exclusive, nil))
		}
		return mk(proto.Read(req, home, home, coherence.Exclusive, nil))
	case SharedRead:
		if write {
			return mk(proto.Write(req, home, -1, coherence.Shared, []int{home}))
		}
		return mk(proto.Read(req, home, -1, coherence.Shared, nil))
	case ConflictWrite:
		// missCharge prices ConflictWrite as an ownership transfer for
		// loads and stores alike.
		return mk(proto.Write(req, home, home, coherence.Exclusive, nil))
	case DirtyElsewhere:
		// Three-hop transaction whose owner legs run at the machine's
		// average remote latency; remote-charged even when home is the
		// local node.
		avg := top.AverageReadLatency()
		return priceEntry{
			latencyNs: top.ReadLatency(req, home) + params.DirOccupancy +
				avg + avg + top.TransferTime(params.DataBytes),
			trafficBytes: int64(2*params.CtrlBytes + 2*params.DataBytes),
			remote:       true,
		}
	default:
		panic(fmt.Sprintf("machine: priceFor of invalid sharing class %d", int(sh)))
	}
}

// wbPriceFor computes one writeback charge (directory occupancy plus
// wire time; the round-trip latency is off the processor's critical
// path), shared by newPriceTable and the paranoid oracle like priceFor.
func wbPriceFor(top topology.Network, proto *coherence.Protocol, params coherence.Params,
	owner, home int) priceEntry {
	if home == owner {
		return priceEntry{latencyNs: params.DirOccupancy}
	}
	wb := proto.Writeback(owner, home)
	return priceEntry{
		latencyNs:    params.DirOccupancy + top.TransferTime(wb.TrafficBytes),
		trafficBytes: int64(wb.TrafficBytes),
		remote:       true,
	}
}

// newPriceTable builds the table by driving the live protocol engine
// through the first (requester, home) pair of each distance class in
// requester-major scan order, so each stored float is bit-identical to
// what the legacy per-pair computation produced for every pair of the
// class (the charges are class-constant; see priceTable).
func newPriceTable(top topology.Network, proto *coherence.Protocol, params coherence.Params) *priceTable {
	n := top.Nodes()
	classes := top.NumDistanceClasses()
	pt := &priceTable{nodes: n, classes: classes, classOf: make([]int32, n*n)}
	for c := range pt.miss {
		pt.miss[c] = make([]priceEntry, classes)
	}
	pt.writeback = make([]priceEntry, classes)
	filled := make([]bool, classes)
	for req := 0; req < n; req++ {
		for home := 0; home < n; home++ {
			dc := top.DistanceClass(req, home)
			pt.classOf[req*n+home] = int32(dc)
			if filled[dc] {
				continue
			}
			filled[dc] = true
			for _, sh := range []Sharing{Private, RemoteProduced, SharedRead, ConflictWrite, DirtyElsewhere} {
				for _, write := range []bool{false, true} {
					pt.miss[priceClass(sh, write)][dc] = priceFor(top, proto, params, sh, write, req, home)
				}
			}
			pt.writeback[dc] = wbPriceFor(top, proto, params, req, home)
		}
	}
	return pt
}

// missEntry returns the charge for one miss (test/inspection accessor;
// the hot path indexes the rows directly).
func (pt *priceTable) missEntry(sh Sharing, write bool, requester, home int) priceEntry {
	return pt.miss[priceClass(sh, write)][pt.classOf[requester*pt.nodes+home]]
}

// writebackEntry returns the charge for one dirty eviction.
func (pt *priceTable) writebackEntry(owner, home int) priceEntry {
	return pt.writeback[pt.classOf[owner*pt.nodes+home]]
}

// CorruptPriceEntryForTest adds deltaNs to the memoized latency of one
// miss entry, leaving the live protocol untouched. The paranoid mutation
// tests use it to prove the differential oracle detects a fast-path
// pricing corruption; it must never be called outside tests.
func (m *Machine) CorruptPriceEntryForTest(sh Sharing, write bool, requesterNode, home int, deltaNs float64) {
	pt := m.prices
	pt.miss[priceClass(sh, write)][pt.classOf[requesterNode*pt.nodes+home]].latencyNs += deltaNs
}
