package machine

import (
	"repro/internal/coherence"
	"repro/internal/topology"
)

// This file implements the memoized coherence pricing table (ISSUE 4).
//
// Every charge missCharge ever computes is a pure function of a small
// tuple — (Sharing class, read/write, requester node, home node) — plus
// the run-constant topology and protocol parameters, so the whole price
// matrix is computed once at Machine.New by calling the live
// coherence.Protocol, and the per-miss hot path becomes one slice
// lookup. coherence.Protocol remains the reference oracle:
// TestPriceTableMatchesProtocol replays every entry against it.

// priceEntry is one precomputed coherence charge.
type priceEntry struct {
	// latencyNs is the transaction's critical-path latency in
	// nanoseconds, before miss-overlap division.
	latencyNs float64
	// trafficBytes is added to Traffic.RemoteBytes when remote is true.
	trafficBytes int64
	// remote selects chargeRemote (contention-scaled RMEM) vs
	// chargeLocal (LMEM).
	remote bool
}

// numPriceClasses is one row pair (read, write) per Sharing class.
const numPriceClasses = 2 * (int(DirtyElsewhere) + 1)

// priceClass maps (sharing class, write) to a row index.
func priceClass(sh Sharing, write bool) int {
	i := int(sh) * 2
	if write {
		i++
	}
	return i
}

// priceTable holds the precomputed charges for every (class, requester
// node, home node) combination, plus the writeback matrix. It is
// immutable after construction and shared by all processors.
type priceTable struct {
	nodes int
	// miss[class][requester*nodes+home] prices one cache miss.
	miss [numPriceClasses][]priceEntry
	// writeback[owner*nodes+home] prices one dirty-line eviction
	// (directory occupancy plus wire time; the round-trip latency is
	// off the processor's critical path).
	writeback []priceEntry
}

// newPriceTable builds the table by driving the live protocol engine
// through every combination, so each stored float is bit-identical to
// what the legacy per-miss computation produced.
func newPriceTable(top *topology.Topology, proto *coherence.Protocol, params coherence.Params) *priceTable {
	n := top.Nodes()
	pt := &priceTable{nodes: n}
	for c := range pt.miss {
		pt.miss[c] = make([]priceEntry, n*n)
	}
	pt.writeback = make([]priceEntry, n*n)
	avg := top.AverageReadLatency()
	for req := 0; req < n; req++ {
		for home := 0; home < n; home++ {
			i := req*n + home
			remote := home != req
			set := func(sh Sharing, write bool, res coherence.Result) {
				pt.miss[priceClass(sh, write)][i] = priceEntry{
					latencyNs:    res.Latency,
					trafficBytes: int64(res.TrafficBytes),
					remote:       remote,
				}
			}
			set(Private, false, proto.Read(req, home, -1, coherence.Unowned, nil))
			set(Private, true, proto.Write(req, home, -1, coherence.Unowned, nil))
			set(RemoteProduced, false, proto.Read(req, home, home, coherence.Exclusive, nil))
			set(RemoteProduced, true, proto.Write(req, home, home, coherence.Exclusive, nil))
			set(SharedRead, false, proto.Read(req, home, -1, coherence.Shared, nil))
			set(SharedRead, true, proto.Write(req, home, -1, coherence.Shared, []int{home}))
			// missCharge prices ConflictWrite as an ownership transfer for
			// loads and stores alike.
			cw := proto.Write(req, home, home, coherence.Exclusive, nil)
			set(ConflictWrite, false, cw)
			set(ConflictWrite, true, cw)
			// DirtyElsewhere: three-hop transaction whose owner legs run at
			// the machine's average remote latency; remote-charged even when
			// home is the local node. The arithmetic replicates the legacy
			// missCharge expression term for term (float addition order
			// matters for byte-identical results).
			de := priceEntry{
				latencyNs: top.ReadLatency(req, home) + params.DirOccupancy +
					avg + avg + top.TransferTime(params.DataBytes),
				trafficBytes: int64(2*params.CtrlBytes + 2*params.DataBytes),
				remote:       true,
			}
			pt.miss[priceClass(DirtyElsewhere, false)][i] = de
			pt.miss[priceClass(DirtyElsewhere, true)][i] = de
			if !remote {
				pt.writeback[i] = priceEntry{latencyNs: params.DirOccupancy}
			} else {
				wb := proto.Writeback(req, home)
				pt.writeback[i] = priceEntry{
					latencyNs:    params.DirOccupancy + top.TransferTime(wb.TrafficBytes),
					trafficBytes: int64(wb.TrafficBytes),
					remote:       true,
				}
			}
		}
	}
	return pt
}

// missEntry returns the charge for one miss (test/inspection accessor;
// the hot path indexes the rows directly).
func (pt *priceTable) missEntry(sh Sharing, write bool, requester, home int) priceEntry {
	return pt.miss[priceClass(sh, write)][requester*pt.nodes+home]
}

// writebackEntry returns the charge for one dirty eviction.
func (pt *priceTable) writebackEntry(owner, home int) priceEntry {
	return pt.writeback[owner*pt.nodes+home]
}
