package machine

import "repro/internal/cache"

// This file is the batched access-stream engine (DESIGN.md §13): kernels
// that charge an entire inner loop — a sequential source sweep, a
// per-element gather/scatter target, and the interleaved Compute cost —
// in one call instead of three wrapper calls per element. The kernels
// hoist everything the per-element path re-derives each iteration (cfg
// fields, phase accumulator, tracer and paranoid nil checks) and give
// each access stream a private cache/TLB lane (cache.Lane, cache.TLBLane)
// so a stream's same-line and same-page runs resolve in one inlined
// compare — the LaneHit fast path — instead of fighting the other
// streams for the shared memo entries.
//
// Equivalence contract: every kernel charges exactly what the equivalent
// per-element wrapper loop charges — same counters, same replacement
// decisions, same float addition order — so simulated results are
// bit-identical whichever API a sort uses (TestStreamEquivalence,
// FuzzAccessOracle). Under full paranoid mode the kernels route every
// access through the fully hooked per-access path instead, exactly like
// walkBlock, which turns any `-paranoid` run into a whole-run
// differential test of the kernels; spot-sampled paranoid mode
// (Config.ParanoidSampleEvery > 1) keeps the fast path, whose misses
// still flow through the hooked missCharge.

// grownLanes returns a reset lane scratch of b lanes backed by *store.
// The backing array is retained across calls, so steady-state kernels
// allocate nothing. Kernels use one scratch per per-bucket stream (the
// histogram gather, the scatter target): indexing lanes by bucket turns
// an access pattern that defeats any single memo — consecutive elements
// land in different buckets — back into per-bucket same-line runs that
// resolve on the inlined LaneHit path.
func grownLanes(store *[]cache.Lane, b int) []cache.Lane {
	ls := *store
	if cap(ls) < b {
		ls = make([]cache.Lane, b)
		*store = ls
	}
	ls = ls[:b]
	for i := range ls {
		ls[i].Reset()
	}
	return ls
}

// LoadStream charges a sequential read sweep of n elemSize-byte elements
// starting at a, with opsPerElem busy operations interleaved after each
// element — equivalent to `for each element { LoadSeq; Compute }`.
func (p *Proc) LoadStream(a Addr, elemSize, n int, sh Sharing, opsPerElem int) {
	p.seqStream(a, elemSize, n, false, sh, opsPerElem)
}

// StoreStream charges a sequential write sweep of n elements starting at
// a, with opsPerElem busy operations per element.
func (p *Proc) StoreStream(a Addr, elemSize, n int, sh Sharing, opsPerElem int) {
	p.seqStream(a, elemSize, n, true, sh, opsPerElem)
}

func (p *Proc) seqStream(a Addr, elemSize, n int, write bool, sh Sharing, ops int) {
	if n <= 0 {
		return
	}
	cfg := &p.m.cfg
	opNs := float64(ops) * cfg.OpNs
	es := Addr(elemSize)
	if p.pc != nil && p.pc.perAccess() {
		for i := 0; i < n; i++ {
			p.access(a, write, sh, cfg.MissOverlap)
			p.ComputeNs(opNs)
			a += es
		}
		return
	}
	t, c := p.tlb, p.cache
	tl, cl := &p.sTLB[0], &p.sLane[0]
	t.AttachLane(tl)
	cl.Reset()
	ov, tlbNs := cfg.MissOverlap, cfg.TLBMissNs
	acc := p.phaseAcc
	for i := 0; i < n; i++ {
		if !t.LaneHit(tl, a) {
			if t.LaneRefill(tl, a) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(cl, a, write) {
			res := c.AccessLaneMiss(cl, a, write)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(a, write, sh, ov)
			}
		}
		p.clock += opNs
		p.stats.Breakdown.Busy += opNs
		if acc != nil {
			acc.Busy += opNs
		}
		a += es
	}
	t.DetachLanes()
}

// GatherStream charges n dependent reads of elements base+idx[i] —
// equivalent to `for each i { Load(idx[i]); Compute }`. Gathered reads
// are dependent accesses, so misses do not overlap.
func (p *Proc) GatherStream(base Addr, elemSize int, idx []int64, sh Sharing, opsPerElem int) {
	p.idxStream(base, elemSize, idx, false, 1, sh, opsPerElem)
}

// ScatterStream charges len(idx) writes of elements base+idx[i] —
// equivalent to `for each i { Store(idx[i]); Compute }`. Stores post
// through the write buffer, so scattered write misses overlap like
// streams (see Proc.Store).
func (p *Proc) ScatterStream(base Addr, elemSize int, idx []int64, sh Sharing, opsPerElem int) {
	p.idxStream(base, elemSize, idx, true, p.m.cfg.MissOverlap, sh, opsPerElem)
}

func (p *Proc) idxStream(base Addr, elemSize int, idx []int64, write bool, overlap float64, sh Sharing, ops int) {
	if len(idx) == 0 {
		return
	}
	cfg := &p.m.cfg
	opNs := float64(ops) * cfg.OpNs
	if p.pc != nil && p.pc.perAccess() {
		for _, ix := range idx {
			p.access(base+Addr(int(ix)*elemSize), write, sh, overlap)
			p.ComputeNs(opNs)
		}
		return
	}
	t, c := p.tlb, p.cache
	tl, cl := &p.sTLB[0], &p.sLane[0]
	t.AttachLane(tl)
	cl.Reset()
	tlbNs := cfg.TLBMissNs
	acc := p.phaseAcc
	for _, ix := range idx {
		a := base + Addr(int(ix)*elemSize)
		if !t.LaneHit(tl, a) {
			if t.LaneRefill(tl, a) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(cl, a, write) {
			res := c.AccessLaneMiss(cl, a, write)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(a, write, sh, overlap)
			}
		}
		p.clock += opNs
		p.stats.Breakdown.Busy += opNs
		if acc != nil {
			acc.Busy += opNs
		}
	}
	t.DetachLanes()
}

// CountStream charges a radix counting pass over src.Data[lo:lo+n]: per
// element, one sequential key read (srcSh), the digit extraction
// (key>>shift)&mask, one dependent read of tbl[digit] (tblSh), the
// histogram increment tbl.Data[digit]++, and opsPerElem busy operations.
// It is the batched equivalent of sorts' countPass inner loop.
func (p *Proc) CountStream(src *Array[uint32], lo, n int, srcSh Sharing,
	shift uint, mask uint32, tbl *Array[int32], tblSh Sharing, opsPerElem int) {
	if n <= 0 {
		return
	}
	cfg := &p.m.cfg
	opNs := float64(opsPerElem) * cfg.OpNs
	sd := src.Data[lo : lo+n]
	td := tbl.Data
	srcA := src.base + Addr(lo*src.elemSize)
	srcES := Addr(src.elemSize)
	tblBase, tblES := tbl.base, tbl.elemSize
	if p.pc != nil && p.pc.perAccess() {
		ov := cfg.MissOverlap
		for i := range sd {
			p.access(srcA, false, srcSh, ov)
			d := int(sd[i] >> shift & mask)
			p.access(tblBase+Addr(d*tblES), false, tblSh, 1)
			td[d]++
			p.ComputeNs(opNs)
			srcA += srcES
		}
		return
	}
	t, c := p.tlb, p.cache
	sT, tT := &p.sTLB[0], &p.sTLB[1]
	sL := &p.sLane[0]
	t.AttachLane(sT)
	t.AttachLane(tT)
	sL.Reset()
	// The histogram is indexed by a near-random digit, which defeats any
	// single memo; one lane per bucket pins each bucket's (shared) line so
	// steady-state table reads resolve on the inlined hit path.
	tl := grownLanes(&p.tLanes, int(mask)+1)
	ov, tlbNs := cfg.MissOverlap, cfg.TLBMissNs
	acc := p.phaseAcc
	for i := range sd {
		if !t.LaneHit(sT, srcA) {
			if t.LaneRefill(sT, srcA) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(sL, srcA, false) {
			res := c.AccessLaneMiss(sL, srcA, false)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(srcA, false, srcSh, ov)
			}
		}
		d := int(sd[i] >> shift & mask)
		ta := tblBase + Addr(d*tblES)
		if !t.LaneHit(tT, ta) {
			if t.LaneRefill(tT, ta) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(&tl[d], ta, false) {
			res := c.AccessLaneMiss(&tl[d], ta, false)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(ta, false, tblSh, 1)
			}
		}
		td[d]++
		p.clock += opNs
		p.stats.Breakdown.Busy += opNs
		if acc != nil {
			acc.Busy += opNs
		}
		srcA += srcES
	}
	t.DetachLanes()
}

// PermuteStream charges a radix permutation pass: per element, one
// sequential key read from src (srcSh), the digit extraction, one
// dependent read of tbl[digit] (tblSh, the position-counter access), the
// position bump pos[digit]++, the key's scattered write to
// dst[pos] (dstSh), and opsPerElem busy operations. It is the batched
// equivalent of sorts' permutePass inner loop.
//
// The scatter target gets one cache lane per digit bucket: each bucket's
// writes walk its output run sequentially, so per-bucket lanes turn the
// scatter — which defeats both the shared memo and a single lane — back
// into mask+1 independent same-line runs. The TLB keeps its shared
// memo path for the scatter stream; per-bucket TLB lanes would make
// every TLB eviction scan mask+1 registry entries.
func (p *Proc) PermuteStream(src, dst *Array[uint32], lo, n int,
	shift uint, mask uint32, tbl *Array[int32], pos []int64,
	srcSh, tblSh, dstSh Sharing, opsPerElem int) {
	if n <= 0 {
		return
	}
	cfg := &p.m.cfg
	opNs := float64(opsPerElem) * cfg.OpNs
	sd := src.Data[lo : lo+n]
	dd := dst.Data
	srcA := src.base + Addr(lo*src.elemSize)
	srcES := Addr(src.elemSize)
	tblBase, tblES := tbl.base, tbl.elemSize
	dstBase, dstES := dst.base, dst.elemSize
	ov := cfg.MissOverlap
	if p.pc != nil && p.pc.perAccess() {
		for i := range sd {
			p.access(srcA, false, srcSh, ov)
			k := sd[i]
			d := int(k >> shift & mask)
			p.access(tblBase+Addr(d*tblES), false, tblSh, 1)
			at := pos[d]
			pos[d]++
			dd[at] = k
			p.access(dstBase+Addr(int(at)*dstES), true, dstSh, ov)
			p.ComputeNs(opNs)
			srcA += srcES
		}
		return
	}
	t, c := p.tlb, p.cache
	sT, tT := &p.sTLB[0], &p.sTLB[1]
	sL := &p.sLane[0]
	t.AttachLane(sT)
	t.AttachLane(tT)
	sL.Reset()
	tl := grownLanes(&p.tLanes, int(mask)+1)
	bl := grownLanes(&p.bLanes, int(mask)+1)
	tlbNs := cfg.TLBMissNs
	acc := p.phaseAcc
	for i := range sd {
		if !t.LaneHit(sT, srcA) {
			if t.LaneRefill(sT, srcA) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(sL, srcA, false) {
			res := c.AccessLaneMiss(sL, srcA, false)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(srcA, false, srcSh, ov)
			}
		}
		k := sd[i]
		d := int(k >> shift & mask)
		ta := tblBase + Addr(d*tblES)
		if !t.LaneHit(tT, ta) {
			if t.LaneRefill(tT, ta) {
				p.chargeLocal(tlbNs)
			}
		}
		if !c.LaneHit(&tl[d], ta, false) {
			res := c.AccessLaneMiss(&tl[d], ta, false)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(ta, false, tblSh, 1)
			}
		}
		at := pos[d]
		pos[d]++
		dd[at] = k
		da := dstBase + Addr(int(at)*dstES)
		if t.Access(da) {
			p.chargeLocal(tlbNs)
		}
		if !c.LaneHit(&bl[d], da, true) {
			res := c.AccessLaneMiss(&bl[d], da, true)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if !res.Hit {
				p.missCharge(da, true, dstSh, ov)
			}
		}
		p.clock += opNs
		p.stats.Breakdown.Busy += opNs
		if acc != nil {
			acc.Busy += opNs
		}
		srcA += srcES
	}
	t.DetachLanes()
}

// A SeqCursor charges the accesses of one sequential stream whose
// elements are consumed on demand rather than in a closed loop — the
// multiway merge's run heads and output head. Each cursor carries its
// own cache and TLB lane, so several concurrently open cursors (one per
// merge run) do not evict each other's memo state. Open with
// Array.OpenCursor; close every cursor of a batch at once with
// Proc.CloseCursors. The cursor must not be copied while open (its TLB
// lane is registered by address).
type SeqCursor struct {
	p        *Proc
	base     Addr
	elemSize int
	sh       Sharing
	write    bool
	overlap  float64
	// slow routes every access through the fully hooked per-access path
	// (full paranoid mode), mirroring the kernels' fallback.
	slow bool
	lane cache.Lane
	tlb  cache.TLBLane
}

// OpenCursor binds cur to this array's address range as a sequential
// stream of reads (write=false) or writes. Accesses charge like
// LoadSeq/StoreSeq.
func (a *Array[T]) OpenCursor(cur *SeqCursor, p *Proc, write bool, sh Sharing) {
	cur.p = p
	cur.base = a.base
	cur.elemSize = a.elemSize
	cur.sh = sh
	cur.write = write
	cur.overlap = p.m.cfg.MissOverlap
	cur.slow = p.pc != nil && p.pc.perAccess()
	if !cur.slow {
		cur.lane.Reset()
		p.tlb.AttachLane(&cur.tlb)
	}
}

// Access charges one access of element i through the cursor's lanes.
func (cur *SeqCursor) Access(i int) {
	p := cur.p
	a := cur.base + Addr(i*cur.elemSize)
	if cur.slow {
		p.access(a, cur.write, cur.sh, cur.overlap)
		return
	}
	t, c := p.tlb, p.cache
	if !t.LaneHit(&cur.tlb, a) {
		if t.LaneRefill(&cur.tlb, a) {
			p.chargeLocal(p.m.cfg.TLBMissNs)
		}
	}
	if !c.LaneHit(&cur.lane, a, cur.write) {
		res := c.AccessLaneMiss(&cur.lane, a, cur.write)
		if res.WriteBack {
			p.chargeWriteback(res.WritebackAddr)
		}
		if !res.Hit {
			p.missCharge(a, cur.write, cur.sh, cur.overlap)
		}
	}
}

// CloseCursors detaches the TLB lanes of every cursor opened on this
// processor since the last close. Cursor batches must be strictly
// bracketed (open all, use, close all) and must not overlap stream
// kernel calls, which bracket their own lanes.
func (p *Proc) CloseCursors() { p.tlb.DetachLanes() }

// LoadRangeWith charges a sequential read of elements [lo, hi) with
// opsPerElem busy operations interleaved per element — the batched
// equivalent of `for i := lo; i < hi; i++ { LoadSeq(i); Compute }`.
// Unlike LoadRange, which touches each cache line once (a block
// transfer), this charges one access per element.
func (a *Array[T]) LoadRangeWith(p *Proc, lo, hi int, sh Sharing, opsPerElem int) {
	if hi <= lo {
		return
	}
	p.LoadStream(a.Addr(lo), a.elemSize, hi-lo, sh, opsPerElem)
}

// StoreRangeWith charges a sequential write of elements [lo, hi) with
// opsPerElem busy operations per element.
func (a *Array[T]) StoreRangeWith(p *Proc, lo, hi int, sh Sharing, opsPerElem int) {
	if hi <= lo {
		return
	}
	p.StoreStream(a.Addr(lo), a.elemSize, hi-lo, sh, opsPerElem)
}

// GatherLoad charges dependent reads of elements idx[0..] with
// opsPerElem busy operations per element.
func (a *Array[T]) GatherLoad(p *Proc, idx []int64, sh Sharing, opsPerElem int) {
	p.GatherStream(a.base, a.elemSize, idx, sh, opsPerElem)
}

// ScatterStore charges scattered writes of elements idx[0..] with
// opsPerElem busy operations per element.
func (a *Array[T]) ScatterStore(p *Proc, idx []int64, sh Sharing, opsPerElem int) {
	p.ScatterStream(a.base, a.elemSize, idx, sh, opsPerElem)
}
