package machine

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestSharingTxClassAlignment pins the cast in missCharge: the machine's
// Sharing constants must mirror trace.TxClass order so that
// trace.TxClass(sh) is the correct class label.
func TestSharingTxClassAlignment(t *testing.T) {
	want := map[Sharing]string{
		Private:        "private",
		RemoteProduced: "remote-produced",
		SharedRead:     "shared-read",
		ConflictWrite:  "conflict-write",
		DirtyElsewhere: "dirty-elsewhere",
	}
	for sh, name := range want {
		if got := trace.TxClass(sh).String(); got != name {
			t.Errorf("trace.TxClass(%d).String() = %q, want %q — Sharing and TxClass orders diverged", sh, got, name)
		}
	}
	if trace.TxWriteback.String() != "writeback" {
		t.Errorf("TxWriteback.String() = %q", trace.TxWriteback.String())
	}
}

// TestRunAttachesTrace checks EnableTracing produces a populated trace:
// spans from SetPhase, barrier events, tx counts, and the standard
// metrics — and that tracing stays off by default.
func TestRunAttachesTrace(t *testing.T) {
	m := MustNew(Origin2000Scaled(4))
	arr := NewArrayBlocked[int64](m, "t", 4096)
	body := func(p *Proc) {
		p.SetPhase("work")
		lo, hi := p.ID*1024, (p.ID+1)*1024
		for i := lo; i < hi; i++ {
			arr.Store(p, i, int64(i), Private)
		}
		m.Barrier(p)
		p.SetPhase("read")
		for i := lo; i < hi; i++ {
			arr.Load(p, i, Private)
		}
		p.SetPhase("")
	}

	res := m.Run(body)
	if res.Trace != nil {
		t.Fatal("tracing off by default, but Result.Trace != nil")
	}

	m.EnableTracing()
	m.ResetMemory() // cold caches again, so the traced run misses
	res = m.Run(body)
	tr := res.Trace
	if tr == nil {
		t.Fatal("EnableTracing set but Result.Trace == nil")
	}
	if tr.TimeNs != res.TimeNs {
		t.Errorf("trace TimeNs=%v, result TimeNs=%v", tr.TimeNs, res.TimeNs)
	}
	if len(tr.Procs) != 4 {
		t.Fatalf("trace has %d tracks, want 4", len(tr.Procs))
	}
	for _, pt := range tr.Procs {
		if len(pt.Spans) != 2 {
			t.Errorf("proc %d: %d spans, want 2 (work, read)", pt.ID, len(pt.Spans))
			continue
		}
		if pt.Spans[0].Name != "work" || pt.Spans[1].Name != "read" {
			t.Errorf("proc %d: span names %q/%q", pt.ID, pt.Spans[0].Name, pt.Spans[1].Name)
		}
		for _, s := range pt.Spans {
			if s.End < s.Start {
				t.Errorf("proc %d: span %q ends before it starts", pt.ID, s.Name)
			}
		}
		var barriers int
		for _, e := range pt.Events {
			if e.Kind == trace.EvBarrier {
				barriers++
			}
			if e.Dur < 0 {
				t.Errorf("proc %d: negative event duration %v", pt.ID, e.Dur)
			}
		}
		if barriers != 1 {
			t.Errorf("proc %d: %d barrier events, want 1", pt.ID, barriers)
		}
	}
	if tx := tr.TxTotals(); tx[trace.TxPrivate] == 0 {
		t.Error("no private-class transactions recorded despite cold misses")
	}
	for _, key := range []string{
		"time_ns", "procs",
		"breakdown.busy_ns", "breakdown.lmem_ns", "breakdown.rmem_ns", "breakdown.sync_ns",
		"phase.work.busy_ns",
		"traffic.remote_bytes", "traffic.messages", "traffic.protocol_transactions",
		"tx.private", "tx.writeback",
		"cache.accesses", "cache.misses", "cache.miss_rate", "cache.writebacks",
		"tlb.misses", "events", "spans",
	} {
		if _, ok := tr.Metrics()[key]; !ok {
			t.Errorf("standard metric %q missing", key)
		}
	}
	// The "read" phase's loads all hit the warm cache, so the phase
	// accumulates zero charges; zero-charge phases are pruned from the
	// snapshot (the BUSY+LMEM+RMEM+SYNC identity holds trivially for
	// every reported phase), so its breakdown metric is absent while its
	// span above is still recorded.
	if _, ok := tr.Metrics()["phase.read.busy_ns"]; ok {
		t.Error("zero-charge phase \"read\" should be pruned from the metrics export")
	}
	if got := tr.Metric("procs"); got != 4 {
		t.Errorf("metric procs=%v, want 4", got)
	}

	// The next run must not inherit the previous run's trace state.
	res2 := m.Run(body)
	if res2.Trace == nil || res2.Trace == tr {
		t.Error("second traced run should build a fresh trace")
	}
	m.DisableTracing()
	if res3 := m.Run(body); res3.Trace != nil {
		t.Error("DisableTracing did not stop trace recording")
	}
}

// TestMachineTraceDeterministic runs the same parallel body twice and
// requires byte-identical Chrome and metrics exports.
func TestMachineTraceDeterministic(t *testing.T) {
	export := func() ([]byte, []byte) {
		m := MustNew(Origin2000Scaled(8))
		m.EnableTracing()
		arr := NewArrayBlocked[int64](m, "t", 8*512)
		res := m.Run(func(p *Proc) {
			p.SetPhase("fill")
			lo, hi := p.ID*512, (p.ID+1)*512
			for i := lo; i < hi; i++ {
				arr.Store(p, i, int64(i), Private)
			}
			m.Barrier(p)
			p.SetPhase("steal")
			peer := (p.ID + 1) % 8
			for i := peer * 512; i < peer*512+512; i++ {
				arr.Load(p, i, RemoteProduced)
			}
			p.SetPhase("")
		})
		var chrome, metrics bytes.Buffer
		if err := trace.WriteChrome(&chrome, res.Trace); err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.WriteMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		return chrome.Bytes(), metrics.Bytes()
	}
	c1, m1 := export()
	c2, m2 := export()
	if !bytes.Equal(c1, c2) {
		t.Error("Chrome exports of identical runs differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics exports of identical runs differ")
	}
}

// TestTracingDisabledZeroAlloc enforces the nil-sink contract: with
// tracing disabled, the per-access emission guards allocate nothing.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	m := MustNew(Origin2000Scaled(2))
	arr := NewArrayBlocked[int64](m, "t", 4096)
	p := m.Proc(0)
	p.resetClock()
	p.SetPhase("hot") // pre-warm the phase accumulator
	// Touch the array once so the TLB/cache structures are built.
	arr.Store(p, 0, 1, Private)

	allocs := testing.AllocsPerRun(1000, func() {
		p.ComputeNs(1)
		p.SetPhase("hot")
		arr.Store(p, 1, 2, Private)
		arr.Load(p, 1, Private)
		p.WaitUntil(p.Now() - 1)
		p.TraceEvent(trace.EvSend, 1, 64, 10)
	})
	if allocs != 0 {
		t.Errorf("hot path with tracing disabled allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkAccessTracingOff / On quantify the cost of the trace hooks on
// the memory-access hot path.
func BenchmarkAccessTracingOff(b *testing.B) { benchAccess(b, false) }
func BenchmarkAccessTracingOn(b *testing.B)  { benchAccess(b, true) }

func benchAccess(b *testing.B, tracing bool) {
	m := MustNew(Origin2000Scaled(2))
	if tracing {
		m.EnableTracing()
	}
	arr := NewArrayBlocked[int64](m, "t", 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(1<<12) == 0 {
			b.StopTimer()
			m.Run(func(p *Proc) {}) // reset clocks (and trace sink state)
			b.StartTimer()
		}
		p := m.Proc(0)
		arr.Store(p, i&((1<<14)-1), int64(i), Private)
	}
}
