package machine

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/trace"
)

// This file wires paranoid mode (Config.Paranoid, package check) into
// the simulator's hot path. Every Proc of a paranoid machine carries a
// *paranoid shadow holding unmemoized reference models; each hook site
// in proc.go/machine.go is a nil check on p.pc, so a non-paranoid run
// pays one predictable branch per site and zero allocations
// (TestParanoidDisabledZeroAlloc).
//
// What is checked, per access:
//
//   - TLB miss/hit vs check.RefTLB (map + FIFO ring, no memos, no open
//     addressing).
//   - Cache hit/miss/writeback (and the writeback's address) vs
//     check.RefCache (plain structs, no memo entries, no packed meta).
//   - The page's home node vs memsys.ReferenceHomeOf (fresh region walk,
//     bypassing the flat page table and the lastRegion memo).
//   - The memoized price entry the hot path reads — through the same
//     row indexing it uses, so stale row pointers are caught too — vs a
//     fresh walk of the live coherence.Protocol (priceFor/wbPriceFor).
//   - Directory-transition legality: the access's implied protocol walk
//     is replayed on a live coherence.Directory and the resulting line
//     state checked (sharer/owner exclusivity, requester ends up with a
//     readable/owned copy).
//   - Virtual-time monotonicity and finiteness at every hook site.
//
// And per run, at Machine.Run's end:
//
//   - The accounting identity clock == BUSY+LMEM+RMEM+SYNC, whole-run
//     and per phase (phase elapsed time vs its breakdown's total).
//   - Event-count conservation between the fast and reference cache/TLB.
//   - Traffic conservation: the shadow's per-class transaction counts
//     sum to Traffic.ProtocolTransactions and match the trace's TxClass
//     counters when tracing is on.
//
// Paranoid mode also forces walkBlock through the plain per-access loop
// (see proc.go), so the page-run hoisting of the fast path is itself
// differentially tested: a paranoid run must still produce byte-
// identical outputs.

// identityTol is the relative tolerance for the accounting identities.
// The clock and the breakdown buckets accumulate the same addends in
// different groupings, so they agree to float64 rounding, not bit-
// exactly; 1e-6 relative is ~8 orders of magnitude above the drift a
// legitimate run accumulates and ~anything a real accounting bug loses.
const identityTol = 1e-6

// closeEnough reports whether a and b agree within identityTol
// (relative, floored at an absolute scale of 1 ns).
func closeEnough(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= identityTol*scale
}

// paranoid is one processor's shadow state. All fields are owned by the
// processor's goroutine except ck, which is concurrency-safe.
type paranoid struct {
	ck    *check.Checker
	cache *check.RefCache
	tlb   *check.RefTLB

	// lastClock enforces virtual-time monotonicity.
	lastClock float64
	// phaseStart/phaseElapsed track elapsed virtual time per phase label
	// independently of the breakdown accumulators, for the per-phase
	// accounting identity.
	phaseStart   float64
	phaseElapsed map[string]float64
	// tx mirrors the per-class protocol-transaction counts the trace
	// subsystem would record, whether or not tracing is on.
	tx [trace.NumTxClasses]int64

	// sampleEvery is Config.ParanoidSampleEvery: 0 or 1 shadows every
	// access through the reference models; N > 1 spot-samples, running
	// only the stateless oracles (home, price, directory, clock) on every
	// Nth priced event so paranoid stays usable on 10⁸+-access runs.
	sampleEvery int
	// evCount numbers the priced events for the spot-sampling decision.
	evCount uint64
}

func newParanoid(m *Machine, ck *check.Checker) *paranoid {
	pc := &paranoid{ck: ck, sampleEvery: m.cfg.ParanoidSampleEvery}
	if pc.perAccess() {
		// Full mode shadows every access differentially; sampled mode
		// never consults the reference models, so it skips building them
		// (they would only go stale).
		pc.cache = check.NewRefCache(m.cfg.Cache)
		pc.tlb = check.NewRefTLB(m.cfg.TLB)
	}
	return pc
}

// perAccess reports whether every access must route through the fully
// hooked per-access path (full paranoid mode). Sampled mode lets the
// stream kernels keep their fast path: kernel misses still flow through
// the hooked missCharge, which is where the sampled oracles live.
func (pc *paranoid) perAccess() bool { return pc.sampleEvery <= 1 }

// sampleHit numbers one priced event and reports whether the stateless
// oracles should run on it. Full mode samples everything.
func (pc *paranoid) sampleHit() bool {
	if pc.sampleEvery <= 1 {
		return true
	}
	pc.evCount++
	return (pc.evCount-1)%uint64(pc.sampleEvery) == 0
}

// resetRun clears per-run shadow state. The reference cache and TLB are
// deliberately NOT reset: the fast models keep their contents across
// runs of one machine (warm caches are intentional), so the shadows
// must too.
func (pc *paranoid) resetRun() {
	pc.lastClock = 0
	pc.phaseStart = 0
	pc.phaseElapsed = nil
	pc.tx = [trace.NumTxClasses]int64{}
	pc.evCount = 0
}

// report records one violation tagged with the processor's identity and
// current phase.
func (pc *paranoid) report(p *Proc, a Addr, kind, fast, ref string) {
	pc.ck.Report(check.Violation{
		Proc:  p.ID,
		Phase: p.phase,
		Addr:  uint64(a),
		Kind:  kind,
		Fast:  fast,
		Ref:   ref,
	})
}

// noteClock asserts the virtual clock is finite and has not moved
// backwards since the last hook on this processor.
func (pc *paranoid) noteClock(p *Proc) {
	c := p.clock
	if math.IsNaN(c) || math.IsInf(c, 0) {
		pc.report(p, 0, "clock-finite", fmt.Sprintf("clock=%v", c), "finite clock")
	}
	if c < pc.lastClock {
		pc.report(p, 0, "clock-monotonic",
			fmt.Sprintf("clock=%v", c), fmt.Sprintf("clock >= %v", pc.lastClock))
	}
	pc.lastClock = c
}

// fmtAccess renders a cache access outcome for violation messages.
func fmtAccess(hit, wb bool, wbAddr Addr) string {
	if wb {
		return fmt.Sprintf("hit=%v writeback=%#x", hit, uint64(wbAddr))
	}
	return fmt.Sprintf("hit=%v", hit)
}

// fmtPrice renders a price entry for violation messages.
func fmtPrice(e priceEntry) string {
	return fmt.Sprintf("{latency=%v traffic=%d remote=%v}", e.latencyNs, e.trafficBytes, e.remote)
}

// checkAccess shadows one full memory reference: TLB translation plus
// cache access. tlbMiss and res are what the fast path observed.
func (pc *paranoid) checkAccess(p *Proc, a Addr, write, tlbMiss bool, res cache.AccessResult) {
	if pc.cache == nil {
		// Sampled mode: no reference models to diff against. The sampled
		// oracles live in checkMiss/checkWriteback.
		return
	}
	pc.noteClock(p)
	if refMiss := pc.tlb.Access(a); refMiss != tlbMiss {
		pc.report(p, a, "tlb-miss",
			fmt.Sprintf("miss=%v", tlbMiss), fmt.Sprintf("miss=%v", refMiss))
	}
	pc.compareCache(p, a, write, res)
}

// checkCacheAccess shadows a cache-only access (BulkTransfer's install
// loop, which models a DMA-style fill and does not translate).
func (pc *paranoid) checkCacheAccess(p *Proc, a Addr, write bool, res cache.AccessResult) {
	if pc.cache == nil {
		return
	}
	pc.noteClock(p)
	pc.compareCache(p, a, write, res)
}

func (pc *paranoid) compareCache(p *Proc, a Addr, write bool, res cache.AccessResult) {
	ref := pc.cache.Access(a, write)
	if res.Hit != ref.Hit || res.WriteBack != ref.WriteBack ||
		(res.WriteBack && res.WritebackAddr != ref.WritebackAddr) {
		pc.report(p, a, "cache-access",
			fmtAccess(res.Hit, res.WriteBack, res.WritebackAddr),
			fmtAccess(ref.Hit, ref.WriteBack, ref.WritebackAddr))
	}
}

// checkMiss shadows one priced (non-flat-memory) miss: home resolution,
// the memoized price entry, and the protocol walk's directory legality.
// home is the fast path's HomeOf answer, about to be charged.
func (pc *paranoid) checkMiss(p *Proc, a Addr, write bool, sh Sharing, home int) {
	if sh < Private || sh > DirtyElsewhere {
		// Bail before priceClass would index out of bounds.
		pc.report(p, a, "sharing-class",
			fmt.Sprintf("Sharing(%d)", int(sh)), "class in [Private, DirtyElsewhere]")
		return
	}
	pc.tx[trace.TxClass(sh)]++
	if pc.sampleEvery > 1 {
		// Spot-sampling: the per-class transaction count above runs on
		// every miss (so tx conservation stays exact), but the stateless
		// oracles below run on every Nth priced event only.
		if !pc.sampleHit() {
			return
		}
		pc.noteClock(p)
	}
	if ref := p.m.as.ReferenceHomeOf(a); ref != home {
		pc.report(p, a, "page-home",
			fmt.Sprintf("home=%d", home), fmt.Sprintf("home=%d", ref))
	}
	// Read the fast entry through the exact indexing the hot path uses
	// (cached distance-class row), not the test accessor, so a
	// corrupted row pointer is caught as well as a corrupted entry.
	fast := p.m.prices.miss[priceClass(sh, write)][p.classRow[home]]
	ref := priceFor(p.m.top, p.m.proto, p.m.cfg.Coherence, sh, write, p.Node, home)
	if fast != ref {
		pc.report(p, a, "price-mismatch", fmtPrice(fast), fmtPrice(ref))
	}
	pc.checkDirectory(p, a, write, sh, home)
}

// checkWriteback shadows one priced dirty eviction.
func (pc *paranoid) checkWriteback(p *Proc, a Addr, home int) {
	pc.tx[trace.TxWriteback]++
	if pc.sampleEvery > 1 {
		if !pc.sampleHit() {
			return
		}
		pc.noteClock(p)
	}
	if ref := p.m.as.ReferenceHomeOf(a); ref != home {
		pc.report(p, a, "page-home",
			fmt.Sprintf("home=%d", home), fmt.Sprintf("home=%d", ref))
	}
	fast := p.m.prices.writeback[p.classRow[home]]
	ref := wbPriceFor(p.m.top, p.m.proto, p.m.cfg.Coherence, p.Node, home)
	if fast != ref {
		pc.report(p, a, "writeback-price", fmtPrice(fast), fmtPrice(ref))
	}
}

// checkDirectory replays the access's implied protocol transaction on a
// live one-line coherence.Directory seeded with the sharing class's
// declared pre-state, then asserts the directory's structural
// invariants and that the transition left the requester with a legal
// copy. DirtyElsewhere is skipped: it is priced statistically (average
// remote latency), not as one concrete protocol walk.
func (pc *paranoid) checkDirectory(p *Proc, a Addr, write bool, sh Sharing, home int) {
	if sh == DirtyElsewhere {
		return
	}
	d := coherence.NewDirectory(p.m.proto, func(uint64) int { return home })
	const lineKey = 0
	ls := d.State(lineKey)
	switch sh {
	case Private:
		// Unowned: the fresh state.
	case RemoteProduced, ConflictWrite:
		ls.State = coherence.Exclusive
		ls.Owner = home
	case SharedRead:
		ls.State = coherence.Shared
		ls.Owner = -1
		ls.Sharers[home] = true
	}
	if write {
		d.Write(p.Node, lineKey)
	} else {
		d.Read(p.Node, lineKey)
	}
	if err := d.CheckInvariants(); err != nil {
		pc.report(p, a, "directory-invariant", err.Error(), "legal directory state")
		return
	}
	st := d.State(lineKey)
	if write {
		if st.State != coherence.Exclusive || st.Owner != p.Node {
			pc.report(p, a, "directory-transition",
				fmt.Sprintf("%v owner=%d after %v write", st.State, st.Owner, sh),
				fmt.Sprintf("Exclusive owner=%d", p.Node))
		}
		return
	}
	readable := (st.State == coherence.Exclusive && st.Owner == p.Node) ||
		(st.State == coherence.Shared && st.Sharers[p.Node])
	if !readable {
		pc.report(p, a, "directory-transition",
			fmt.Sprintf("%v owner=%d after %v read", st.State, st.Owner, sh),
			fmt.Sprintf("requester node %d holds a readable copy", p.Node))
	}
}

// checkInvalidate shadows one cache-line invalidation.
func (pc *paranoid) checkInvalidate(p *Proc, a Addr, present, dirty bool) {
	if pc.cache == nil {
		return
	}
	refPresent, refDirty := pc.cache.Invalidate(a)
	if present != refPresent || dirty != refDirty {
		pc.report(p, a, "cache-invalidate",
			fmt.Sprintf("present=%v dirty=%v", present, dirty),
			fmt.Sprintf("present=%v dirty=%v", refPresent, refDirty))
	}
}

// checkFlush shadows a full cache+TLB flush (ResetMemory). dirty is the
// fast cache's dropped-dirty-line count.
func (pc *paranoid) checkFlush(p *Proc, dirty int) {
	if pc.cache == nil {
		return
	}
	if ref := pc.cache.Flush(); ref != dirty {
		pc.report(p, 0, "cache-flush",
			fmt.Sprintf("dirty=%d", dirty), fmt.Sprintf("dirty=%d", ref))
	}
	pc.tlb.Flush()
}

// notePhase closes the elapsed-time measurement of the current phase
// (if any) and starts a new one at the current clock. Called by
// SetPhase before the phase label changes, and by finishRun.
func (pc *paranoid) notePhase(p *Proc) {
	pc.noteClock(p)
	if p.phase != "" {
		if pc.phaseElapsed == nil {
			pc.phaseElapsed = make(map[string]float64)
		}
		pc.phaseElapsed[p.phase] += p.clock - pc.phaseStart
	}
	pc.phaseStart = p.clock
}

// finishRun runs the end-of-run structural checks against the
// processor's final snapshot ps.
func (pc *paranoid) finishRun(p *Proc, ps ProcStats) {
	pc.notePhase(p) // close the open phase, check the clock once more

	// Whole-run accounting identity: the clock is the sum of its charges.
	if !closeEnough(p.clock, ps.Breakdown.Total()) {
		pc.report(p, 0, "breakdown-identity",
			fmt.Sprintf("clock=%v", p.clock),
			fmt.Sprintf("BUSY+LMEM+RMEM+SYNC=%v", ps.Breakdown.Total()))
	}
	// Per-phase identity: elapsed virtual time inside a phase equals the
	// phase breakdown's total. A phase with zero elapsed time may be
	// (and after the zero-phase pruning fix, is) absent from the
	// snapshot; the identity then holds trivially.
	for name, el := range pc.phaseElapsed {
		b, ok := ps.Phases[name]
		if !ok {
			if !closeEnough(el, 0) {
				pc.report(p, 0, "phase-missing",
					fmt.Sprintf("phase %q absent from snapshot", name),
					fmt.Sprintf("breakdown totaling %v ns", el))
			}
			continue
		}
		if !closeEnough(el, b.Total()) {
			pc.report(p, 0, "phase-identity",
				fmt.Sprintf("phase %q BUSY+LMEM+RMEM+SYNC=%v", name, b.Total()),
				fmt.Sprintf("elapsed=%v", el))
		}
	}
	for name := range ps.Phases {
		if _, ok := pc.phaseElapsed[name]; !ok {
			pc.report(p, 0, "phase-unknown",
				fmt.Sprintf("snapshot reports phase %q", name),
				"phase observed by SetPhase during the run")
		}
	}

	// Event-count conservation between the fast and reference models
	// (full mode only; sampled mode has no shadow models to conserve
	// against).
	if pc.cache == nil {
		pc.finishTx(p, ps)
		return
	}
	cs := p.cache.Stats()
	rc := pc.cache.Counts()
	if cs.Accesses != rc.Accesses || cs.Misses != rc.Misses || cs.Writebacks != rc.Writebacks {
		pc.report(p, 0, "cache-counts",
			fmt.Sprintf("accesses=%d misses=%d writebacks=%d", cs.Accesses, cs.Misses, cs.Writebacks),
			fmt.Sprintf("accesses=%d misses=%d writebacks=%d", rc.Accesses, rc.Misses, rc.Writebacks))
	}
	tls := p.tlb.Stats()
	rt := pc.tlb.Counts()
	if tls.Accesses != rt.Accesses || tls.Misses != rt.Misses {
		pc.report(p, 0, "tlb-counts",
			fmt.Sprintf("accesses=%d misses=%d", tls.Accesses, tls.Misses),
			fmt.Sprintf("accesses=%d misses=%d", rt.Accesses, rt.Misses))
	}

	pc.finishTx(p, ps)
}

// finishTx checks traffic conservation: the shadow's per-class
// transaction counts must sum to the stats counter, and match the
// trace's counters class by class when tracing is on. It runs in both
// full and sampled mode — the per-class counts are maintained on every
// miss regardless of sampling.
func (pc *paranoid) finishTx(p *Proc, ps ProcStats) {
	var sum int64
	for _, v := range pc.tx {
		sum += v
	}
	if sum != ps.Traffic.ProtocolTransactions {
		pc.report(p, 0, "tx-conservation",
			fmt.Sprintf("ProtocolTransactions=%d", ps.Traffic.ProtocolTransactions),
			fmt.Sprintf("sum of per-class transactions=%d", sum))
	}
	if p.tr != nil {
		for c := trace.TxClass(0); c < trace.NumTxClasses; c++ {
			if p.tr.Tx[c] != pc.tx[c] {
				pc.report(p, 0, "tx-class",
					fmt.Sprintf("trace %s=%d", c, p.tr.Tx[c]),
					fmt.Sprintf("shadow %s=%d", c, pc.tx[c]))
			}
		}
	}
}

// CorruptCacheMemoForTest poisons this processor's cache line memo (see
// cache.CorruptMemoForTest). The paranoid mutation tests use it to
// prove the differential oracle detects memo-layer corruption; it must
// never be called outside tests.
func (p *Proc) CorruptCacheMemoForTest(a Addr) { p.cache.CorruptMemoForTest(a) }
