package machine

import (
	"repro/internal/cache"
	"repro/internal/trace"
)

// Addr re-exports the simulated address type for convenience.
type Addr = cache.Addr

// Sharing declares the coherence situation of the line an access
// touches. The programming-model layer knows the sharing pattern of each
// phase (who wrote the data last, who caches it), so it declares the
// class and the machine prices the resulting protocol transaction. See
// DESIGN.md §4 for why this replaces a live shared directory.
type Sharing int

const (
	// Private: no other cache holds the line; a miss fills from the home
	// memory (local or remote two-hop).
	Private Sharing = iota
	// RemoteProduced: the line was last written by the processor that
	// owns/homes it and is dirty in that cache; a miss is a three-hop
	// intervention.
	RemoteProduced
	// SharedRead: the line is read-shared; a read miss fills two-hop from
	// home, and a write miss must invalidate the other sharer.
	SharedRead
	// ConflictWrite: a write to a line cached (dirty or clean) by the
	// partition's owner: ownership transfer plus invalidation.
	ConflictWrite
	// DirtyElsewhere: the line is dirty in some remote cache whose
	// location is data-dependent (e.g. reading one's own partition after
	// an all-to-all scatter). Priced as a three-hop transaction whose
	// remote legs use the machine's average remote latency.
	DirtyElsewhere
)

// Proc is one simulated processor. All methods must be called only from
// the goroutine running this processor's body.
type Proc struct {
	// ID is the processor number, in [0, Machine.Procs()).
	ID int
	// Node is the NUMA node housing this processor.
	Node int

	m     *Machine
	cache *cache.Cache
	tlb   *cache.TLB

	// classRow is this processor's row of the pricing table's pair→
	// distance-class map: classRow[home] is the class of (Node, home).
	// Immutable after construction (see pricing.go).
	classRow []int32

	clock float64 // virtual time, ns
	stats ProcStats

	// contention multiplies remote charges during a communication phase.
	contention float64

	// phase is the current phase label; phaseAcc points at its breakdown
	// accumulator so per-charge bookkeeping stays a pointer write.
	phase    string
	phaseAcc *Breakdown
	phases   map[string]*Breakdown

	// tr is this processor's event-trace track, nil when tracing is
	// disabled. Every emission site is guarded by a nil check, so the
	// disabled hot path costs one predictable branch and zero
	// allocations (enforced by TestTracingDisabledZeroAlloc).
	tr *trace.ProcTrace

	// pc is this processor's paranoid-mode shadow (reference models and
	// invariant state), nil unless Config.Paranoid. Like tr, every hook
	// site is a nil check, so a non-paranoid run costs one predictable
	// branch per site and zero allocations (enforced by
	// TestParanoidDisabledZeroAlloc).
	pc *paranoid

	// Stream-kernel scratch (stream.go): private cache/TLB lanes for the
	// kernels' source and table streams, plus a growable per-bucket lane
	// set for scatter targets. Persistent on the Proc so steady-state
	// kernel calls are allocation-free (TestStreamKernelsZeroAlloc).
	sTLB   [2]cache.TLBLane
	sLane  [2]cache.Lane
	bLanes []cache.Lane
	tLanes []cache.Lane
}

func newProc(m *Machine, id int) *Proc {
	node := m.top.NodeOf(id)
	n := m.prices.nodes
	p := &Proc{
		ID:         id,
		Node:       node,
		m:          m,
		cache:      cache.New(m.cfg.Cache),
		tlb:        cache.NewTLB(m.cfg.TLB),
		classRow:   m.prices.classOf[node*n : (node+1)*n],
		contention: 1,
	}
	if m.checker != nil {
		p.pc = newParanoid(m, m.checker)
	}
	return p
}

func (p *Proc) resetClock() {
	p.clock = 0
	p.stats = ProcStats{}
	p.contention = 1
	p.phase = ""
	p.phaseAcc = nil
	p.phases = nil
	p.tr = nil
	if p.pc != nil {
		p.pc.resetRun()
	}
}

// SetPhase labels subsequent charges with a phase name; per-phase
// breakdowns are reported in ProcStats.Phases. An empty name stops
// phase attribution. When tracing is enabled, each SetPhase boundary
// closes the previous phase span and opens a new one on this
// processor's trace track.
func (p *Proc) SetPhase(name string) {
	if p.pc != nil {
		// Close the elapsed-time measurement of the outgoing phase before
		// the label changes (paranoid per-phase accounting identity).
		p.pc.notePhase(p)
	}
	if p.tr != nil {
		if name == "" {
			p.tr.CloseSpan(p.clock)
		} else {
			p.tr.BeginSpan(name, p.clock)
		}
	}
	p.phase = name
	if name == "" {
		p.phaseAcc = nil
		return
	}
	if p.phases == nil {
		p.phases = make(map[string]*Breakdown)
	}
	acc, ok := p.phases[name]
	if !ok {
		acc = &Breakdown{}
		p.phases[name] = acc
	}
	p.phaseAcc = acc
}

// Phase returns the current phase label.
func (p *Proc) Phase() string { return p.phase }

func (p *Proc) snapshot() ProcStats {
	s := p.stats
	cs := p.cache.Stats()
	s.CacheAccesses = cs.Accesses
	s.CacheMisses = cs.Misses
	s.Writebacks = cs.Writebacks
	s.TLBMisses = p.tlb.Stats().Misses
	if p.phases != nil {
		s.Phases = make(map[string]Breakdown, len(p.phases))
		for name, acc := range p.phases {
			if *acc == (Breakdown{}) {
				// A phase entered but never charged (e.g. a barrier-only
				// phase whose wait resolved at zero cost, or a label set
				// and immediately replaced) would report an empty
				// breakdown; dropping it keeps the BUSY+LMEM+RMEM+SYNC
				// accounting identity trivially true for every reported
				// phase (TestZeroChargePhasePruned).
				continue
			}
			s.Phases[name] = *acc
		}
	}
	return s
}

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's virtual clock (ns).
func (p *Proc) Now() float64 { return p.clock }

// Stats returns a snapshot of the processor's accumulated statistics.
func (p *Proc) Stats() ProcStats { return p.snapshot() }

// Tracing reports whether this processor currently records a trace.
func (p *Proc) Tracing() bool { return p.tr != nil }

// TraceEvent records a typed communication event ending at the current
// virtual time: the event covers [Now-durNs, Now]. peer is the other
// rank involved (-1 when not applicable); bytes the payload size. A
// no-op (one branch, zero allocations) when tracing is disabled.
func (p *Proc) TraceEvent(kind trace.EventKind, peer, bytes int, durNs float64) {
	if p.tr != nil {
		p.tr.Emit(kind, p.clock-durNs, durNs, peer, int64(bytes))
	}
}

// countTx attributes one coherence-protocol transaction to a trace
// class when tracing is enabled.
func (p *Proc) countTx(c trace.TxClass) {
	if p.tr != nil {
		p.tr.CountTx(c)
	}
}

// Compute charges ops abstract ALU operations to BUSY.
func (p *Proc) Compute(ops int) {
	p.ComputeNs(float64(ops) * p.m.cfg.OpNs)
}

// ComputeNs charges ns nanoseconds to BUSY.
func (p *Proc) ComputeNs(ns float64) {
	p.clock += ns
	p.stats.Breakdown.Busy += ns
	if p.phaseAcc != nil {
		p.phaseAcc.Busy += ns
	}
}

// WaitUntil advances the clock to t if t is in the future, charging the
// gap to SYNC. It is the primitive under message waits and flow control.
func (p *Proc) WaitUntil(t float64) {
	if t > p.clock {
		p.stats.Breakdown.Sync += t - p.clock
		if p.phaseAcc != nil {
			p.phaseAcc.Sync += t - p.clock
		}
		p.clock = t
	}
}

// SyncNs charges ns nanoseconds of synchronization overhead.
func (p *Proc) SyncNs(ns float64) {
	p.clock += ns
	p.stats.Breakdown.Sync += ns
	if p.phaseAcc != nil {
		p.phaseAcc.Sync += ns
	}
}

// LocalMemNs charges ns nanoseconds of local-memory stall (library-level
// copies and buffer management in the programming-model layers).
func (p *Proc) LocalMemNs(ns float64) { p.chargeLocal(ns) }

// RemoteMemNs charges ns nanoseconds of remote-memory stall, scaled by
// the current contention factor.
func (p *Proc) RemoteMemNs(ns float64) { p.chargeRemote(ns) }

// AddMessageTraffic records one explicit message carrying remoteBytes
// bytes across node boundaries (0 for an intra-node message).
func (p *Proc) AddMessageTraffic(remoteBytes, messages int) {
	p.stats.Traffic.RemoteBytes += int64(remoteBytes)
	p.stats.Traffic.Messages += int64(messages)
}

// SetContention sets the remote-charge multiplier for the current
// communication phase; 1 means uncontended. The programming-model layer
// derives the factor from the machine config and the phase's concurrency
// and traffic pattern.
func (p *Proc) SetContention(f float64) {
	if f < 1 {
		f = 1
	}
	p.contention = f
}

// ContentionFactor computes the machine's deterministic contention
// multiplier for a phase in which q processors communicate concurrently;
// scattered marks fine-grained per-line traffic as opposed to bulk
// transfers.
func (p *Proc) ContentionFactor(q int, scattered bool) float64 {
	return p.m.cfg.contentionFactor(q, scattered)
}

// ScatteredContentionFactor computes the multiplier for a scattered
// all-to-all phase moving bytesPerProc per processor; light bursts stay
// near 1, sustained cache-scale scatter saturates the home controllers.
func (p *Proc) ScatteredContentionFactor(q, bytesPerProc int) float64 {
	return p.m.cfg.scatteredContention(q, bytesPerProc)
}

// chargeLocal adds a local-memory stall.
func (p *Proc) chargeLocal(ns float64) {
	p.clock += ns
	p.stats.Breakdown.LMem += ns
	if p.phaseAcc != nil {
		p.phaseAcc.LMem += ns
	}
}

// chargeRemote adds a remote-memory stall, scaled by the current
// contention factor.
func (p *Proc) chargeRemote(ns float64) {
	ns *= p.contention
	p.clock += ns
	p.stats.Breakdown.RMem += ns
	if p.phaseAcc != nil {
		p.phaseAcc.RMem += ns
	}
}

// access simulates one memory reference. overlap divides the miss
// latency: 1 for scattered dependent accesses, Config.MissOverlap for
// sequential streams whose misses pipeline through the MSHRs.
func (p *Proc) access(a Addr, write bool, sh Sharing, overlap float64) {
	tlbMiss := p.tlb.Access(a)
	if tlbMiss {
		p.chargeLocal(p.m.cfg.TLBMissNs)
	}
	res := p.cache.Access(a, write)
	if p.pc != nil {
		p.pc.checkAccess(p, a, write, tlbMiss, res)
	}
	if res.WriteBack {
		p.chargeWriteback(res.WritebackAddr)
	}
	if res.Hit {
		return
	}
	p.missCharge(a, write, sh, overlap)
}

// missCharge prices a cache miss according to the declared sharing class.
func (p *Proc) missCharge(a Addr, write bool, sh Sharing, overlap float64) {
	cfg := &p.m.cfg
	if cfg.FlatMemory {
		// Ablation: uniform memory, no coherence (and no protocol
		// transactions to count — nor, consistently, any paranoid
		// miss/pricing oracle to run).
		p.chargeLocal(cfg.Topology.LocalLatency)
		return
	}
	home := p.m.as.HomeOf(a)
	if p.pc != nil {
		p.pc.checkMiss(p, a, write, sh, home)
	}
	p.missChargeHome(home, write, sh, overlap)
}

// missChargeHome prices a (non-flat-memory) miss on a line homed at
// home. The charge comes from the machine's memoized pricing table; the
// table is built by the live coherence.Protocol at Machine.New, so the
// charged floats are bit-identical to the per-miss protocol walk it
// replaced (TestPriceTableMatchesProtocol).
func (p *Proc) missChargeHome(home int, write bool, sh Sharing, overlap float64) {
	// Sharing constants mirror trace.TxClass order, so the conversion is
	// a cast (checked by TestSharingTxClassAlignment).
	p.countTx(trace.TxClass(sh))
	e := &p.m.prices.miss[priceClass(sh, write)][p.classRow[home]]
	p.stats.Traffic.ProtocolTransactions++
	if e.remote {
		p.stats.Traffic.RemoteBytes += e.trafficBytes
		p.chargeRemote(e.latencyNs / overlap)
		return
	}
	p.chargeLocal(e.latencyNs / overlap)
}

// chargeWriteback prices the eviction of a dirty line. Writebacks are
// mostly off the processor's critical path in hardware, but they occupy
// the home memory controller and the network; we charge their occupancy
// and wire time (not their full round-trip latency).
func (p *Proc) chargeWriteback(a Addr) {
	cfg := &p.m.cfg
	if cfg.FlatMemory {
		p.chargeLocal(cfg.Coherence.DirOccupancy)
		return
	}
	home := p.m.as.HomeOf(a)
	if p.pc != nil {
		p.pc.checkWriteback(p, a, home)
	}
	p.countTx(trace.TxWriteback)
	p.stats.Traffic.ProtocolTransactions++
	e := &p.m.prices.writeback[p.classRow[home]]
	if e.remote {
		p.stats.Traffic.RemoteBytes += e.trafficBytes
		p.chargeRemote(e.latencyNs)
		return
	}
	p.chargeLocal(e.latencyNs)
}

// Load simulates a scattered (dependent, unoverlapped) read of the line
// containing a.
func (p *Proc) Load(a Addr, sh Sharing) { p.access(a, false, sh, 1) }

// Store simulates a scattered write to the line containing a. Stores
// post through the write buffer, so even scattered write misses overlap
// like streams; sustained scatter is throttled by the contention model,
// not by per-store round trips.
func (p *Proc) Store(a Addr, sh Sharing) { p.access(a, true, sh, p.m.cfg.MissOverlap) }

// LoadSeq simulates one read within a sequential sweep: misses overlap
// through the MSHRs, so their latency divides by Config.MissOverlap.
func (p *Proc) LoadSeq(a Addr, sh Sharing) {
	p.access(a, false, sh, p.m.cfg.MissOverlap)
}

// StoreSeq simulates one write within a sequential sweep.
func (p *Proc) StoreSeq(a Addr, sh Sharing) {
	p.access(a, true, sh, p.m.cfg.MissOverlap)
}

// LoadBlock simulates a sequential read of [a, a+bytes), touching each
// cache line once with stream overlap.
func (p *Proc) LoadBlock(a Addr, bytes int, sh Sharing) {
	p.walkBlock(a, bytes, false, sh)
}

// StoreBlock simulates a sequential write of [a, a+bytes).
func (p *Proc) StoreBlock(a Addr, bytes int, sh Sharing) {
	p.walkBlock(a, bytes, true, sh)
}

// walkBlock touches each cache line of [a, a+bytes) once with stream
// overlap, chunked into page runs: the TLB translation and the page's
// home node are invariants of a run, so they are resolved once per page
// instead of once per line. Charge order — TLB refill at the first line
// of a page, then per-line writeback/miss charges — matches the legacy
// per-line walk exactly, so virtual times are byte-identical.
func (p *Proc) walkBlock(a Addr, bytes int, write bool, sh Sharing) {
	if bytes <= 0 {
		return
	}
	cfg := &p.m.cfg
	line := Addr(cfg.Cache.LineSize)
	end := a + Addr(bytes)
	overlap := cfg.MissOverlap
	la := p.cache.LineAddr(a)
	pageSize := Addr(cfg.TLB.PageSize)
	if line > pageSize || p.pc != nil {
		// Degenerate geometry (line larger than page): no page run to
		// hoist; take the per-access path. Paranoid mode takes it too:
		// routing every block access through the fully-hooked per-access
		// path both shadows each reference individually and turns the
		// byte-identical-outputs requirement into a whole-run
		// differential test of the page-run hoisting below.
		for ; la < end; la += line {
			p.access(la, write, sh, overlap)
		}
		return
	}
	as := p.m.as
	for la < end {
		// One page run: lines in [la, runEnd). Lines never straddle
		// pages (both sizes are powers of two with line <= page).
		runEnd := (la &^ (pageSize - 1)) + pageSize
		if runEnd > end {
			runEnd = end
		}
		nLines := uint64((runEnd - la + line - 1) / line)
		if p.tlb.AccessN(la, nLines) {
			p.chargeLocal(cfg.TLBMissNs)
		}
		home, uniform := as.PageHome(la)
		for ; la < runEnd; la += line {
			res := p.cache.Access(la, write)
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
			if res.Hit {
				continue
			}
			if cfg.FlatMemory {
				p.chargeLocal(cfg.Topology.LocalLatency)
				continue
			}
			h := home
			if !uniform {
				h = as.HomeOf(la)
			}
			p.missChargeHome(h, write, sh, overlap)
		}
	}
}

// BulkTransfer simulates a pipelined block transfer of bytes between this
// processor's node and node other (direction does not change the cost):
// one transaction latency plus wire time for the payload, charged to RMEM
// (or LMEM when other is the local node). When intoCache is true the
// destination lines land in this processor's cache, displacing whatever
// was there (a SHMEM get fills the requester's cache; a put does not).
// dst gives the destination addresses used for the cache installation.
func (p *Proc) BulkTransfer(otherNode int, bytes int, dst Addr, intoCache bool) {
	if bytes <= 0 {
		return
	}
	p.stats.Traffic.Messages++
	lat := p.m.top.ReadLatency(p.Node, otherNode) + p.m.top.TransferTime(bytes)
	if otherNode == p.Node {
		p.chargeLocal(lat)
	} else {
		p.stats.Traffic.RemoteBytes += int64(bytes)
		p.chargeRemote(lat)
	}
	if intoCache {
		line := Addr(p.m.cfg.Cache.LineSize)
		end := dst + Addr(bytes)
		for la := p.cache.LineAddr(dst); la < end; la += line {
			res := p.cache.Access(la, true)
			if p.pc != nil {
				p.pc.checkCacheAccess(p, la, true, res)
			}
			if res.WriteBack {
				p.chargeWriteback(res.WritebackAddr)
			}
		}
	}
}

// CacheContains reports whether this processor's cache currently holds
// the line of a (for tests and model validation).
func (p *Proc) CacheContains(a Addr) bool { return p.cache.Contains(a) }

// InvalidateLine drops a line from this processor's cache (used when
// another processor's write semantically invalidates it).
func (p *Proc) InvalidateLine(a Addr) {
	present, dirty := p.cache.Invalidate(a)
	if p.pc != nil {
		p.pc.checkInvalidate(p, a, present, dirty)
	}
}

// InvalidateRange drops every line of [a, a+bytes) from this processor's
// cache: another agent (an incoming message, a remote put) overwrote the
// region, so locally cached copies are stale.
func (p *Proc) InvalidateRange(a Addr, bytes int) {
	if bytes <= 0 {
		return
	}
	line := Addr(p.m.cfg.Cache.LineSize)
	end := a + Addr(bytes)
	for la := p.cache.LineAddr(a); la < end; la += line {
		present, dirty := p.cache.Invalidate(la)
		if p.pc != nil {
			p.pc.checkInvalidate(p, la, present, dirty)
		}
	}
}
