package machine

import (
	"testing"

	"repro/internal/topology"
)

// TestPriceTableAcrossTopologies proves the distance-class memo is exact
// on every registered interconnect: for each network kind the memoized
// entry of every (sharing class, write, requester, home) combination
// must equal a fresh priceFor/wbPriceFor computation for that exact node
// pair, bit for bit. Run at 24 processors — a router count that is not a
// power of two — so it also pins that only the hypercube still carries
// that restriction.
func TestPriceTableAcrossTopologies(t *testing.T) {
	for _, kind := range topology.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			procs := 24
			if kind == topology.KindHypercube {
				// The hypercube legitimately rejects 24 procs (6 routers).
				cfg := Origin2000Scaled(24)
				cfg.Topology.Kind = kind
				if _, err := New(cfg); err == nil {
					t.Fatal("hypercube accepted a non-power-of-two router count")
				}
				procs = 16
			}
			cfg := Origin2000Scaled(procs)
			cfg.Topology.Kind = kind
			m, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			params := m.cfg.Coherence
			n := m.top.Nodes()
			if got := len(m.prices.writeback); got != m.top.NumDistanceClasses() {
				t.Errorf("writeback memo has %d entries, want NumDistanceClasses() = %d",
					got, m.top.NumDistanceClasses())
			}
			for req := 0; req < n; req++ {
				for home := 0; home < n; home++ {
					for _, sh := range allSharings {
						for _, write := range []bool{false, true} {
							want := priceFor(m.top, m.proto, params, sh, write, req, home)
							got := m.prices.missEntry(sh, write, req, home)
							if got != want {
								t.Fatalf("%s: missEntry(%v, write=%v, req=%d, home=%d) = %+v, want %+v",
									kind, sh, write, req, home, got, want)
							}
						}
					}
					want := wbPriceFor(m.top, m.proto, params, req, home)
					if got := m.prices.writebackEntry(req, home); got != want {
						t.Fatalf("%s: writebackEntry(%d, %d) = %+v, want %+v", kind, req, home, got, want)
					}
				}
			}
		})
	}
}

// TestMachineTopologyKinds builds a machine on every interconnect at a
// ≥128-processor scale and sanity-checks the shape accessors — the memo
// staying O(classes) is what makes these sizes cheap to construct.
func TestMachineTopologyKinds(t *testing.T) {
	for _, kind := range topology.Kinds() {
		cfg := Origin2000Scaled(128)
		cfg.Topology.Kind = kind
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%s at 128 procs: %v", kind, err)
		}
		if got := m.Topology().Kind(); got != kind {
			t.Errorf("Topology().Kind() = %q, want %q", got, kind)
		}
		if m.Procs() != 128 {
			t.Errorf("%s: Procs() = %d, want 128", kind, m.Procs())
		}
	}
}
