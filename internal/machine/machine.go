// Package machine is the execution-driven simulator of a cache-coherent
// DSM multiprocessor in the style of the SGI Origin2000.
//
// Simulated processors are goroutines running real algorithm code over
// real data; every modeled memory access flows through a per-processor
// cache and TLB model and is priced by the directory coherence protocol
// engine and the machine topology. Each processor accumulates virtual
// time split into the paper's BUSY / LMEM / RMEM / SYNC buckets.
// Synchronization primitives reconcile virtual clocks deterministically,
// so a run's simulated times are a pure function of its inputs.
package machine

import (
	"fmt"
	"sync"

	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/memsys"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg   Config
	top   topology.Network
	as    *memsys.AddressSpace
	proto *coherence.Protocol
	// prices memoizes every charge the protocol can produce for this
	// topology (see pricing.go); proto remains the reference oracle.
	prices *priceTable
	procs  []*Proc

	barrier *Barrier

	// tracing makes the next Run record a virtual-time event trace.
	tracing bool

	// checker collects paranoid-mode violations, nil unless
	// Config.Paranoid (see internal/check and paranoid.go).
	checker *check.Checker

	// arena is the slab memory this machine's arrays have borrowed from
	// the process-wide pool; Release returns it (see arena.go). arenaMu
	// guards it: Grow reallocations happen inside Run bodies, so
	// concurrent processors can borrow slabs at the same time.
	arenaMu sync.Mutex
	arena   [][]uint64
}

// New builds a machine from cfg. The configuration is validated and its
// zero-valued defaults filled in.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	top, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	as, err := memsys.New(cfg.TLB.PageSize, top.Nodes(), top.NodeOf)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		top:   top,
		as:    as,
		proto: coherence.NewProtocol(top, cfg.Coherence),
	}
	// Precompute the coherence pricing table before processors are
	// built: each Proc caches its own row pointers.
	m.prices = newPriceTable(top, m.proto, cfg.Coherence)
	if cfg.Paranoid {
		// The checker must exist before processors are built: each Proc
		// attaches its paranoid shadow at construction.
		m.checker = check.New()
	}
	n := cfg.Topology.Processors
	m.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		m.procs[i] = newProc(m, i)
	}
	m.barrier = NewBarrier(n, m.barrierCost())
	return m, nil
}

// MustNew is New but panics on error; for static experiment presets.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's (validated) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Topology returns the machine's interconnect.
func (m *Machine) Topology() topology.Network { return m.top }

// AddressSpace returns the simulated address space.
func (m *Machine) AddressSpace() *memsys.AddressSpace { return m.as }

// Procs returns the number of processors.
func (m *Machine) Procs() int { return len(m.procs) }

// Proc returns processor i (useful in tests; application code receives
// its Proc from Run).
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

func (m *Machine) barrierCost() float64 {
	p := len(m.procs)
	logs := 0
	for 1<<logs < p {
		logs++
	}
	return m.cfg.BarrierBaseNs + m.cfg.BarrierPerLogNs*float64(logs)
}

// EnableTracing makes subsequent Runs record a deterministic
// virtual-time event trace, attached to Result.Trace. Tracing costs
// nothing when not enabled (every emission site is a nil check).
func (m *Machine) EnableTracing() { m.tracing = true }

// DisableTracing stops trace recording for subsequent Runs.
func (m *Machine) DisableTracing() { m.tracing = false }

// Checker returns the paranoid-mode violation collector, or nil when the
// machine was built without Config.Paranoid. Callers should consult
// Checker().Err() after a run; the simulator records violations rather
// than halting, so a run always completes with its normal outputs.
func (m *Machine) Checker() *check.Checker { return m.checker }

// Result reports one parallel run.
type Result struct {
	// TimeNs is the simulated wall time: the max over processors of
	// their final virtual clocks.
	TimeNs float64
	// PerProc is each processor's stats.
	PerProc []ProcStats
	// Trace is the run's virtual-time event trace, nil unless the
	// machine had tracing enabled.
	Trace *trace.Trace
}

// MaxBreakdown returns the stats of the processor that finished last.
func (r *Result) MaxBreakdown() Breakdown {
	var best Breakdown
	for _, ps := range r.PerProc {
		if ps.Breakdown.Total() > best.Total() {
			best = ps.Breakdown
		}
	}
	return best
}

// TotalBreakdown sums all processors' breakdowns.
func (r *Result) TotalBreakdown() Breakdown {
	var sum Breakdown
	for _, ps := range r.PerProc {
		sum.Add(ps.Breakdown)
	}
	return sum
}

// Run executes body once per processor, each on its own goroutine, and
// returns the collected result. Virtual clocks and stats are reset
// first, so a machine can host several runs; caches and TLBs are NOT
// reset between runs unless ResetMemory is called (warm caches across
// phases of one experiment are intentional).
//
// A panic in any processor body is re-raised on the caller's goroutine
// after all other processors finish.
func (m *Machine) Run(body func(p *Proc)) *Result {
	var tr *trace.Trace
	if m.tracing {
		tr = trace.New(len(m.procs))
	}
	for _, p := range m.procs {
		p.resetClock()
		if tr != nil {
			p.tr = tr.Procs[p.ID]
		}
	}
	m.barrier.Reset()
	var wg sync.WaitGroup
	panics := make([]any, len(m.procs))
	for _, p := range m.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p.ID] = r
				}
			}()
			body(p)
		}(p)
	}
	wg.Wait()
	for i, pv := range panics {
		if pv != nil {
			panic(fmt.Sprintf("machine: processor %d panicked: %v", i, pv))
		}
	}
	res := &Result{PerProc: make([]ProcStats, len(m.procs))}
	for i, p := range m.procs {
		res.PerProc[i] = p.snapshot()
		if p.clock > res.TimeNs {
			res.TimeNs = p.clock
		}
	}
	if m.checker != nil {
		// End-of-run structural checks: accounting identities, counter
		// conservation, trace/Tx alignment (see paranoid.go).
		for i, p := range m.procs {
			p.pc.finishRun(p, res.PerProc[i])
		}
	}
	if tr != nil {
		for _, p := range m.procs {
			p.tr.CloseSpan(p.clock)
		}
		tr.TimeNs = res.TimeNs
		fillMetrics(tr, res)
		res.Trace = tr
	}
	return res
}

// fillMetrics flattens the run's statistics into the trace's
// machine-readable metrics map: whole-run and per-phase breakdowns,
// traffic by coherence-transaction class, and cache/TLB rates. Keys are
// stable, so identical runs produce identical metric exports.
func fillMetrics(tr *trace.Trace, res *Result) {
	var total Breakdown
	var traffic Traffic
	var accesses, misses, writebacks, tlbMisses uint64
	phases := make(map[string]Breakdown)
	for _, ps := range res.PerProc {
		total.Add(ps.Breakdown)
		traffic.RemoteBytes += ps.Traffic.RemoteBytes
		traffic.Messages += ps.Traffic.Messages
		traffic.ProtocolTransactions += ps.Traffic.ProtocolTransactions
		accesses += ps.CacheAccesses
		misses += ps.CacheMisses
		writebacks += ps.Writebacks
		tlbMisses += ps.TLBMisses
		for name, b := range ps.Phases {
			acc := phases[name]
			acc.Add(b)
			phases[name] = acc
		}
	}
	tr.AddMetric("time_ns", res.TimeNs)
	tr.AddMetric("procs", float64(len(res.PerProc)))
	addBreakdown := func(prefix string, b Breakdown) {
		tr.AddMetric(prefix+".busy_ns", b.Busy)
		tr.AddMetric(prefix+".lmem_ns", b.LMem)
		tr.AddMetric(prefix+".rmem_ns", b.RMem)
		tr.AddMetric(prefix+".sync_ns", b.Sync)
	}
	addBreakdown("breakdown", total)
	for name, b := range phases {
		addBreakdown("phase."+name, b)
	}
	tr.AddMetric("traffic.remote_bytes", float64(traffic.RemoteBytes))
	tr.AddMetric("traffic.messages", float64(traffic.Messages))
	tr.AddMetric("traffic.protocol_transactions", float64(traffic.ProtocolTransactions))
	tx := tr.TxTotals()
	for c := trace.TxClass(0); c < trace.NumTxClasses; c++ {
		tr.AddMetric("tx."+c.String(), float64(tx[c]))
	}
	tr.AddMetric("cache.accesses", float64(accesses))
	tr.AddMetric("cache.misses", float64(misses))
	tr.AddMetric("cache.writebacks", float64(writebacks))
	if accesses > 0 {
		tr.AddMetric("cache.miss_rate", float64(misses)/float64(accesses))
	} else {
		tr.AddMetric("cache.miss_rate", 0)
	}
	tr.AddMetric("tlb.misses", float64(tlbMisses))
	tr.AddMetric("events", float64(tr.EventCount()))
	tr.AddMetric("spans", float64(tr.SpanCount()))
}

// ResetMemory flushes every processor's cache and TLB (e.g. between
// unrelated experiments sharing one machine).
func (m *Machine) ResetMemory() {
	for _, p := range m.procs {
		dirty := p.cache.Flush()
		p.tlb.Flush()
		if p.pc != nil {
			p.pc.checkFlush(p, dirty)
		}
	}
}

// Barrier blocks p until every processor has arrived, then releases all
// of them at the same virtual time (max arrival + barrier cost), charging
// each processor's wait to SYNC.
func (m *Machine) Barrier(p *Proc) {
	m.barrier.Wait(p)
}
