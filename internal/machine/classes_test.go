package machine

import (
	"testing"

	"repro/internal/coherence"
)

// TestDeclaredClassesMatchLiveDirectory validates the central modeling
// shortcut (DESIGN.md §4): pricing misses by declared sharing class must
// agree with driving the live directory protocol through the same access
// sequence.
func TestDeclaredClassesMatchLiveDirectory(t *testing.T) {
	m := testMachine(t, 8)
	cfg := m.Config()
	proto := coherence.NewProtocol(m.Topology(), cfg.Coherence)

	// A line homed on node 2 (proc 4's node), previously written by its
	// owner, then read by proc 0 (node 0).
	arr := NewArrayOnProc[uint32](m, "line", 64, 4)
	addr := arr.Addr(0)
	line := uint64(addr) / uint64(cfg.Cache.LineSize)
	home := m.AddressSpace().HomeOf(addr)

	dir := coherence.NewDirectory(proto, func(uint64) int { return home })
	// Owner (node 2) writes: Unowned -> Exclusive.
	dir.Write(2, line)
	// Reader on node 0: 3-hop intervention.
	want := dir.Read(0, line)

	var got float64
	m.Run(func(p *Proc) {
		switch p.ID {
		case 4:
			arr.Store(p, 0, 7, Private)
		case 0:
			m.Barrier(p)
			before := p.Stats().Breakdown.RMem
			arr.Load(p, 0, RemoteProduced)
			got = p.Stats().Breakdown.RMem - before
		}
		if p.ID != 0 {
			m.Barrier(p)
		}
	})
	if diff := got - want.Latency; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("declared-class charge %v != live-directory charge %v", got, want.Latency)
	}
}

// TestDeclaredWriteMatchesOwnershipTransfer does the same for the
// ConflictWrite class: writing into a partition whose owner caches it.
func TestDeclaredWriteMatchesOwnershipTransfer(t *testing.T) {
	m := testMachine(t, 8)
	cfg := m.Config()
	proto := coherence.NewProtocol(m.Topology(), cfg.Coherence)

	arr := NewArrayOnProc[uint32](m, "wline", 64, 6) // homed on node 3
	addr := arr.Addr(0)
	home := m.AddressSpace().HomeOf(addr)

	// Live protocol: requester node 0, line Exclusive at its home node.
	want := proto.Write(0, home, home, coherence.Exclusive, nil)

	var got float64
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		before := p.Stats().Breakdown.RMem
		arr.Load(p, 0, Private) // fill... (read first so the write below is a write hit?)
		_ = before
		// Use a distinct line for the pure write-miss measurement.
		before = p.Stats().Breakdown.RMem
		arr.Store(p, 32, 1, ConflictWrite) // second cache line of the array
		got = p.Stats().Breakdown.RMem - before
	})
	// Stores post through the write buffer: the charge is the protocol
	// latency divided by the machine's miss overlap.
	wantNs := want.Latency / cfg.MissOverlap
	if diff := got - wantNs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ConflictWrite charge %v != ownership-transfer charge %v (latency %v / overlap %v)",
			got, wantNs, want.Latency, cfg.MissOverlap)
	}
}
