package machine

// Breakdown is the paper's per-processor execution-time decomposition,
// all in nanoseconds of simulated time.
type Breakdown struct {
	// Busy is CPU time executing instructions, assuming no memory stalls.
	Busy float64
	// LMem is stall time for cache misses satisfied by local memory
	// (includes TLB refills).
	LMem float64
	// RMem is stall time communicating remote data.
	RMem float64
	// Sync is time spent at synchronization events (barriers, message
	// waits, flow-control stalls).
	Sync float64
}

// Total returns the sum of all buckets.
func (b Breakdown) Total() float64 { return b.Busy + b.LMem + b.RMem + b.Sync }

// Mem returns LMem+RMem, the lumped MEM category the paper reports for
// CC-SAS programs (whose tools could not split local from remote).
func (b Breakdown) Mem() float64 { return b.LMem + b.RMem }

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Busy += o.Busy
	b.LMem += o.LMem
	b.RMem += o.RMem
	b.Sync += o.Sync
}

// Traffic counts the communication work one processor generated.
type Traffic struct {
	// RemoteBytes is the total bytes moved to or from remote nodes.
	RemoteBytes int64
	// Messages is the number of explicit messages or one-sided transfers.
	Messages int64
	// ProtocolTransactions is the number of coherence protocol
	// transactions (misses priced remotely, writebacks, invalidations).
	ProtocolTransactions int64
}

// ProcStats is everything recorded about one simulated processor.
type ProcStats struct {
	Breakdown Breakdown
	Traffic   Traffic
	// CacheAccesses/CacheMisses/TLBMisses summarize the memory models.
	CacheAccesses uint64
	CacheMisses   uint64
	Writebacks    uint64
	TLBMisses     uint64
	// Phases holds per-phase breakdowns when the program labeled its
	// phases with Proc.SetPhase.
	Phases map[string]Breakdown
}
