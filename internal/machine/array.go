package machine

import (
	"fmt"
	"reflect"

	"repro/internal/memsys"
)

// Array couples a Go slice holding real data with a region of the
// simulated address space, so algorithms can operate on data normally
// while charging simulated memory costs for the corresponding addresses.
type Array[T any] struct {
	// Data is the backing slice; index i corresponds to address Addr(i).
	Data []T

	m      *Machine
	region *memsys.Region
	// base caches region.Base() so the per-element address computation
	// in Load/Store stays free of pointer chasing and inlines into the
	// sorts' inner loops.
	base     Addr
	elemSize int
}

// newArray wraps a region in an n-element Array whose backing slice
// comes from the machine's slab arena (arena.go).
func newArray[T any](m *Machine, r *memsys.Region, n, elemSize int) *Array[T] {
	return &Array[T]{
		Data: arenaMake[T](m, n, elemSize),
		m:    m, region: r, base: r.Base(), elemSize: elemSize,
	}
}

// elemSizeOf returns the in-memory size of T.
func elemSizeOf[T any]() int {
	var zero T
	return int(reflect.TypeOf(zero).Size())
}

// NewArrayBlocked allocates an n-element array whose address range is
// partitioned across the machine's processors (partition i homed on
// processor i's node), matching how the sorting programs distribute
// their key arrays.
func NewArrayBlocked[T any](m *Machine, name string, n int) *Array[T] {
	es := elemSizeOf[T]()
	r := m.as.AllocBlocked(name, n*es, m.Procs())
	return newArray[T](m, r, n, es)
}

// NewArrayRoundRobin allocates an n-element array with pages spread
// round-robin across nodes (how a shared global structure with no
// natural owner is placed).
func NewArrayRoundRobin[T any](m *Machine, name string, n int) *Array[T] {
	es := elemSizeOf[T]()
	r := m.as.AllocRoundRobin(name, n*es)
	return newArray[T](m, r, n, es)
}

// NewArrayOnProc allocates an n-element array homed entirely on the node
// of processor proc (private data, symmetric-heap segments, message
// buffers).
func NewArrayOnProc[T any](m *Machine, name string, n, proc int) *Array[T] {
	es := elemSizeOf[T]()
	r := m.as.AllocOnNode(name, n*es, m.top.NodeOf(proc))
	return newArray[T](m, r, n, es)
}

// NewArrayReserve allocates an address range for capElems elements homed
// on proc's node, but with an initially empty Data slice; Grow extends
// the usable prefix on demand. This supports buffers whose eventual fill
// is data-dependent (e.g. sample sort's receive arrays) without
// committing host memory for the worst case up front. Addresses are
// assigned at allocation time, so simulations stay deterministic.
func NewArrayReserve[T any](m *Machine, name string, capElems, proc int) *Array[T] {
	es := elemSizeOf[T]()
	r := m.as.AllocOnNode(name, capElems*es, m.top.NodeOf(proc))
	return &Array[T]{Data: nil, m: m, region: r, base: r.Base(), elemSize: es}
}

// Grow extends Data to hold at least n elements (bounded by the reserved
// capacity) and returns the array. Growing is a host-side operation with
// no simulated cost. Capacity at least doubles on each reallocation
// (bounded by the reservation), so growing an array one chunk at a time
// costs O(n) copying overall, not O(n²); reslices within capacity copy
// nothing. New elements read as zero either way.
func (a *Array[T]) Grow(n int) *Array[T] {
	if n <= len(a.Data) {
		return a
	}
	if n*a.elemSize > a.region.Size() {
		panic(fmt.Sprintf("machine: Grow(%d) exceeds region %q capacity %d elems",
			n, a.region.Name(), a.region.Size()/a.elemSize))
	}
	if n <= cap(a.Data) {
		// Slab tails may hold stale bytes from a previous borrower; a
		// fresh make-backed tail is already zero, but clearing is cheap
		// and keeps the contract uniform.
		ext := a.Data[len(a.Data):n]
		clear(ext)
		a.Data = a.Data[:n]
		return a
	}
	newCap := 2 * cap(a.Data)
	if newCap < n {
		newCap = n
	}
	if max := a.region.Size() / a.elemSize; newCap > max {
		newCap = max
	}
	grown := arenaMake[T](a.m, newCap, a.elemSize)
	copy(grown, a.Data)
	a.Data = grown[:n]
	return a
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.Data) }

// Addr returns the simulated address of element i.
func (a *Array[T]) Addr(i int) Addr {
	return a.base + Addr(i*a.elemSize)
}

// ElemSize returns the element size in bytes.
func (a *Array[T]) ElemSize() int { return a.elemSize }

// Region returns the backing region.
func (a *Array[T]) Region() *memsys.Region { return a.region }

// Bytes returns the byte length of n elements.
func (a *Array[T]) Bytes(n int) int { return n * a.elemSize }

// Load reads element i with the given sharing class, charging the
// simulated access and returning the value.
func (a *Array[T]) Load(p *Proc, i int, sh Sharing) T {
	p.Load(a.Addr(i), sh)
	return a.Data[i]
}

// Store writes element i with the given sharing class.
func (a *Array[T]) Store(p *Proc, i int, v T, sh Sharing) {
	p.Store(a.Addr(i), sh)
	a.Data[i] = v
}

// LoadSeq reads element i as part of a sequential sweep (misses overlap
// through the MSHRs).
func (a *Array[T]) LoadSeq(p *Proc, i int, sh Sharing) T {
	p.LoadSeq(a.Addr(i), sh)
	return a.Data[i]
}

// StoreSeq writes element i as part of a sequential sweep.
func (a *Array[T]) StoreSeq(p *Proc, i int, v T, sh Sharing) {
	p.StoreSeq(a.Addr(i), sh)
	a.Data[i] = v
}

// LoadRange charges a sequential read of elements [lo, hi). The caller
// reads a.Data[lo:hi] directly for the values.
func (a *Array[T]) LoadRange(p *Proc, lo, hi int, sh Sharing) {
	if hi <= lo {
		return
	}
	p.LoadBlock(a.Addr(lo), (hi-lo)*a.elemSize, sh)
}

// StoreRange charges a sequential write of elements [lo, hi).
func (a *Array[T]) StoreRange(p *Proc, lo, hi int, sh Sharing) {
	if hi <= lo {
		return
	}
	p.StoreBlock(a.Addr(lo), (hi-lo)*a.elemSize, sh)
}
