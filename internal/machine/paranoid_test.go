package machine

import (
	"strings"
	"testing"
)

// TestZeroChargePhasePruned is the regression test for the
// zero-accesses-phase edge: a phase label that is set but never charged
// (barrier-only phase resolving at zero cost, or a label immediately
// replaced) used to surface as an all-zero Breakdown in
// ProcStats.Phases, so the per-phase BUSY+LMEM+RMEM+SYNC identity held
// only vacuously and downstream consumers saw phantom phases. The
// snapshot now prunes zero-charge accumulators: every reported phase
// has a non-trivial breakdown.
func TestZeroChargePhasePruned(t *testing.T) {
	m := MustNew(Origin2000Scaled(2))
	arr := NewArrayBlocked[int64](m, "t", 4096)
	res := m.Run(func(p *Proc) {
		p.SetPhase("ghost") // set and immediately replaced: zero charges
		p.SetPhase("work")
		lo, hi := p.ID*2048, (p.ID+1)*2048
		for i := lo; i < hi; i++ {
			arr.Store(p, i, int64(i), Private)
		}
		p.SetPhase("warm") // every access below hits the warm cache
		for i := lo; i < hi; i++ {
			arr.Load(p, i, Private)
		}
		p.SetPhase("")
	})
	for i, ps := range res.PerProc {
		if _, ok := ps.Phases["ghost"]; ok {
			t.Errorf("proc %d: zero-charge phase \"ghost\" reported", i)
		}
		if _, ok := ps.Phases["warm"]; ok {
			t.Errorf("proc %d: phase \"warm\" (all cache hits, zero charges) reported", i)
		}
		b, ok := ps.Phases["work"]
		if !ok {
			t.Fatalf("proc %d: charged phase \"work\" missing from %v", i, ps.Phases)
		}
		if b.Total() <= 0 {
			t.Errorf("proc %d: phase \"work\" has empty breakdown %+v", i, b)
		}
		for name, b := range ps.Phases {
			if b == (Breakdown{}) {
				t.Errorf("proc %d: phase %q reported an all-zero breakdown", i, name)
			}
			if got := b.Busy + b.LMem + b.RMem + b.Sync; got != b.Total() {
				t.Errorf("proc %d: phase %q identity broken: %v != %v", i, name, got, b.Total())
			}
		}
	}
}

// TestParanoidRunClean drives a paranoid machine through every hooked
// code path — scalar and block accesses across all sharing classes,
// barriers, phases, invalidations, bulk transfers, memory resets and
// repeated runs — and requires a clean checker.
func TestParanoidRunClean(t *testing.T) {
	cfg := Origin2000Scaled(4)
	cfg.Paranoid = true
	m := MustNew(cfg)
	arr := NewArrayBlocked[int64](m, "t", 4*1024)
	body := func(p *Proc) {
		p.SetPhase("fill")
		lo, hi := p.ID*1024, (p.ID+1)*1024
		for i := lo; i < hi; i++ {
			arr.Store(p, i, int64(i), Private)
		}
		m.Barrier(p)
		p.SetPhase("steal")
		peer := (p.ID + 1) % 4
		for i := peer * 1024; i < peer*1024+1024; i += 4 {
			arr.Load(p, i, RemoteProduced)
			arr.Load(p, i+1, SharedRead)
			arr.Store(p, i+2, 0, ConflictWrite)
			arr.Load(p, i+3, DirtyElsewhere)
		}
		m.Barrier(p)
		p.SetPhase("block")
		p.LoadBlock(arr.Addr(lo), arr.Bytes(1024), SharedRead)
		p.InvalidateRange(arr.Addr(lo), arr.Bytes(64))
		p.BulkTransfer((p.Node+1)%m.Topology().Nodes(), 4096, arr.Addr(lo), true)
		p.SetPhase("")
	}
	for run := 0; run < 2; run++ {
		m.Run(body)
		if err := m.Checker().Err(); err != nil {
			t.Fatalf("run %d: paranoid violations on a correct machine: %v", run, err)
		}
	}
	m.ResetMemory() // exercises the flush oracle
	m.Run(body)
	if err := m.Checker().Err(); err != nil {
		t.Fatalf("post-reset run: paranoid violations: %v", err)
	}
}

// TestParanoidCatchesClockRegression rewinds a processor's virtual
// clock mid-run and asserts the monotonicity invariant reports it with
// the proc and phase named.
func TestParanoidCatchesClockRegression(t *testing.T) {
	cfg := Origin2000Scaled(1)
	cfg.Paranoid = true
	m := MustNew(cfg)
	arr := NewArrayBlocked[int64](m, "t", 64)
	m.Run(func(p *Proc) {
		p.SetPhase("rewind")
		arr.Store(p, 0, 1, Private)
		p.clock -= 1000 // deliberate model bug: time flows backwards
		arr.Store(p, 1, 1, Private)
		p.SetPhase("")
	})
	ck := m.Checker()
	if ck.Count() == 0 {
		t.Fatal("clock regression went undetected")
	}
	err := ck.Err()
	if err == nil || !strings.Contains(err.Error(), "clock-monotonic") {
		t.Fatalf("Err() = %v, want clock-monotonic violation", err)
	}
	if !strings.Contains(err.Error(), `phase="rewind"`) {
		t.Errorf("violation should name the phase: %v", err)
	}
}

// TestParanoidDisabledZeroAlloc enforces the nil-checker contract,
// mirroring the trace subsystem's TestTracingDisabledZeroAlloc: with
// paranoid mode off (the default), the per-access hook guards allocate
// nothing — across cache hits, cold misses (the miss-charge hook),
// evictions with writebacks, phase switches and invalidations.
func TestParanoidDisabledZeroAlloc(t *testing.T) {
	m := MustNew(Origin2000Scaled(2))
	if m.Checker() != nil {
		t.Fatal("checker present on a non-paranoid machine")
	}
	const n = 1 << 15
	arr := NewArrayBlocked[int64](m, "t", n)
	p := m.Proc(0)
	p.resetClock()
	p.SetPhase("hot") // pre-warm the phase accumulator
	arr.Store(p, 0, 1, Private)

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p.SetPhase("hot")
		// Strided stores churn the cache: hits, cold misses and dirty
		// evictions all cross the paranoid hook sites.
		arr.Store(p, (i*61)&(n-1), 1, Private)
		arr.Load(p, (i*97)&(n-1), SharedRead)
		p.InvalidateLine(arr.Addr((i * 13) & (n - 1)))
		i++
	})
	if allocs != 0 {
		t.Errorf("hot path with paranoid mode off allocates %.1f/op, want 0", allocs)
	}
}
