package machine

import "testing"

// BenchmarkWalkBlock measures the page-run block walk (LoadBlock) over
// a blocked array far larger than the cache, the shape of the sorts'
// sequential key sweeps. The per-iteration unit is one 64 KB block
// (512 lines), so ns/op divides by 512 for a per-line cost.
func BenchmarkWalkBlock(b *testing.B) {
	m, err := New(Origin2000Scaled(4))
	if err != nil {
		b.Fatal(err)
	}
	arr := NewArrayBlocked[uint32](m, "keys", 1<<22) // 16 MB
	const block = 64 << 10
	elems := block / 4
	n := arr.Len()
	b.ResetTimer()
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		lo := 0
		for i := 0; i < b.N; i++ {
			arr.LoadRange(p, lo, lo+elems, SharedRead)
			lo += elems
			if lo+elems > n {
				lo = 0
			}
		}
	})
}

// BenchmarkScatterStore measures the scattered store path (Store with
// write-buffer overlap) over a footprint far larger than cache and TLB,
// the shape of the radix permutation phase.
func BenchmarkScatterStore(b *testing.B) {
	m, err := New(Origin2000Scaled(4))
	if err != nil {
		b.Fatal(err)
	}
	arr := NewArrayBlocked[uint32](m, "dst", 1<<22)
	n := arr.Len()
	b.ResetTimer()
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		x := uint64(1)
		for i := 0; i < b.N; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			arr.Store(p, int(x%uint64(n)), uint32(x), ConflictWrite)
		}
	})
}
