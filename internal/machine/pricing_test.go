package machine

import (
	"testing"

	"repro/internal/coherence"
)

// allSharings lists every Sharing class. The length check in
// TestPriceTableMatchesProtocol ties it to numPriceClasses, so adding a
// class without extending the pricing table (and this test) fails.
var allSharings = []Sharing{Private, RemoteProduced, SharedRead, ConflictWrite, DirtyElsewhere}

// TestPriceTableMatchesProtocol replays every pricing-table entry
// against the live coherence.Protocol, reproducing the legacy
// per-miss switch term for term. Comparisons are exact (==): the table
// must charge bit-identical floats, or simulated virtual times drift.
// It covers 100% of the Sharing classes and every (requester, home)
// node pair at 1-, 4-, 16- and 64-processor topologies.
//
// Protocol.Upgrade has no pricing-table row because missCharge never
// issued it: a store to SharedRead data is priced as a full Write with
// the home as sharer (the row checked here), matching the legacy
// switch.
func TestPriceTableMatchesProtocol(t *testing.T) {
	if len(allSharings)*2 != numPriceClasses {
		t.Fatalf("allSharings covers %d rows, pricing table has %d",
			len(allSharings)*2, numPriceClasses)
	}
	for _, procs := range []int{1, 4, 16, 64} {
		m := testMachine(t, procs)
		params := m.cfg.Coherence
		top := m.top
		proto := m.proto
		n := top.Nodes()
		avg := top.AverageReadLatency()
		for req := 0; req < n; req++ {
			for home := 0; home < n; home++ {
				remote := home != req
				for _, sh := range allSharings {
					for _, write := range []bool{false, true} {
						// The legacy missCharge transaction for this class.
						var res coherence.Result
						switch sh {
						case Private:
							if write {
								res = proto.Write(req, home, -1, coherence.Unowned, nil)
							} else {
								res = proto.Read(req, home, -1, coherence.Unowned, nil)
							}
						case RemoteProduced:
							if write {
								res = proto.Write(req, home, home, coherence.Exclusive, nil)
							} else {
								res = proto.Read(req, home, home, coherence.Exclusive, nil)
							}
						case SharedRead:
							if write {
								res = proto.Write(req, home, -1, coherence.Shared, []int{home})
							} else {
								res = proto.Read(req, home, -1, coherence.Shared, nil)
							}
						case ConflictWrite:
							res = proto.Write(req, home, home, coherence.Exclusive, nil)
						case DirtyElsewhere:
							res = coherence.Result{
								Latency: top.ReadLatency(req, home) + params.DirOccupancy +
									avg + avg + top.TransferTime(params.DataBytes),
								TrafficBytes: 2*params.CtrlBytes + 2*params.DataBytes,
							}
						}
						wantRemote := remote || sh == DirtyElsewhere
						e := m.prices.missEntry(sh, write, req, home)
						if e.latencyNs != res.Latency {
							t.Fatalf("procs=%d %v write=%v req=%d home=%d: latency %v, protocol %v",
								procs, sh, write, req, home, e.latencyNs, res.Latency)
						}
						if e.remote != wantRemote {
							t.Fatalf("procs=%d %v write=%v req=%d home=%d: remote=%v, want %v",
								procs, sh, write, req, home, e.remote, wantRemote)
						}
						if wantRemote && e.trafficBytes != int64(res.TrafficBytes) {
							t.Fatalf("procs=%d %v write=%v req=%d home=%d: traffic %d, protocol %d",
								procs, sh, write, req, home, e.trafficBytes, res.TrafficBytes)
						}
					}
				}
				// Writeback row: legacy chargeWriteback arithmetic.
				wbe := m.prices.writebackEntry(req, home)
				if !remote {
					if wbe.latencyNs != params.DirOccupancy || wbe.remote {
						t.Fatalf("procs=%d writeback req=%d home=%d: got %+v, want local DirOccupancy",
							procs, req, home, wbe)
					}
				} else {
					wb := proto.Writeback(req, home)
					wantLat := params.DirOccupancy + top.TransferTime(wb.TrafficBytes)
					if wbe.latencyNs != wantLat || !wbe.remote || wbe.trafficBytes != int64(wb.TrafficBytes) {
						t.Fatalf("procs=%d writeback req=%d home=%d: got %+v, want latency %v traffic %d",
							procs, req, home, wbe, wantLat, wb.TrafficBytes)
					}
				}
			}
		}
	}
}
