package machine

import (
	"sync"

	"repro/internal/trace"
)

// Barrier is a reusable virtual-time barrier: all members block until the
// last arrives, then every member's clock advances to the maximum arrival
// time plus the barrier cost, with the wait charged to SYNC.
//
// The release time is a deterministic function of the members' arrival
// clocks, so barriers keep the whole simulation deterministic no matter
// how the host schedules the goroutines.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members int
	cost    float64

	waiting  int
	maxClock float64
	gen      uint64
	// release is the release time of the generation that most recently
	// completed. It cannot be overwritten before every member of that
	// generation has read it, because overwriting requires all members to
	// arrive at the next episode, and a member still reading has not.
	release float64
}

// NewBarrier builds a barrier for the given member count and per-episode
// cost in nanoseconds.
func NewBarrier(members int, cost float64) *Barrier {
	b := &Barrier{members: members, cost: cost}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Members returns the number of participants.
func (b *Barrier) Members() int { return b.members }

// Reset clears arrival state between independent runs. It must not be
// called while any member is waiting.
func (b *Barrier) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waiting = 0
	b.maxClock = 0
	b.release = 0
}

// Wait blocks p until all members arrive and then advances p's clock to
// the common release time.
func (b *Barrier) Wait(p *Proc) {
	arrival := p.clock
	b.mu.Lock()
	myGen := b.gen
	if p.clock > b.maxClock {
		b.maxClock = p.clock
	}
	b.waiting++
	if b.waiting == b.members {
		b.release = b.maxClock + b.cost
		b.waiting = 0
		b.maxClock = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for myGen == b.gen {
			b.cond.Wait()
		}
	}
	rel := b.release
	b.mu.Unlock()

	p.WaitUntil(rel)
	if p.tr != nil {
		p.tr.Emit(trace.EvBarrier, arrival, rel-arrival, -1, 0)
	}
}
