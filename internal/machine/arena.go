package machine

import (
	"reflect"
	"sync"
	"unsafe"
)

// This file is the per-machine slab arena (DESIGN.md §13): Array backing
// slices are carved out of pooled []uint64 slabs instead of fresh heap
// allocations, and Machine.Release returns every slab a machine borrowed
// to a process-wide pool. A grid of experiment cells (paperfigs,
// bench_test) builds one machine per cell with near-identical array
// footprints, so after the first cell the steady state allocates no
// array memory at all (TestArenaReuse).
//
// Slabs hold only pointer-free element types (the sorts use uint32 keys
// and int32/int64 bookkeeping), so viewing a []uint64 slab as []T is
// safe for the garbage collector; any other element type silently falls
// back to a plain make.

// slabPool is the process-wide free list, bucketed by power-of-two word
// count. Machines borrow under a mutex at array-construction time — not
// on any simulated-access path — so contention is negligible.
var slabPool struct {
	mu      sync.Mutex
	classes [48][][]uint64
}

// slabClass returns the smallest power-of-two class holding words words.
func slabClass(words int) int {
	c := 0
	for 1<<c < words {
		c++
	}
	return c
}

// slabGet pops a pooled slab of at least words words, or allocates one.
func slabGet(words int) []uint64 {
	c := slabClass(words)
	slabPool.mu.Lock()
	if free := slabPool.classes[c]; len(free) > 0 {
		s := free[len(free)-1]
		free[len(free)-1] = nil
		slabPool.classes[c] = free[:len(free)-1]
		slabPool.mu.Unlock()
		return s
	}
	slabPool.mu.Unlock()
	return make([]uint64, 1<<c)
}

// slabPut returns slabs to the pool.
func slabPut(slabs [][]uint64) {
	slabPool.mu.Lock()
	for _, s := range slabs {
		c := slabClass(cap(s))
		slabPool.classes[c] = append(slabPool.classes[c], s[:cap(s)])
	}
	slabPool.mu.Unlock()
}

// arenaBacked reports whether []T may be backed by slab memory: T must
// be a pointer-free numeric type no more strictly aligned than uint64.
func arenaBacked[T any]() bool {
	var zero T
	switch reflect.TypeOf(zero).Kind() {
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int,
		reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// arenaMake returns a zeroed n-element slice backed by a slab borrowed
// from the pool (recorded for release with the machine), with capacity
// extending over the whole slab so Grow can extend in place. Non-numeric
// element types fall back to a plain allocation.
func arenaMake[T any](m *Machine, n, elemSize int) []T {
	if n == 0 {
		return nil
	}
	if m == nil || !arenaBacked[T]() {
		return make([]T, n)
	}
	words := (n*elemSize + 7) / 8
	s := slabGet(words)
	clear(s[:words])
	m.arenaMu.Lock()
	m.arena = append(m.arena, s)
	m.arenaMu.Unlock()
	full := unsafe.Slice((*T)(unsafe.Pointer(&s[0])), cap(s)*8/elemSize)
	return full[:n]
}

// Release returns every slab this machine's arrays borrowed to the
// process-wide pool. Call it when the machine and everything aliasing
// its arrays' Data slices are done: released slabs are handed to later
// machines, which zero and overwrite them. Safe to call more than once;
// the machine remains usable, but arrays created before Release must no
// longer be used.
func (m *Machine) Release() {
	m.arenaMu.Lock()
	slabs := m.arena
	m.arena = nil
	m.arenaMu.Unlock()
	if len(slabs) > 0 {
		slabPut(slabs)
	}
}
