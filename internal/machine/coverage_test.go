package machine

import "testing"

func TestProcAccessorsAndCharges(t *testing.T) {
	m := testMachine(t, 4)
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		if p.Machine() != m {
			t.Error("Machine accessor wrong")
		}
		p.SetPhase("x")
		if p.Phase() != "x" {
			t.Error("Phase accessor wrong")
		}
		p.SyncNs(100)
		p.LocalMemNs(50)
		p.RemoteMemNs(25)
		p.AddMessageTraffic(1024, 2)
		st := p.Stats()
		if st.Breakdown.Sync < 100 || st.Breakdown.LMem < 50 || st.Breakdown.RMem < 25 {
			t.Errorf("charges not recorded: %+v", st.Breakdown)
		}
		if st.Traffic.RemoteBytes != 1024 || st.Traffic.Messages != 2 {
			t.Errorf("traffic: %+v", st.Traffic)
		}
		ph := st.Phases["x"]
		if ph.Sync < 100 || ph.LMem < 50 || ph.RMem < 25 {
			t.Errorf("phase charges not recorded: %+v", ph)
		}
		// SetContention floors at 1.
		p.SetContention(0.5)
		if p.contention != 1 {
			t.Errorf("contention floored to %v", p.contention)
		}
		if p.ContentionFactor(4, true) <= 1 {
			t.Error("ContentionFactor for 4 procs should exceed 1")
		}
		if p.ScatteredContentionFactor(4, 1<<20) <= 1 {
			t.Error("ScatteredContentionFactor at heavy load should exceed 1")
		}
		p.SetPhase("")
	})
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestMustNewOK(t *testing.T) {
	m := MustNew(Origin2000Scaled(2))
	if m.Procs() != 2 {
		t.Errorf("procs = %d", m.Procs())
	}
}

func TestArrayRoundRobinAndRegion(t *testing.T) {
	m := testMachine(t, 4)
	a := NewArrayRoundRobin[int64](m, "rr", 4096)
	if a.Region() == nil || a.Region().Name() != "rr" {
		t.Error("region accessor wrong")
	}
	// Round-robin pages land on different nodes.
	page := m.Config().TLB.PageSize
	h0 := m.AddressSpace().HomeOf(a.Addr(0))
	h1 := m.AddressSpace().HomeOf(a.Addr(page / 8))
	if h0 == h1 {
		t.Errorf("consecutive pages homed together: %d, %d", h0, h1)
	}
	m.Run(func(p *Proc) {
		if p.ID == 0 {
			a.StoreRange(p, 0, 100, Private)
			a.LoadRange(p, 0, 100, Private)
			a.StoreRange(p, 5, 5, Private) // empty range: no-op
		}
	})
}

func TestBarrierMembers(t *testing.T) {
	b := NewBarrier(7, 100)
	if b.Members() != 7 {
		t.Errorf("Members = %d", b.Members())
	}
}

func TestConfigValidateRejectsBadSubconfigs(t *testing.T) {
	cfg := Origin2000(64)
	cfg.Cache.LineSize = 100 // not a power of two
	if err := cfg.Validate(); err == nil {
		t.Error("accepted bad cache")
	}
	cfg = Origin2000(64)
	cfg.TLB.Entries = 0
	if err := cfg.Validate(); err == nil {
		t.Error("accepted bad TLB")
	}
	cfg = Origin2000(63) // invalid topology (router count)
	if err := cfg.Validate(); err == nil {
		t.Error("accepted bad topology")
	}
}

func TestSharedReadAndWriteClasses(t *testing.T) {
	m := testMachine(t, 8)
	arr := NewArrayBlocked[uint32](m, "sr", 1<<13)
	perProc := arr.Len() / 8
	res := m.Run(func(p *Proc) {
		switch p.ID {
		case 1:
			// Read-shared misses on a remote partition.
			arr.LoadRange(p, 7*perProc, 8*perProc, SharedRead)
		case 2:
			// Writes requiring invalidation of a sharer.
			for i := 0; i < 24; i++ {
				arr.Store(p, 7*perProc+i*32, 1, SharedRead)
			}
		case 3:
			// DirtyElsewhere reads of a remote region.
			arr.LoadRange(p, 6*perProc, 7*perProc, DirtyElsewhere)
		}
	})
	for _, id := range []int{1, 2, 3} {
		if res.PerProc[id].Breakdown.RMem == 0 {
			t.Errorf("proc %d charged no remote time", id)
		}
	}
}

func TestWritebackChargesRemoteHome(t *testing.T) {
	// Fill proc 0's cache with dirty lines of a REMOTE region, then force
	// evictions: writebacks must charge remote time.
	m := testMachine(t, 8)
	remote := NewArrayOnProc[uint32](m, "rwb", 1<<17, 7) // homed on node 3
	local := NewArrayOnProc[uint32](m, "lwb", 1<<17, 0)
	res := m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		remote.StoreRange(p, 0, remote.Len(), Private) // dirty remote lines
		local.LoadRange(p, 0, local.Len(), Private)    // evict them
	})
	if res.PerProc[0].Writebacks == 0 {
		t.Fatal("no writebacks occurred")
	}
}
