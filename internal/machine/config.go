package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/topology"
)

// Config gathers every parameter of the simulated machine.
type Config struct {
	// Topology describes processors, nodes, routers and NUMA latencies.
	Topology topology.Config
	// Cache is the per-processor (second-level) cache geometry.
	Cache cache.Config
	// TLB is the per-processor TLB geometry. Page size here is the page
	// size used for data placement as well.
	TLB cache.TLBConfig

	// OpNs is the busy cost of one abstract ALU operation in nanoseconds.
	// 195 MHz R10000 ~ 5.13 ns per cycle.
	OpNs float64
	// TLBMissNs is the stall for one TLB refill.
	TLBMissNs float64
	// MissOverlap is the number of outstanding misses a sequential stream
	// can overlap (the R10000 sustains 4); scattered dependent accesses
	// serialize at full latency. Applied by the stream/block access
	// variants.
	MissOverlap float64

	// BarrierBaseNs and BarrierPerLogNs set the cost of a full barrier:
	// base + perLog * log2(procs).
	BarrierBaseNs   float64
	BarrierPerLogNs float64

	// ContentionScatteredPerProc and ContentionBulkPerProc control the
	// deterministic contention factor charged during communication phases:
	// factor = 1 + perProc * (communicatingProcs - 1), scaled for
	// scattered traffic by how saturating the phase is (see
	// scatteredContention). Scattered (fine-grained, per-line) traffic
	// contends much harder than bulk transfers because each line moves a
	// full protocol transaction (request, invalidations, acknowledgements,
	// later writeback) through the home memory controller, which is the
	// paper's explanation for the poor performance of the original CC-SAS
	// radix sort.
	ContentionScatteredPerProc float64
	ContentionBulkPerProc      float64
	// ContentionLoadFloor is the minimum load fraction used by
	// scatteredContention: even short scattered bursts collide at the
	// home controllers, so the penalty never ramps entirely to zero.
	ContentionLoadFloor float64

	// FlatMemory, when true, prices every miss at the local latency and
	// disables coherence/NUMA effects. Used by the flat-memory ablation.
	FlatMemory bool
	// NoContention, when true, forces all contention factors to 1.
	NoContention bool
	// Paranoid, when true, shadows every simulated access with the slow
	// reference models and invariant checks of internal/check (see
	// DESIGN.md §9). The run's simulated results are unchanged —
	// paranoid outputs are byte-identical to normal ones — but the host
	// slows down severalfold; violations accumulate on
	// Machine.Checker().
	Paranoid bool
	// ParanoidSampleEvery spot-samples paranoid mode: 0 or 1 shadows
	// every access (full mode, byte-identical to Paranoid alone); N > 1
	// implies Paranoid and runs only the stateless oracles (page home,
	// price table, directory legality, clock invariants) on every Nth
	// priced event, skipping the per-access reference cache/TLB diff.
	// Transaction-class counting and the accounting identities still
	// cover every event, so a corrupted price table or broken accounting
	// is caught even at large N — at a fraction of full mode's host cost.
	ParanoidSampleEvery int

	// Coherence sets the protocol message cost constants. Zero value is
	// replaced by coherence.DefaultParams(Cache.LineSize) in Validate.
	Coherence coherence.Params
}

// Validate fills defaults and checks the configuration.
func (c *Config) Validate() error {
	if _, err := topology.New(c.Topology); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.OpNs <= 0 {
		return fmt.Errorf("machine: OpNs must be positive, got %v", c.OpNs)
	}
	if c.ParanoidSampleEvery < 0 {
		return fmt.Errorf("machine: ParanoidSampleEvery must be non-negative, got %d", c.ParanoidSampleEvery)
	}
	if c.ParanoidSampleEvery > 1 {
		c.Paranoid = true
	}
	if c.Coherence == (coherence.Params{}) {
		c.Coherence = coherence.DefaultParams(c.Cache.LineSize)
	}
	if c.MissOverlap <= 0 {
		c.MissOverlap = 1
	}
	return nil
}

// contentionFactor returns the multiplier for remote traffic when q
// processors communicate concurrently.
func (c *Config) contentionFactor(q int, scattered bool) float64 {
	if c.NoContention || q <= 1 {
		return 1
	}
	per := c.ContentionBulkPerProc
	if scattered {
		per = c.ContentionScatteredPerProc
	}
	return 1 + per*float64(q-1)
}

// scatteredContention returns the multiplier for a scattered all-to-all
// phase in which q processors each move bytesPerProc of fine-grained
// traffic. Directory controllers saturate only under sustained load: a
// burst smaller than the cache drains without queueing, so the per-
// processor penalty ramps linearly with the phase's volume up to one
// cache-full of traffic per processor.
func (c *Config) scatteredContention(q, bytesPerProc int) float64 {
	if c.NoContention || q <= 1 {
		return 1
	}
	load := float64(bytesPerProc) / float64(c.Cache.Size)
	if load < c.ContentionLoadFloor {
		load = c.ContentionLoadFloor
	}
	if load > 1 {
		load = 1
	}
	return 1 + c.ContentionScatteredPerProc*float64(q-1)*load
}

// originTopology returns the Origin2000 interconnect parameters for a
// given processor count (which must keep the router count a power of
// two: 2, 4, 8, 16, 32, 64, ... processors).
func originTopology(procs int) topology.Config {
	procsPerNode := 2
	if procs == 1 {
		// A uniprocessor run (the sequential baseline) gets a single
		// one-processor node.
		procsPerNode = 1
	}
	return topology.Config{
		Processors:        procs,
		ProcsPerNode:      procsPerNode,
		NodesPerRouter:    2,
		LocalLatency:      313,
		HopLatency:        100,
		RemoteBaseLatency: 600,
		LinkBandwidth:     0.8, // 0.8 bytes/ns per direction = 1.6 GB/s total
	}
}

// Origin2000 returns the full-size machine parameters of the paper's
// platform: 4 MB 2-way 128-byte-line L2 per processor, 64-entry TLB with
// 16 KB pages, 195 MHz R10000.
func Origin2000(procs int) Config {
	return Config{
		Topology:                   originTopology(procs),
		Cache:                      cache.Config{Size: 4 << 20, LineSize: 128, Ways: 2},
		TLB:                        cache.TLBConfig{Entries: 64, PageSize: 16 << 10},
		OpNs:                       5.13,
		TLBMissNs:                  300,
		MissOverlap:                4,
		BarrierBaseNs:              1000,
		BarrierPerLogNs:            500,
		ContentionScatteredPerProc: 0.045,
		ContentionBulkPerProc:      0.005,
		ContentionLoadFloor:        0.1,
	}
}

// ScaleFactor is the factor by which Origin2000Scaled shrinks cache
// reach, TLB reach, data sizes, and fixed software costs relative to the
// paper's machine. 16 keeps the cache-line segment locality of the
// permutation phase close to the full-size machine's (the line size
// cannot scale), while making the largest experiments ~16x faster to
// simulate.
const ScaleFactor = 16

// Origin2000Scaled returns the experiment default: the same machine with
// cache and TLB reach scaled down by ScaleFactor (256 KB cache, 1 KB
// pages), so that data sets scaled down by the same factor reproduce the
// paper's capacity crossovers while keeping simulations fast. See
// DESIGN.md §1.
func Origin2000Scaled(procs int) Config {
	c := Origin2000(procs)
	c.Cache = cache.Config{Size: (4 << 20) / ScaleFactor, LineSize: 128, Ways: 2}
	c.TLB = cache.TLBConfig{Entries: 64, PageSize: (16 << 10) / ScaleFactor}
	// Fixed per-event software costs scale with the data so the ratio of
	// fixed to data-proportional work matches the full-size machine.
	c.BarrierBaseNs /= ScaleFactor
	c.BarrierPerLogNs /= ScaleFactor
	return c
}
