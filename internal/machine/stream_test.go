package machine

import (
	"math/rand"
	"reflect"
	"testing"
	"unsafe"
)

// streamTestState bundles one machine plus the arrays the equivalence
// workload runs over, so the stream side and the per-element side
// operate on structurally identical worlds.
type streamTestState struct {
	m    *Machine
	p    *Proc
	keys *Array[uint32]
	dst  *Array[uint32]
	hist *Array[int32]
}

func newStreamTestState(t *testing.T) *streamTestState {
	t.Helper()
	m := testMachine(t, 2)
	s := &streamTestState{
		m:    m,
		keys: NewArrayBlocked[uint32](m, "keys", 1<<13),
		dst:  NewArrayBlocked[uint32](m, "dst", 1<<13),
		hist: NewArrayOnProc[int32](m, "hist", 256, 0),
	}
	s.p = m.Proc(0)
	s.p.resetClock()
	rng := rand.New(rand.NewSource(7))
	for i := range s.keys.Data {
		s.keys.Data[i] = rng.Uint32()
	}
	return s
}

// check asserts both worlds are bit-identical: virtual clock, full
// ProcStats (time breakdown, phase accumulators, traffic, counter
// snapshot), and the raw cache/TLB counters.
func (s *streamTestState) check(t *testing.T, ref *streamTestState, step string) {
	t.Helper()
	if s.p.clock != ref.p.clock {
		t.Fatalf("%s: clock stream=%v ref=%v", step, s.p.clock, ref.p.clock)
	}
	if a, b := s.p.snapshot(), ref.p.snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: stats diverge\nstream: %+v\nref:    %+v", step, a, b)
	}
	if a, b := s.p.cache.Stats(), ref.p.cache.Stats(); a != b {
		t.Fatalf("%s: cache counters stream=%+v ref=%+v", step, a, b)
	}
	if a, b := s.p.tlb.Stats(), ref.p.tlb.Stats(); a != b {
		t.Fatalf("%s: TLB counters stream=%+v ref=%+v", step, a, b)
	}
	if !reflect.DeepEqual(s.dst.Data, ref.dst.Data) ||
		!reflect.DeepEqual(s.hist.Data, ref.hist.Data) {
		t.Fatalf("%s: data results diverge", step)
	}
}

// TestStreamEquivalence drives random workloads through the batched
// stream kernels on one machine and through the equivalent per-element
// wrapper loops on an identical second machine, asserting bit-identical
// simulated state after every step: same clock (float addition order
// included), same breakdowns, same cache/TLB replacement decisions and
// counters. This is the equivalence contract of DESIGN.md §13 checked
// end to end on live machines; FuzzAccessOracle covers the lane
// primitives underneath against the reference models.
func TestStreamEquivalence(t *testing.T) {
	sv := newStreamTestState(t) // stream side
	rv := newStreamTestState(t) // per-element side
	rng := rand.New(rand.NewSource(99))
	n := sv.keys.Len()

	idx := make([]int64, 512)
	pos := make([]int64, 256)
	for round := 0; round < 20; round++ {
		lo := rng.Intn(n - 600)
		cnt := 1 + rng.Intn(500)
		ops := rng.Intn(9)
		shift := uint(rng.Intn(3) * 8)

		switch round % 6 {
		case 0: // sequential load sweep
			sv.p.LoadStream(sv.keys.Addr(lo), 4, cnt, SharedRead, ops)
			for i := 0; i < cnt; i++ {
				rv.p.LoadSeq(rv.keys.Addr(lo+i), SharedRead)
				rv.p.Compute(ops)
			}
		case 1: // sequential store sweep
			sv.dst.StoreRangeWith(sv.p, lo, lo+cnt, Private, ops)
			for i := lo; i < lo+cnt; i++ {
				rv.p.StoreSeq(rv.dst.Addr(i), Private)
				rv.p.Compute(ops)
			}
		case 2: // gather + scatter over random indices
			for i := range idx {
				idx[i] = int64(rng.Intn(n))
			}
			sv.keys.GatherLoad(sv.p, idx, SharedRead, ops)
			sv.dst.ScatterStore(sv.p, idx, ConflictWrite, ops)
			for _, ix := range idx {
				rv.p.Load(rv.keys.Addr(int(ix)), SharedRead)
				rv.p.Compute(ops)
			}
			for _, ix := range idx {
				rv.p.Store(rv.dst.Addr(int(ix)), ConflictWrite)
				rv.p.Compute(ops)
			}
		case 3: // radix counting pass
			clear(sv.hist.Data)
			clear(rv.hist.Data)
			sv.p.CountStream(sv.keys, lo, cnt, SharedRead, shift, 255,
				sv.hist, Private, ops)
			for i := lo; i < lo+cnt; i++ {
				rv.p.LoadSeq(rv.keys.Addr(i), SharedRead)
				d := int(rv.keys.Data[i] >> shift & 255)
				rv.p.Load(rv.hist.Addr(d), Private)
				rv.hist.Data[d]++
				rv.p.Compute(ops)
			}
		case 4: // radix permutation pass (positions spread over dst)
			for i := range pos {
				pos[i] = int64((i * 32) % n)
			}
			sPos := append([]int64(nil), pos...)
			rPos := append([]int64(nil), pos...)
			sv.p.PermuteStream(sv.keys, sv.dst, lo, min(cnt, 256*8),
				shift, 255, sv.hist, sPos, SharedRead, Private, ConflictWrite, ops)
			for i := lo; i < lo+min(cnt, 256*8); i++ {
				rv.p.LoadSeq(rv.keys.Addr(i), SharedRead)
				k := rv.keys.Data[i]
				d := int(k >> shift & 255)
				rv.p.Load(rv.hist.Addr(d), Private)
				at := rPos[d]
				rPos[d]++
				rv.dst.Data[at] = k
				rv.p.Store(rv.dst.Addr(int(at)), ConflictWrite)
				rv.p.Compute(ops)
			}
			if !reflect.DeepEqual(sPos, rPos) {
				t.Fatal("permute position tables diverge")
			}
		case 5: // interleaved cursors (the multiway-merge shape)
			var sr, sw SeqCursor
			sv.keys.OpenCursor(&sr, sv.p, false, SharedRead)
			sv.dst.OpenCursor(&sw, sv.p, true, Private)
			for i := 0; i < cnt; i++ {
				sr.Access(lo + i)
				sw.Access(lo + cnt - 1 - i)
			}
			sv.p.CloseCursors()
			for i := 0; i < cnt; i++ {
				rv.p.LoadSeq(rv.keys.Addr(lo+i), SharedRead)
				rv.p.StoreSeq(rv.dst.Addr(lo+cnt-1-i), Private)
			}
		}
		// A few plain accesses between kernels churn the shared memos, so
		// later rounds start from a memo state the kernels did not set up.
		for i := 0; i < 8; i++ {
			rnd := rng.Intn(n)
			sv.p.Load(sv.keys.Addr(rnd), SharedRead)
			rv.p.Load(rv.keys.Addr(rnd), SharedRead)
		}
		sv.check(t, rv, "round")
	}
}

// TestStreamKernelsZeroAlloc pins the O(1)-allocation contract of the
// stream engine: once a processor's lane scratch has grown to the radix
// width (the warm-up run AllocsPerRun performs), every kernel call and
// cursor access allocates nothing. This is the CI allocation-regression
// guard for the hot simulation paths.
func TestStreamKernelsZeroAlloc(t *testing.T) {
	m := testMachine(t, 2)
	keys := NewArrayBlocked[uint32](m, "keys", 1<<14)
	dst := NewArrayBlocked[uint32](m, "dst", 1<<14)
	hist := NewArrayOnProc[int32](m, "hist", 256, 0)
	p := m.Proc(0)
	p.resetClock()
	idx := []int64{3, 99, 7, 4000, 7, 8, 9000, 2}
	pos := make([]int64, 256)
	// The cursor lives outside the loop: AttachLane registers its TLB
	// lane by address, so a cursor declared inside would escape and
	// heap-allocate per call. Real callers (the multiway merge) hold
	// their cursors in a slice allocated once per merge.
	var cur SeqCursor
	allocs := testing.AllocsPerRun(50, func() {
		p.LoadStream(keys.Addr(0), 4, 512, SharedRead, 2)
		p.StoreStream(dst.Addr(0), 4, 512, Private, 1)
		keys.GatherLoad(p, idx, SharedRead, 1)
		dst.ScatterStore(p, idx, ConflictWrite, 1)
		p.CountStream(keys, 0, 512, SharedRead, 0, 255, hist, Private, 8)
		for i := range pos {
			pos[i] = int64(i * 16)
		}
		p.PermuteStream(keys, dst, 0, 512, 0, 255, hist, pos,
			SharedRead, Private, ConflictWrite, 13)
		keys.OpenCursor(&cur, p, false, SharedRead)
		for i := 0; i < 64; i++ {
			cur.Access(i)
		}
		p.CloseCursors()
	})
	if allocs != 0 {
		t.Errorf("stream kernels allocate %.1f/op in steady state, want 0", allocs)
	}
}

// TestArenaReuse proves Release recycles array backing memory: after a
// machine releases its slabs, a second machine allocating the same
// array footprint gets the same backing slab back from the pool (LIFO),
// and its contents arrive zeroed despite the first machine's writes.
func TestArenaReuse(t *testing.T) {
	m1 := testMachine(t, 2)
	a1 := NewArrayBlocked[uint32](m1, "k", 1<<12)
	for i := range a1.Data {
		a1.Data[i] = 0xDEADBEEF
	}
	p1 := unsafe.Pointer(&a1.Data[0])
	m1.Release()

	m2 := testMachine(t, 2)
	a2 := NewArrayBlocked[uint32](m2, "k", 1<<12)
	if unsafe.Pointer(&a2.Data[0]) != p1 {
		t.Error("released slab was not reused for an identical allocation")
	}
	for i, v := range a2.Data {
		if v != 0 {
			t.Fatalf("reused slab not zeroed at %d: %#x", i, v)
		}
	}
	m2.Release()
}

// TestGrowAmortized asserts Grow's capacity doubling: growing an array
// one element at a time reallocates O(log n) times, not O(n) times, and
// in-capacity growth neither moves the backing array nor loses data.
func TestGrowAmortized(t *testing.T) {
	m := testMachine(t, 2)
	a := NewArrayReserve[uint32](m, "r", 1<<16, 0)
	reallocs := 0
	var last *uint32
	for n := 1; n <= 1<<14; n++ {
		a.Grow(n)
		a.Data[n-1] = uint32(n)
		if &a.Data[0] != last {
			reallocs++
			last = &a.Data[0]
		}
	}
	if reallocs > 16 {
		t.Errorf("growing to 2^14 one element at a time reallocated %d times, want O(log n)", reallocs)
	}
	for n := 1; n <= 1<<14; n++ {
		if a.Data[n-1] != uint32(n) {
			t.Fatalf("Grow lost element %d", n-1)
		}
	}
}

// Scatter-stream micro-benchmarks: the cache-hit regime (a footprint
// the cache holds), the miss regime (every access a fresh line), and
// the run-coalesced regime (sorted indices, so per-bucket lanes see
// same-line runs). ns/op is per scattered element.
func benchScatter(b *testing.B, idx []int64) {
	m, err := New(Origin2000Scaled(4))
	if err != nil {
		b.Fatal(err)
	}
	arr := NewArrayBlocked[uint32](m, "dst", 1<<22)
	b.ResetTimer()
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		for i := 0; i < b.N; i += len(idx) {
			arr.ScatterStore(p, idx, ConflictWrite, 1)
		}
	})
}

func BenchmarkScatterStreamHit(b *testing.B) {
	idx := make([]int64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range idx {
		idx[i] = int64(rng.Intn(4096)) // 16 KB footprint, cache-resident
	}
	benchScatter(b, idx)
}

func BenchmarkScatterStreamMiss(b *testing.B) {
	idx := make([]int64, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range idx {
		idx[i] = int64(rng.Intn(1 << 22)) // 16 MB footprint, always missing
	}
	benchScatter(b, idx)
}

func BenchmarkScatterStreamCoalesced(b *testing.B) {
	idx := make([]int64, 4096)
	for i := range idx {
		idx[i] = int64(1<<20 + i) // sequential: 16-element same-line runs
	}
	benchScatter(b, idx)
}
