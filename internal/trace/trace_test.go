package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// synthetic builds a small two-processor trace exercising every event
// kind, an instant event, and an unterminated span.
func synthetic() *Trace {
	t := New(2)
	t.Label = "radix/shmem n=65536 p=2"
	t.TimeNs = 5000
	p0, p1 := t.Procs[0], t.Procs[1]
	p0.BeginSpan("count", 0)
	p0.BeginSpan("permute", 1000) // implicitly closes "count"
	p0.Emit(EvSend, 1200, 300, 1, 4096)
	p0.Emit(EvBarrier, 2000, 500, -1, 0)
	p0.CloseSpan(2500)
	p1.BeginSpan("count", 0)
	p1.Emit(EvGet, 100, 0, 0, 64) // instant
	p1.CountTx(TxSharedRead)
	p1.CountTx(TxSharedRead)
	p1.CountTx(TxWriteback)
	t.AddMetric("time_ns", 5000)
	t.AddMetric("breakdown.busy_ns", 1234.5)
	return t
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(1)
	pt := tr.Procs[0]
	pt.BeginSpan("a", 0)
	pt.BeginSpan("b", 10)
	if got := pt.Spans[0].End; got != 10 {
		t.Errorf("BeginSpan did not close previous span: End=%v, want 10", got)
	}
	pt.CloseSpan(20)
	pt.CloseSpan(30) // double close is a no-op
	if got := pt.Spans[1].End; got != 20 {
		t.Errorf("CloseSpan: End=%v, want 20", got)
	}
	if tr.SpanCount() != 2 {
		t.Errorf("SpanCount=%d, want 2", tr.SpanCount())
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvSend: "send", EvRecv: "recv", EvPut: "put", EvGet: "get",
		EvFlowStall: "flow-stall", EvMsgWait: "msg-wait", EvBarrier: "barrier",
	}
	if len(want) != int(numEventKinds) {
		t.Fatalf("test covers %d kinds, package has %d", len(want), numEventKinds)
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestTxTotals(t *testing.T) {
	tr := synthetic()
	tx := tr.TxTotals()
	if tx[TxSharedRead] != 2 || tx[TxWriteback] != 1 {
		t.Errorf("TxTotals = %v, want shared-read=2 writeback=1", tx)
	}
}

// TestWriteChromeValidJSON checks the exporter emits well-formed
// trace_event JSON with the expected structure.
func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var meta, spans, complete, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.Name == "count" || e.Name == "permute" {
				spans++
			} else {
				complete++
			}
			if e.Dur < 0 {
				t.Errorf("negative duration on %q", e.Name)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 1 process_name + 2 thread_name; 3 spans; send+barrier complete; 1 instant.
	if meta != 3 || spans != 3 || complete != 2 || instants != 1 {
		t.Errorf("event census meta=%d spans=%d complete=%d instants=%d, want 3/3/2/1",
			meta, spans, complete, instants)
	}
	if !strings.Contains(buf.String(), `"radix/shmem n=65536 p=2"`) {
		t.Error("trace label missing from process_name metadata")
	}
}

// TestWriteChromeDeterministic proves identical traces serialize to
// identical bytes.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, synthetic()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, synthetic()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same trace differ")
	}
}

// TestWriteMetrics checks the metrics exporter is valid JSON with sorted
// keys and deterministic bytes.
func TestWriteMetrics(t *testing.T) {
	tr := synthetic()
	var a, b bytes.Buffer
	if err := tr.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two metric exports differ")
	}
	var m map[string]float64
	if err := json.Unmarshal(a.Bytes(), &m); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v\n%s", err, a.String())
	}
	if m["time_ns"] != 5000 || m["breakdown.busy_ns"] != 1234.5 {
		t.Errorf("metrics round-trip mismatch: %v", m)
	}
	// Keys must appear in sorted order in the raw bytes.
	i := strings.Index(a.String(), "breakdown.busy_ns")
	j := strings.Index(a.String(), "time_ns")
	if i < 0 || j < 0 || i > j {
		t.Errorf("metric keys not in sorted order:\n%s", a.String())
	}
}

func TestMetricsAccessors(t *testing.T) {
	tr := New(1)
	tr.AddMetric("x", 2.5)
	if tr.Metric("x") != 2.5 || tr.Metric("absent") != 0 {
		t.Error("Metric accessor wrong")
	}
	cp := tr.Metrics()
	cp["x"] = 9
	if tr.Metric("x") != 2.5 {
		t.Error("Metrics() did not copy")
	}
	if math.IsNaN(tr.Metric("x")) {
		t.Error("unexpected NaN")
	}
}
