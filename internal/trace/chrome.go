package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChrome renders one or more traces as Chrome trace_event JSON
// (the "JSON Object Format": {"traceEvents":[...]}), viewable in
// Perfetto or chrome://tracing. Each trace becomes one process (pid =
// index in traces, named by the trace label); each simulated processor
// becomes one thread (tid = processor ID), so every processor gets its
// own track. Phase spans render as complete ("X") events; typed
// communication events render as complete events when they have a
// duration and instant ("i") events otherwise, carrying peer/bytes args.
//
// Output is deterministic: events are written in (trace, processor,
// emission) order with fixed-precision timestamps, so identical traces
// serialize to identical bytes.
func WriteChrome(w io.Writer, traces ...*Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
		} else {
			bw.WriteString(",\n")
		}
	}
	var buf []byte
	// usec appends a virtual-ns quantity as fixed-point microseconds with
	// nanosecond resolution (3 decimals): deterministic and exact for the
	// trace viewer's µs timeline.
	usec := func(ns float64) {
		buf = strconv.AppendFloat(buf[:0], ns/1e3, 'f', 3, 64)
		bw.Write(buf)
	}
	itoa := func(v int64) {
		buf = strconv.AppendInt(buf[:0], v, 10)
		bw.Write(buf)
	}
	for pid, t := range traces {
		// Process metadata: name the run.
		sep()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		itoa(int64(pid))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		bw.WriteString(strconv.Quote(t.Label))
		bw.WriteString("}}")
		for _, pt := range t.Procs {
			// Thread metadata: one named track per simulated processor.
			sep()
			bw.WriteString(`{"name":"thread_name","ph":"M","pid":`)
			itoa(int64(pid))
			bw.WriteString(`,"tid":`)
			itoa(int64(pt.ID))
			bw.WriteString(`,"args":{"name":"proc `)
			itoa(int64(pt.ID))
			bw.WriteString(`"}}`)
			for _, s := range pt.Spans {
				sep()
				bw.WriteString(`{"name":`)
				bw.WriteString(strconv.Quote(s.Name))
				bw.WriteString(`,"cat":"phase","ph":"X","pid":`)
				itoa(int64(pid))
				bw.WriteString(`,"tid":`)
				itoa(int64(pt.ID))
				bw.WriteString(`,"ts":`)
				usec(s.Start)
				bw.WriteString(`,"dur":`)
				usec(s.End - s.Start)
				bw.WriteString("}")
			}
			for _, e := range pt.Events {
				sep()
				bw.WriteString(`{"name":"`)
				bw.WriteString(e.Kind.String())
				bw.WriteString(`","cat":"comm","ph":"`)
				if e.Dur > 0 {
					bw.WriteString("X")
				} else {
					bw.WriteString("i")
				}
				bw.WriteString(`","pid":`)
				itoa(int64(pid))
				bw.WriteString(`,"tid":`)
				itoa(int64(pt.ID))
				bw.WriteString(`,"ts":`)
				usec(e.Time)
				if e.Dur > 0 {
					bw.WriteString(`,"dur":`)
					usec(e.Dur)
				} else {
					bw.WriteString(`,"s":"t"`)
				}
				bw.WriteString(`,"args":{"peer":`)
				itoa(int64(e.Peer))
				bw.WriteString(`,"bytes":`)
				itoa(e.Bytes)
				bw.WriteString("}}")
			}
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}
