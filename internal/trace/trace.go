// Package trace is the simulator's deterministic virtual-time event
// trace and metrics layer.
//
// A Trace records, per simulated processor, the phase spans the program
// declared (via Proc.SetPhase), the typed communication events the
// programming-model layers emitted (message send/receive, one-sided
// put/get, flow-control stalls, message waits, barrier episodes), and
// the coherence-protocol transaction counts by sharing class. All
// timestamps are virtual nanoseconds — pure functions of the
// experiment's inputs — so two runs of the same experiment produce
// byte-identical exports regardless of host scheduling or parallelism.
//
// Two exporters are provided: WriteChrome renders Chrome trace_event
// JSON (viewable in Perfetto / chrome://tracing, one track per simulated
// processor), and Trace.WriteMetrics renders a flat machine-readable
// metrics map (per-phase breakdowns, traffic by class, cache/TLB rates).
//
// The package deliberately imports nothing from the simulator so every
// layer (machine, mpi, shmem, ccsas) can emit events without cycles.
package trace

import "fmt"

// EventKind labels one typed event on a processor's track.
type EventKind uint8

const (
	// EvSend is an explicit message send (MPI).
	EvSend EventKind = iota
	// EvRecv is an explicit message receive (MPI).
	EvRecv
	// EvPut is a one-sided put (SHMEM).
	EvPut
	// EvGet is a one-sided get (SHMEM).
	EvGet
	// EvFlowStall is a sender blocked on a full flow-control window.
	EvFlowStall
	// EvMsgWait is a receiver (or flag waiter) blocked until data is
	// available.
	EvMsgWait
	// EvBarrier is one barrier episode (arrival to release).
	EvBarrier

	numEventKinds
)

// String returns the exporter name of the kind.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvPut:
		return "put"
	case EvGet:
		return "get"
	case EvFlowStall:
		return "flow-stall"
	case EvMsgWait:
		return "msg-wait"
	case EvBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// TxClass classifies one coherence-protocol transaction. The first five
// values mirror the machine layer's sharing classes (same order), with
// Writeback appended for dirty evictions.
type TxClass uint8

const (
	TxPrivate TxClass = iota
	TxRemoteProduced
	TxSharedRead
	TxConflictWrite
	TxDirtyElsewhere
	TxWriteback

	// NumTxClasses is the number of transaction classes.
	NumTxClasses
)

// String returns the exporter name of the class.
func (c TxClass) String() string {
	switch c {
	case TxPrivate:
		return "private"
	case TxRemoteProduced:
		return "remote-produced"
	case TxSharedRead:
		return "shared-read"
	case TxConflictWrite:
		return "conflict-write"
	case TxDirtyElsewhere:
		return "dirty-elsewhere"
	case TxWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Event is one typed occurrence on a processor's track. Dur == 0 marks
// an instantaneous event; Dur > 0 covers [Time, Time+Dur).
type Event struct {
	Kind EventKind
	// Time is the event start, virtual nanoseconds.
	Time float64
	// Dur is the event duration, virtual nanoseconds (0 for instants).
	Dur float64
	// Peer is the other processor involved (-1 when not applicable).
	Peer int
	// Bytes is the payload size moved, when applicable.
	Bytes int64
}

// Span is one phase interval on a processor's track.
type Span struct {
	// Name is the phase label the program declared.
	Name string
	// Start and End are virtual nanoseconds.
	Start, End float64
}

// ProcTrace is one simulated processor's event stream. All mutating
// methods must be called only from the goroutine running that processor
// (the same discipline the machine layer imposes on Proc), so no locks
// are needed and event order is the processor's deterministic program
// order.
type ProcTrace struct {
	// ID is the simulated processor number.
	ID int
	// Spans are the phase intervals, in emission order.
	Spans []Span
	// Events are the typed events, in emission order.
	Events []Event
	// Tx counts coherence-protocol transactions by class.
	Tx [NumTxClasses]int64

	open bool // a span is currently open (the last element of Spans)
}

// BeginSpan opens a phase span at time t, closing any open span first.
func (pt *ProcTrace) BeginSpan(name string, t float64) {
	pt.CloseSpan(t)
	pt.Spans = append(pt.Spans, Span{Name: name, Start: t, End: t})
	pt.open = true
}

// CloseSpan closes the open span (if any) at time t.
func (pt *ProcTrace) CloseSpan(t float64) {
	if pt.open {
		pt.Spans[len(pt.Spans)-1].End = t
		pt.open = false
	}
}

// Emit appends one typed event.
func (pt *ProcTrace) Emit(kind EventKind, time, dur float64, peer int, bytes int64) {
	pt.Events = append(pt.Events, Event{Kind: kind, Time: time, Dur: dur, Peer: peer, Bytes: bytes})
}

// CountTx counts one protocol transaction of the given class.
func (pt *ProcTrace) CountTx(c TxClass) { pt.Tx[c]++ }

// Trace is one run's full event trace plus its flat metrics map.
type Trace struct {
	// Label names the traced run (e.g. "radix/shmem n=65536 p=16").
	Label string
	// TimeNs is the run's simulated wall time.
	TimeNs float64
	// Procs holds one track per simulated processor, ordered by ID.
	Procs []*ProcTrace

	metrics map[string]float64
}

// New builds an empty trace with procs tracks.
func New(procs int) *Trace {
	t := &Trace{Procs: make([]*ProcTrace, procs), metrics: make(map[string]float64)}
	for i := range t.Procs {
		t.Procs[i] = &ProcTrace{ID: i}
	}
	return t
}

// AddMetric sets one flat metric. The machine layer fills the standard
// keys at run finalization; callers may add their own.
func (t *Trace) AddMetric(key string, v float64) {
	if t.metrics == nil {
		t.metrics = make(map[string]float64)
	}
	t.metrics[key] = v
}

// Metric returns one flat metric value (0 when absent; use Metrics to
// distinguish).
func (t *Trace) Metric(key string) float64 { return t.metrics[key] }

// Metrics returns a copy of the flat metrics map.
func (t *Trace) Metrics() map[string]float64 {
	out := make(map[string]float64, len(t.metrics))
	for k, v := range t.metrics {
		out[k] = v
	}
	return out
}

// EventCount returns the total number of typed events across all tracks.
func (t *Trace) EventCount() int {
	n := 0
	for _, pt := range t.Procs {
		n += len(pt.Events)
	}
	return n
}

// SpanCount returns the total number of phase spans across all tracks.
func (t *Trace) SpanCount() int {
	n := 0
	for _, pt := range t.Procs {
		n += len(pt.Spans)
	}
	return n
}

// TxTotals sums per-class transaction counts across processors.
func (t *Trace) TxTotals() [NumTxClasses]int64 {
	var sum [NumTxClasses]int64
	for _, pt := range t.Procs {
		for c, n := range pt.Tx {
			sum[c] += n
		}
	}
	return sum
}
