package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WriteMetrics renders the flat metrics map as a JSON object with keys
// in sorted order and shortest-roundtrip float values, so identical
// metric maps serialize to identical bytes.
func (t *Trace) WriteMetrics(w io.Writer) error {
	keys := make([]string, 0, len(t.metrics))
	for k := range t.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n")
	for i, k := range keys {
		if i > 0 {
			bw.WriteString(",\n")
		}
		bw.WriteString("  ")
		bw.WriteString(strconv.Quote(k))
		bw.WriteString(": ")
		bw.WriteString(strconv.FormatFloat(t.metrics[k], 'g', -1, 64))
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}
