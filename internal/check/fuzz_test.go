package check_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/check"
)

// FuzzAccessOracle drives random access streams — mixed reads and
// writes, strided and random, page-crossing, with invalidations and
// flushes mixed in — through the fast-path cache/TLB models and the
// unmemoized reference models side by side, and requires bit-identical
// results on every operation plus identical final counters. Each access
// is randomly routed through the plain shared-memo path, a per-stream
// lane (cache.Lane / cache.TLBLane), or the split LaneHit/miss-completer
// pair the batched kernels inline, so the lane machinery faces the same
// oracle as the paths it accelerates.
//
// Two cache geometries run the same stream: the Origin-style 2-way
// shape exercises the unrolled probe and the line memos, a 4-way shape
// exercises the general probe loop. The address space is kept to 16
// bits over a tiny cache/TLB so conflict evictions, writebacks and TLB
// FIFO churn all happen within a short input.
func FuzzAccessOracle(f *testing.F) {
	// Seed corpus: a sequential sweep, a write-heavy strided pass, an
	// alternating two-stream pattern (defeats a one-entry memo), a
	// flush/invalidate torture mix, and a page-crossing run.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x80, 0x00, 0x00, 0xC0, 0x00})
	f.Add([]byte{0x03, 0x00, 0x10, 0x03, 0x04, 0x10, 0x03, 0x08, 0x10, 0x03, 0x0C, 0x10})
	f.Add([]byte{0x00, 0x00, 0x01, 0x03, 0x00, 0x41, 0x00, 0x40, 0x01, 0x03, 0x40, 0x41})
	f.Add([]byte{0x03, 0x00, 0x02, 0x06, 0x00, 0x02, 0x07, 0x00, 0x00, 0x00, 0x00, 0x02})
	f.Add([]byte{0x2D, 0xF0, 0x03, 0x5D, 0x10, 0x04, 0x00, 0xFF, 0xFF})
	// Stream-shaped seeds for the lane paths (op bits 3-4 select plain /
	// lane0 / lane1 / the inlined LaneHit+miss split): a gather/scatter
	// mix on lane 0, a same-line run through the split path, interleaved
	// two-lane streams, and a page-straddling run (1 KB pages, so
	// 0x0400 is a page boundary).
	f.Add([]byte{0x0B, 0x40, 0x01, 0x08, 0x90, 0x00, 0x0B, 0x00, 0x3C, 0x08, 0x44, 0x01})
	f.Add([]byte{0x18, 0x00, 0x02, 0x18, 0x04, 0x02, 0x18, 0x08, 0x02, 0x1B, 0x0C, 0x02})
	f.Add([]byte{0x08, 0x00, 0x10, 0x13, 0x00, 0x80, 0x08, 0x40, 0x10, 0x13, 0x40, 0x80})
	f.Add([]byte{0x3B, 0xFC, 0x03, 0x3B, 0x00, 0x04, 0x18, 0xF8, 0x03, 0x18, 0x04, 0x04, 0x07, 0x00, 0x00})

	ccfgs := []cache.Config{
		{Size: 4096, LineSize: 64, Ways: 2}, // unrolled 2-way probe + memo
		{Size: 8192, LineSize: 32, Ways: 4}, // general probe loop
	}
	tcfg := cache.TLBConfig{Entries: 8, PageSize: 1 << 10}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, ccfg := range ccfgs {
			fast := cache.New(ccfg)
			ref := check.NewRefCache(ccfg)
			ftlb := cache.NewTLB(tcfg)
			rtlb := check.NewRefTLB(tcfg)

			// Two cache lanes and two attached TLB lanes on the fast side
			// model a stream kernel's per-stream memos; the reference side
			// always uses the plain path, so any lane-vs-plain divergence
			// (results, counters, replacement) fails the oracle.
			var lanes [2]cache.Lane
			var tlanes [2]cache.TLBLane
			lanes[0].Reset()
			lanes[1].Reset()
			ftlb.AttachLane(&tlanes[0])
			ftlb.AttachLane(&tlanes[1])

			for i := 0; i+3 <= len(data); i += 3 {
				op := data[i]
				a := cache.Addr(uint64(data[i+1]) | uint64(data[i+2])<<8)
				switch op & 7 {
				case 0, 1, 2, 3, 4: // access; ops 3-4 write
					write := op&7 >= 3
					var fm bool
					var fr cache.AccessResult
					switch (op >> 3) & 3 {
					case 0: // plain shared-memo path
						fm = ftlb.Access(a)
						fr = fast.Access(a, write)
					case 1, 2: // lane path, one of two interleaved streams
						li := int((op>>3)&3) - 1
						fm = ftlb.AccessLane(&tlanes[li], a)
						fr = fast.AccessLane(&lanes[li], a, write)
					case 3: // the split the kernels inline
						li := int(op>>5) & 1
						fm = false
						if !ftlb.LaneHit(&tlanes[li], a) {
							fm = ftlb.LaneRefill(&tlanes[li], a)
						}
						if fast.LaneHit(&lanes[li], a, write) {
							fr = cache.AccessResult{Hit: true}
						} else {
							fr = fast.AccessLaneMiss(&lanes[li], a, write)
						}
					}
					rm := rtlb.Access(a)
					if fm != rm {
						t.Fatalf("%+v op %d: tlb access (%#x) fast=%v ref=%v", ccfg, i, a, fm, rm)
					}
					rr := ref.Access(a, write)
					if fr.Hit != rr.Hit || fr.WriteBack != rr.WriteBack ||
						(fr.WriteBack && fr.WritebackAddr != rr.WritebackAddr) {
						t.Fatalf("%+v op %d: Access(%#x, write=%v) fast=%+v ref=%+v",
							ccfg, i, a, write, fr, rr)
					}
				case 5: // page-run translation (the walkBlock hoist)
					n := uint64(op>>3) & 15
					if fm, rm := ftlb.AccessN(a, n), rtlb.AccessN(a, n); fm != rm {
						t.Fatalf("%+v op %d: tlb.AccessN(%#x, %d) fast=%v ref=%v", ccfg, i, a, n, fm, rm)
					}
				case 6:
					fp, fd := fast.Invalidate(a)
					rp, rd := ref.Invalidate(a)
					if fp != rp || fd != rd {
						t.Fatalf("%+v op %d: Invalidate(%#x) fast=(%v,%v) ref=(%v,%v)",
							ccfg, i, a, fp, fd, rp, rd)
					}
				case 7:
					if fd, rd := fast.Flush(), ref.Flush(); fd != rd {
						t.Fatalf("%+v op %d: Flush fast=%d ref=%d dirty lines", ccfg, i, fd, rd)
					}
					ftlb.Flush()
					rtlb.Flush()
				}
			}

			fs, rs := fast.Stats(), ref.Counts()
			if fs.Accesses != rs.Accesses || fs.Misses != rs.Misses || fs.Writebacks != rs.Writebacks {
				t.Fatalf("%+v: final cache counts fast=%+v ref=%+v", ccfg, fs, rs)
			}
			ts, rt := ftlb.Stats(), rtlb.Counts()
			if ts.Accesses != rt.Accesses || ts.Misses != rt.Misses {
				t.Fatalf("%+v: final TLB counts fast=%+v ref=%+v", ccfg, ts, rt)
			}
		}
	})
}
