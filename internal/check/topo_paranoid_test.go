// Paranoid differential coverage for the non-default interconnects: the
// distance-class pricing memo, the hot-path class rows, and the checker's
// reference oracle must all agree on every access when the machine is
// built on a fat-tree, torus, dragonfly, or two-tier NUMA network.
package check_test

import (
	"testing"

	"repro"
	"repro/internal/topology"
)

// TestNewTopologies128ProcParanoid runs one ≥128-processor radix sort
// per new network kind with the paranoid checker shadowing every access.
// A pass means the per-class pricing fast path matches the live-protocol
// reference price on each topology at a scale the paper never reached.
func TestNewTopologies128ProcParanoid(t *testing.T) {
	if testing.Short() {
		t.Skip("128-proc paranoid runs are not short")
	}
	for _, kind := range []string{
		topology.KindFatTree,
		topology.KindTorus,
		topology.KindTorus3D,
		topology.KindDragonfly,
		topology.KindNUMA2,
	} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			out, err := repro.Run(repro.Experiment{
				Algorithm: repro.Radix, Model: repro.SHMEM,
				N: 1 << 15, Procs: 128, Radix: 8,
				Topo:     kind,
				Paranoid: true,
			})
			if err != nil {
				t.Fatalf("paranoid run on %s failed: %v", kind, err)
			}
			if !out.Verified {
				t.Errorf("%s: output not verified sorted", kind)
			}
			if out.TimeNs <= 0 {
				t.Errorf("%s: non-positive simulated time %v", kind, out.TimeNs)
			}
		})
	}
}
