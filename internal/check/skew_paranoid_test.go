// Paranoid coverage for the skew distributions (DESIGN.md §14): every
// new generator must run clean under the full reference-model shadow at
// 1/4/16 procs, and the adversarial shape-target cell (64 procs, small
// sampler) must too — the splitter-defeating receive imbalance routes
// most of the key volume through one processor's protocol traffic,
// which is exactly the kind of asymmetric access pattern the fast
// paths could mis-price.
package check_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/keys"
)

// TestParanoidSkewDists: the acceptance cell — all four skew
// distributions, paranoid-clean at 1/4/16 procs, across the three
// algorithms (one model each, chosen to cover the CC-SAS load/store,
// SHMEM one-sided and MPI two-sided paths).
func TestParanoidSkewDists(t *testing.T) {
	type combo struct {
		algo  repro.Algorithm
		model repro.Model
	}
	combos := []combo{
		{repro.Sample, repro.CCSAS},
		{repro.Radix, repro.SHMEM},
		{repro.Psrs, repro.MPI},
	}
	procs := []int{1, 4, 16}
	if testing.Short() {
		procs = []int{4}
	}
	for _, d := range keys.SkewDists {
		for _, c := range combos {
			for _, p := range procs {
				name := fmt.Sprintf("%s-%s-%s-p%d", d, c.algo, c.model, p)
				d, c, p := d, c, p
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					out, err := repro.Run(repro.Experiment{
						Algorithm: c.algo, Model: c.model,
						N: 1 << 13, Procs: p, Radix: 8, Dist: d,
						Paranoid: true,
					})
					if err != nil {
						t.Fatalf("paranoid run failed: %v", err)
					}
					if !out.Verified {
						t.Error("output not verified sorted")
					}
				})
			}
		}
	}
}

// TestParanoidAdversarialShapeCell covers the adversarial shape
// target's configuration — 64 procs with the undersized sampler — at a
// reduced N, plus the byte-identity half of the paranoid contract on
// that cell: shadowing every access must not change the sorted output.
func TestParanoidAdversarialShapeCell(t *testing.T) {
	e := repro.Experiment{
		Algorithm: repro.Sample, Model: repro.CCSAS,
		N: 1 << 14, Procs: 64, Radix: 8,
		Dist: keys.Adversarial, SampleSize: 16, Seed: 1,
	}
	plain, err := repro.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	e.Paranoid = true
	paranoid, err := repro.Run(e)
	if err != nil {
		t.Fatalf("paranoid run failed: %v", err)
	}
	if !paranoid.Verified {
		t.Error("output not verified sorted")
	}
	if paranoid.TimeNs != plain.TimeNs {
		t.Errorf("paranoid changed simulated time: %v != %v", paranoid.TimeNs, plain.TimeNs)
	}
	a, b := plain.Result.Sorted, paranoid.Result.Sorted
	if len(a) != len(b) {
		t.Fatal("output length changed under paranoid")
	}
	ab := make([]byte, 0, len(a)*4)
	bb := make([]byte, 0, len(b)*4)
	for i := range a {
		ab = append(ab, byte(a[i]), byte(a[i]>>8), byte(a[i]>>16), byte(a[i]>>24))
		bb = append(bb, byte(b[i]), byte(b[i]>>8), byte(b[i]>>16), byte(b[i]>>24))
	}
	if !bytes.Equal(ab, bb) {
		t.Error("sorted output differs under paranoid")
	}
}
