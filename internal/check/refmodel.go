package check

import "repro/internal/cache"

// This file holds the unmemoized reference models that shadow the fast
// cache and TLB in paranoid mode. They implement the same abstract
// machines — a set-associative write-back LRU cache and a fully-
// associative FIFO TLB — with the most naive data structures available:
// a plain struct per line, a Go map for the TLB resident set, no memo
// entries, no packed meta words, no open addressing. Every observable
// (hit/miss, writeback and its address, event counts, replacement
// decisions) must match the fast models bit for bit; any divergence is a
// bug in the fast path's memo/packing layer and is reported as a
// Violation by the machine's paranoid hooks.
//
// Replacement-policy details replicated from the fast models:
//
//   - Cache LRU tick: the access counter itself, incremented before use,
//     so the first access stamps lru=1 and lru 0 marks an invalid way.
//   - Cache victim: the first invalid way in way order; otherwise the
//     way with the strictly lowest lru, first way winning ties.
//   - TLB replacement: FIFO over resident pages (ring of Entries pages);
//     hits do not reorder the ring.

// refLine is one cache line in the reference model: the naive struct the
// fast path's packed meta word replaced.
type refLine struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// RefCacheResult reports one reference-cache access.
type RefCacheResult struct {
	Hit           bool
	WriteBack     bool
	WritebackAddr cache.Addr
}

// RefCounts are the reference model's event counters.
type RefCounts struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// RefCache is the unmemoized reference cache model.
type RefCache struct {
	cfg       cache.Config
	sets      int
	lineShift uint
	tagShift  uint
	lines     []refLine // sets*ways, set-major
	counts    RefCounts
}

// NewRefCache builds a reference cache with the given geometry. Like the
// fast model it panics on an invalid configuration (geometries come from
// validated machine configs).
func NewRefCache(cfg cache.Config) *RefCache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Ways)
	lineShift := uint(0)
	for 1<<lineShift < cfg.LineSize {
		lineShift++
	}
	tagShift := uint(0)
	for 1<<tagShift < sets {
		tagShift++
	}
	return &RefCache{
		cfg:       cfg,
		sets:      sets,
		lineShift: lineShift,
		tagShift:  tagShift,
		lines:     make([]refLine, sets*cfg.Ways),
	}
}

// Counts returns the reference model's event counters.
func (c *RefCache) Counts() RefCounts { return c.counts }

// Access simulates one access to address a; write marks the line dirty.
func (c *RefCache) Access(a cache.Addr, write bool) RefCacheResult {
	c.counts.Accesses++
	tick := c.counts.Accesses
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & uint64(c.sets-1))
	tag := lineNum >> c.tagShift
	ways := c.cfg.Ways
	base := set * ways

	// Probe for a hit.
	for i := 0; i < ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			ln.lru = tick
			if write {
				ln.dirty = true
			}
			return RefCacheResult{Hit: true}
		}
	}

	// Miss: pick the victim — first invalid way, else strictly-lowest
	// lru with the first way winning ties.
	c.counts.Misses++
	victim := &c.lines[base]
	for i := 0; i < ways; i++ {
		ln := &c.lines[base+i]
		if !ln.valid {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	var res RefCacheResult
	if victim.valid && victim.dirty {
		res.WriteBack = true
		res.WritebackAddr = cache.Addr((victim.tag<<c.tagShift | uint64(set)) << c.lineShift)
		c.counts.Writebacks++
	}
	victim.valid = true
	victim.dirty = write
	victim.tag = tag
	victim.lru = tick
	return res
}

// Invalidate drops the line holding a, if present, and reports whether
// it was present and dirty.
func (c *RefCache) Invalidate(a cache.Addr) (present, dirty bool) {
	lineNum := uint64(a) >> c.lineShift
	set := int(lineNum & uint64(c.sets-1))
	tag := lineNum >> c.tagShift
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			*ln = refLine{}
			return true, d
		}
	}
	return false, false
}

// Flush invalidates every line and returns the number of dirty lines
// dropped.
func (c *RefCache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = refLine{}
	}
	return dirty
}

// RefTLBCounts are the reference TLB's event counters.
type RefTLBCounts struct {
	Accesses uint64
	Misses   uint64
}

// RefTLB is the unmemoized reference TLB model: a map resident set plus
// a FIFO ring, exactly the structure the fast model's open-addressing
// table and translation memo replaced.
type RefTLB struct {
	cfg       cache.TLBConfig
	pageShift uint
	resident  map[uint64]bool
	ring      []uint64
	head      int
	counts    RefTLBCounts
}

// NewRefTLB builds a reference TLB. Panics on invalid configuration.
func NewRefTLB(cfg cache.TLBConfig) *RefTLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.PageSize {
		shift++
	}
	return &RefTLB{
		cfg:       cfg,
		pageShift: shift,
		resident:  make(map[uint64]bool, cfg.Entries),
		ring:      make([]uint64, 0, cfg.Entries),
	}
}

// Counts returns the reference model's event counters.
func (t *RefTLB) Counts() RefTLBCounts { return t.counts }

// Access simulates a translation of address a and reports whether it
// missed.
func (t *RefTLB) Access(a cache.Addr) bool {
	t.counts.Accesses++
	return t.translate(uint64(a) >> t.pageShift)
}

// AccessN simulates n same-page accesses (one translation, n counted),
// mirroring the fast model's block-walk entry point.
func (t *RefTLB) AccessN(a cache.Addr, n uint64) bool {
	if n == 0 {
		return false
	}
	t.counts.Accesses += n
	return t.translate(uint64(a) >> t.pageShift)
}

func (t *RefTLB) translate(page uint64) bool {
	if t.resident[page] {
		return false
	}
	t.counts.Misses++
	t.resident[page] = true
	if len(t.ring) < t.cfg.Entries {
		t.ring = append(t.ring, page)
		return true
	}
	evicted := t.ring[t.head]
	delete(t.resident, evicted)
	t.ring[t.head] = page
	t.head++
	if t.head == t.cfg.Entries {
		t.head = 0
	}
	return true
}

// Flush drops all translations.
func (t *RefTLB) Flush() {
	clear(t.resident)
	t.ring = t.ring[:0]
	t.head = 0
}
