// Tests for spot-sampled paranoid mode (Config.ParanoidSampleEvery,
// DESIGN.md §9): N = 1 is the full per-access shadow, N > 1 keeps the
// fast batched kernels and runs the stateless oracles on every Nth
// priced event. Sampling must never change simulated results, and a
// corrupted fast-path structure must still be caught.
package check_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/check"
	"repro/internal/machine"
)

// sampleCell is a small radix cell exercising the batched kernels on
// every pass (counting, permutation, transfers).
func sampleCell(sampleEvery int) (*repro.Outcome, error) {
	return repro.Run(repro.Experiment{
		Algorithm: repro.Radix, Model: repro.CCSASNew,
		N: 1 << 14, Procs: 8, Radix: 8, Seed: 42,
		Paranoid:            sampleEvery > 0,
		ParanoidSampleEvery: sampleEvery,
	})
}

// TestParanoidSampleIdentical asserts the three paranoid flavors — off,
// full (N=1), and sampled (N=7) — produce bit-identical simulated
// results: same virtual time, same per-processor stats, same output.
// N=1 routes every access through the hooked per-access path; N=7 stays
// on the batched kernels; agreement across all three is the
// differential guarantee the kernels are built on.
func TestParanoidSampleIdentical(t *testing.T) {
	base, err := sampleCell(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7} {
		out, err := sampleCell(n)
		if err != nil {
			t.Fatalf("sample-every=%d: %v", n, err)
		}
		if out.TimeNs != base.TimeNs {
			t.Errorf("sample-every=%d: TimeNs=%v, want %v", n, out.TimeNs, base.TimeNs)
		}
		if !reflect.DeepEqual(out.Result.Run.PerProc, base.Result.Run.PerProc) {
			t.Errorf("sample-every=%d: per-proc stats diverge from unchecked run", n)
		}
		if !reflect.DeepEqual(out.Result.Sorted, base.Result.Sorted) {
			t.Errorf("sample-every=%d: sorted output diverges", n)
		}
	}
}

// TestMutationPriceTableSampled is TestMutationPriceTable under
// spot-sampling: with checks running on only every 5th priced event the
// corrupted (Private, read) price entry must still be reported — the
// cell has far more cold misses than the sampling stride. This is the
// "teeth" test for sampled mode; a sampler that silently stopped
// checking would pass every clean-run test.
func TestMutationPriceTableSampled(t *testing.T) {
	body := func(corrupt bool) *check.Checker {
		cfg := machine.Origin2000Scaled(1)
		cfg.ParanoidSampleEvery = 5 // implies Paranoid via Validate
		m := machine.MustNew(cfg)
		if corrupt {
			m.CorruptPriceEntryForTest(machine.Private, false, 0, 0, 7.5)
		}
		arr := machine.NewArrayBlocked[int64](m, "a", 1<<12)
		m.Run(func(p *machine.Proc) {
			for i := 0; i < arr.Len(); i++ {
				arr.Load(p, i, machine.Private)
			}
		})
		return m.Checker()
	}
	if ck := body(false); ck.Count() != 0 {
		t.Fatalf("control run reported %d violations: %v", ck.Count(), ck.Err())
	}
	ck := body(true)
	if ck.Count() == 0 {
		t.Fatal("corrupted pricing table went undetected under sampling")
	}
	if ok, kinds := hasKind(ck, "price-mismatch"); !ok {
		t.Errorf("no price-mismatch violation; got kinds: %s", kinds)
	}
}
