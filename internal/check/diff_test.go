// Differential test suite for paranoid mode (DESIGN.md §9).
//
// TestParanoidAllPrograms runs every sorting program at small N with the
// paranoid checker enabled: each run shadows every simulated access with
// the reference cache/TLB/page-home/protocol models and asserts the
// structural invariants, so a pass means the PR-3 fast paths and the
// reference semantics agree access-by-access on real workloads.
//
// The mutation tests then prove the oracle has teeth: each one injects a
// deliberate corruption into a fast-path structure (a pricing-table
// entry, the cache's MRU line memo) and asserts the checker reports it.
package check_test

import (
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/check"
	"repro/internal/machine"
	"repro/internal/sorts"
)

// TestParanoidAllPrograms is the differential suite: all program
// combinations (the paper's 8 plus the staged-copy MPI variants) at
// 1/4/16 procs with paranoid mode on, asserting zero violations. The
// sequential baseline only exists at procs=1.
func TestParanoidAllPrograms(t *testing.T) {
	type combo struct {
		algo  repro.Algorithm
		model repro.Model
	}
	combos := []combo{
		{repro.Radix, repro.Seq},
		{repro.Radix, repro.CCSAS},
		{repro.Radix, repro.CCSASNew},
		{repro.Radix, repro.MPI},
		{repro.Radix, repro.MPISGI},
		{repro.Radix, repro.SHMEM},
		{repro.Sample, repro.CCSAS},
		{repro.Sample, repro.MPI},
		{repro.Sample, repro.MPISGI},
		{repro.Sample, repro.SHMEM},
		{repro.Psrs, repro.CCSAS},
		{repro.Psrs, repro.MPI},
		{repro.Psrs, repro.MPISGI},
		{repro.Psrs, repro.SHMEM},
	}
	procs := []int{1, 4, 16}
	if testing.Short() {
		procs = []int{4}
	}
	for _, c := range combos {
		for _, p := range procs {
			if c.model == repro.Seq && p != 1 {
				continue
			}
			name := fmt.Sprintf("%s-%s-p%d", c.algo, c.model, p)
			c, p := c, p
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				out, err := repro.Run(repro.Experiment{
					Algorithm: c.algo, Model: c.model,
					N: 1 << 13, Procs: p, Radix: 8,
					Paranoid: true,
				})
				if err != nil {
					t.Fatalf("paranoid run failed: %v", err)
				}
				if !out.Verified {
					t.Error("output not verified sorted")
				}
			})
		}
	}
}

// TestParanoidMatchesNormalRun pins the "byte-identical results" half of
// the paranoid contract: the same experiment with and without the
// checker must report the same simulated time.
func TestParanoidMatchesNormalRun(t *testing.T) {
	run := func(paranoid bool) float64 {
		out, err := repro.Run(repro.Experiment{
			Algorithm: repro.Radix, Model: repro.SHMEM,
			N: 1 << 13, Procs: 8, Radix: 8, Paranoid: paranoid,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.TimeNs
	}
	if normal, paranoid := run(false), run(true); normal != paranoid {
		t.Errorf("simulated time diverges: normal=%v paranoid=%v", normal, paranoid)
	}
}

// hasKind reports whether the checker recorded at least one violation of
// the given kind, and returns the kinds seen for the failure message.
func hasKind(ck *check.Checker, kind string) (bool, string) {
	var kinds []string
	for _, v := range ck.Violations() {
		kinds = append(kinds, v.Kind)
		if v.Kind == kind {
			return true, ""
		}
	}
	return false, strings.Join(kinds, ", ")
}

// TestMutationPriceTable corrupts one pricing-table entry — the
// (Private, read) miss price for node 0's local home — and asserts the
// live-protocol price oracle catches the divergence on the first cold
// miss. Without the corruption the identical body reports nothing.
func TestMutationPriceTable(t *testing.T) {
	body := func(corrupt bool) *check.Checker {
		cfg := machine.Origin2000Scaled(1)
		cfg.Paranoid = true
		m := machine.MustNew(cfg)
		if corrupt {
			m.CorruptPriceEntryForTest(machine.Private, false, 0, 0, 7.5)
		}
		arr := machine.NewArrayBlocked[int64](m, "a", 1<<12)
		m.Run(func(p *machine.Proc) {
			for i := 0; i < arr.Len(); i++ {
				arr.Load(p, i, machine.Private) // cold misses hit the corrupted row
			}
		})
		return m.Checker()
	}
	if ck := body(false); ck.Count() != 0 {
		t.Fatalf("control run reported %d violations: %v", ck.Count(), ck.Err())
	}
	ck := body(true)
	if ck.Count() == 0 {
		t.Fatal("corrupted pricing table went undetected")
	}
	if ok, kinds := hasKind(ck, "price-mismatch"); !ok {
		t.Errorf("no price-mismatch violation; got kinds: %s", kinds)
	}
	if err := ck.Err(); err == nil || !strings.Contains(err.Error(), "price-mismatch") {
		t.Errorf("Err() = %v, want a price-mismatch violation", err)
	}
}

// TestMutationPsrsPartitionBoundary corrupts one processor's PSRS
// partition boundary vector (shifting a cut point into the next
// destination's range) and asserts the corruption is caught by the
// sorted-output oracle — every model's exchange and merge execute the
// bad plan faithfully, so the failure must surface as an invalid
// output, not as a silent repricing or a crash. The control run with
// the hook installed but inert must pass.
func TestMutationPsrsPartitionBoundary(t *testing.T) {
	body := func(model repro.Model, corrupt bool) error {
		sorts.SetCorruptPSRSBoundaryForTest(func(proc, np int, b []int64) {
			if !corrupt || proc != 0 || len(b) < 3 {
				return
			}
			// Move the first cut halfway toward the second: keys that
			// belong to destination 0 leak into destination 1, breaking
			// ascending order at the partition junction.
			b[1] = (b[1] + b[2] + 1) / 2
		})
		defer sorts.SetCorruptPSRSBoundaryForTest(nil)
		_, err := repro.Run(repro.Experiment{
			Algorithm: repro.Psrs, Model: model,
			N: 1 << 13, Procs: 4, Radix: 8,
		})
		return err
	}
	for _, model := range []repro.Model{repro.CCSAS, repro.MPI, repro.SHMEM} {
		if err := body(model, false); err != nil {
			t.Fatalf("%s control run failed: %v", model, err)
		}
		err := body(model, true)
		if err == nil {
			t.Fatalf("%s: corrupted partition boundary went undetected", model)
		}
		if !strings.Contains(err.Error(), "output invalid") {
			t.Errorf("%s: error %v, want the sorted-output oracle's 'output invalid'", model, err)
		}
	}
}

// TestMutationCacheMemo poisons the cache's MRU line memo to name a
// non-resident line, making the fast path report a spurious hit; the
// unmemoized reference cache disagrees and the checker must flag the
// access.
func TestMutationCacheMemo(t *testing.T) {
	cfg := machine.Origin2000Scaled(1)
	cfg.Paranoid = true
	m := machine.MustNew(cfg)
	arr := machine.NewArrayBlocked[int64](m, "a", 1<<13)
	m.Run(func(p *machine.Proc) {
		arr.Load(p, 0, machine.Private) // line 0 resident, memo points at it
		// Poison the memo: claim the (cold) line of element 1<<12 is the
		// MRU-resident line. The next access to it falsely memo-hits.
		p.CorruptCacheMemoForTest(arr.Addr(1 << 12))
		arr.Load(p, 1<<12, machine.Private)
	})
	ck := m.Checker()
	if ck.Count() == 0 {
		t.Fatal("poisoned cache memo went undetected")
	}
	if ok, kinds := hasKind(ck, "cache-access"); !ok {
		t.Errorf("no cache-access violation; got kinds: %s", kinds)
	}
	v := ck.Violations()[0]
	if v.Proc != 0 || v.Addr == 0 {
		t.Errorf("violation should name proc 0 and the faulting address, got %+v", v)
	}
}
