// Package check is the simulator's "paranoid mode": slow reference
// implementations and model invariants that shadow the fast simulation
// path access by access.
//
// The fast path (memoized pricing tables, the flat page→home table, the
// cache/TLB memo layers — see DESIGN.md §8) was argued correct mostly by
// byte-identical outputs. Paranoid mode turns that argument into a
// machine-checked one: when machine.Config.Paranoid is set, every
// simulated access is replayed through unmemoized reference models
// (RefCache, RefTLB, the legacy region-walk home resolution, the live
// coherence protocol) and every disagreement is recorded as a structured
// Violation naming the processor, phase, address, and the fast-vs-
// reference values. Structural invariants — directory-transition
// legality, virtual-time monotonicity, the BUSY+LMEM+RMEM+SYNC
// accounting identity, and Sharing↔TxClass traffic conservation — are
// asserted as the run executes and when it finishes.
//
// The package is a leaf: it depends only on internal/cache (for the
// geometry types the reference models mirror). The machine layer owns
// the hook sites; this package owns the models and the violation log.
//
// Paranoid mode is for correctness work, not measurement: it slows the
// host down severalfold but never changes a simulated result (a paranoid
// run's outputs are byte-identical to a normal run's, enforced by the
// differential tests). When disabled it costs one nil check per hook
// site and zero allocations (TestParanoidDisabledZeroAlloc).
package check

import (
	"fmt"
	"sort"
	"sync"
)

// Violation is one detected disagreement between the fast path and a
// reference model, or one broken structural invariant.
type Violation struct {
	// Proc is the simulated processor that detected the violation.
	Proc int
	// Phase is the processor's phase label at detection time ("" when
	// outside any labeled phase or during end-of-run checks).
	Phase string
	// Addr is the simulated address involved, 0 when not address-bound.
	Addr uint64
	// Kind names the broken check (e.g. "cache-hit", "page-home",
	// "price-latency", "clock-monotonic", "phase-identity", "tx-conservation").
	Kind string
	// Fast and Ref describe the fast-path and reference values that
	// disagree (for invariant checks, Fast holds the observed state and
	// Ref the required one).
	Fast string
	Ref  string
}

// Error formats the violation as a one-line structured error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s violation: proc=%d phase=%q addr=%#x fast=%s ref=%s",
		v.Kind, v.Proc, v.Phase, v.Addr, v.Fast, v.Ref)
}

// maxKept bounds how many violations a Checker stores verbatim; a broken
// oracle can disagree on every access of a multi-million-access run, and
// the first few disagreements per processor carry all the signal. The
// total count is always exact.
const maxKept = 64

// Checker collects violations from all processors of a paranoid run. It
// is safe for concurrent use (the simulator runs one goroutine per
// processor).
type Checker struct {
	mu    sync.Mutex
	count int
	kept  []*Violation
}

// New builds an empty checker.
func New() *Checker { return &Checker{} }

// Report records one violation. The first maxKept are kept verbatim;
// later ones only increment the count.
func (c *Checker) Report(v Violation) {
	c.mu.Lock()
	c.count++
	if len(c.kept) < maxKept {
		vc := v
		c.kept = append(c.kept, &vc)
	}
	c.mu.Unlock()
}

// Count returns the total number of violations reported so far.
func (c *Checker) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Violations returns the kept violations in deterministic order: sorted
// by processor, preserving each processor's own report order (reports
// from different processors interleave under host scheduling; within one
// processor they are sequential).
func (c *Checker) Violations() []*Violation {
	c.mu.Lock()
	out := make([]*Violation, len(c.kept))
	copy(out, c.kept)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}

// Err returns nil when no violation was reported, and otherwise an error
// carrying the first (per-proc-ordered) violation and the total count.
func (c *Checker) Err() error {
	vs := c.Violations()
	n := c.Count()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return vs[0]
	}
	return fmt.Errorf("%d violations, first: %w", n, vs[0])
}
