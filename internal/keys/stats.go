package keys

import "math"

// BucketCounts histograms keys by their radix-r digit at the given pass
// (the distribution radix sort's communication volume depends on).
func BucketCounts(keys []uint32, pass, radixBits int) []int64 {
	b := 1 << radixBits
	mask := uint32(b - 1)
	shift := uint(pass * radixBits)
	out := make([]int64, b)
	for _, k := range keys {
		out[(k>>shift)&mask]++
	}
	return out
}

// MovedFraction returns the fraction of keys whose first-digit bucket
// maps to a different processor than the one initially holding them —
// the communication volume of radix sort's first pass under blocked
// bucket assignment. The local distribution yields ~0; remote ~1.
func MovedFraction(keys []uint32, procs, radixBits int) float64 {
	if len(keys) == 0 {
		return 0
	}
	buckets := 1 << radixBits
	perProc := buckets / procs
	if perProc == 0 {
		perProc = 1
	}
	mask := uint32(buckets - 1)
	moved := 0
	for i, k := range keys {
		// Index i is owned by the processor whose blocked slice
		// [p*n/P, (p+1)*n/P) contains it: the smallest p with
		// (p+1)*n/P > i, i.e. floor((i*P+P-1)/n). Plain i*P/n is wrong
		// when P does not divide n — it assigns boundary indices to the
		// previous processor (n=10, P=4: index 2 belongs to processor 1's
		// slice [2,5) but 2*4/10 = 0) and under-counts moved keys.
		owner := (i*procs + procs - 1) / len(keys)
		dest := int(k&mask) / perProc
		if dest >= procs {
			dest = procs - 1
		}
		if dest != owner {
			moved++
		}
	}
	return float64(moved) / float64(len(keys))
}

// Imbalance returns max/mean over a bucket histogram (1 = perfectly
// balanced). Sample sort's receive imbalance and radix sort's partition
// skew both reduce to this.
func Imbalance(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum, maxV int64
	for _, c := range counts {
		sum += c
		if c > maxV {
			maxV = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxV) / mean
}

// Entropy returns the Shannon entropy (bits) of a bucket histogram,
// normalized by the maximum log2(len(counts)); 1 means uniform.
func Entropy(counts []int64) float64 {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum == 0 || len(counts) < 2 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(sum)
		h -= p * math.Log2(p)
	}
	return h / math.Log2(float64(len(counts)))
}

// SortednessRuns returns the number of maximal non-decreasing runs; 1
// means fully sorted, n means strictly decreasing. The remote/local
// distributions' local-sort advantage shows up as a low run count per
// processor chunk.
func SortednessRuns(keys []uint32) int {
	if len(keys) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			runs++
		}
	}
	return runs
}
