package keys

import (
	"testing"
)

func TestBucketCounts(t *testing.T) {
	keys := []uint32{0, 1, 255, 256, 257}
	counts := BucketCounts(keys, 0, 8)
	if counts[0] != 2 || counts[1] != 2 || counts[255] != 1 {
		t.Errorf("pass 0 counts wrong: %v %v %v", counts[0], counts[1], counts[255])
	}
	counts = BucketCounts(keys, 1, 8)
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("pass 1 counts wrong: %v %v", counts[0], counts[1])
	}
}

func TestMovedFractionExtremes(t *testing.T) {
	const n, p, r = 8000, 8, 8
	local := MustGenerate(Local, GenConfig{N: n, Procs: p, RadixBits: r})
	remote := MustGenerate(Remote, GenConfig{N: n, Procs: p, RadixBits: r})
	gauss := MustGenerate(Gauss, GenConfig{N: n, Procs: p, RadixBits: r})

	if f := MovedFraction(local, p, r); f != 0 {
		t.Errorf("local moved fraction = %v, want 0", f)
	}
	if f := MovedFraction(remote, p, r); f != 1 {
		t.Errorf("remote moved fraction = %v, want 1", f)
	}
	// A realistic distribution moves about (p-1)/p of its keys.
	want := float64(p-1) / float64(p)
	if f := MovedFraction(gauss, p, r); f < want-0.1 || f > want+0.1 {
		t.Errorf("gauss moved fraction = %v, want ~%v", f, want)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int64{10, 10, 10, 10}); got != 1 {
		t.Errorf("balanced imbalance = %v", got)
	}
	if got := Imbalance([]int64{40, 0, 0, 0}); got != 4 {
		t.Errorf("all-in-one imbalance = %v", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Errorf("empty imbalance = %v", got)
	}
	if got := Imbalance([]int64{0, 0}); got != 0 {
		t.Errorf("zero imbalance = %v", got)
	}
}

func TestEntropyShapes(t *testing.T) {
	const n, p, r = 32768, 8, 8
	random := MustGenerate(Random, GenConfig{N: n, Procs: p, RadixBits: r})
	zero := MustGenerate(Zero, GenConfig{N: n, Procs: p, RadixBits: r})
	hRandom := Entropy(BucketCounts(random, 0, r))
	hZero := Entropy(BucketCounts(zero, 0, r))
	if hRandom < 0.99 {
		t.Errorf("random first-digit entropy = %v, want ~1", hRandom)
	}
	if hZero >= hRandom {
		t.Errorf("zero-spiked entropy (%v) should be below uniform (%v)", hZero, hRandom)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
	if got := Entropy([]int64{5}); got != 0 {
		t.Errorf("single-bucket entropy = %v", got)
	}
}

func TestSortednessRuns(t *testing.T) {
	if got := SortednessRuns([]uint32{1, 2, 3, 4}); got != 1 {
		t.Errorf("sorted runs = %d", got)
	}
	if got := SortednessRuns([]uint32{4, 3, 2, 1}); got != 4 {
		t.Errorf("reverse runs = %d", got)
	}
	if got := SortednessRuns(nil); got != 0 {
		t.Errorf("empty runs = %d", got)
	}
	if got := SortednessRuns([]uint32{2, 2, 2}); got != 1 {
		t.Errorf("equal keys runs = %d", got)
	}
}

func TestHalfHalvesOccupiedBuckets(t *testing.T) {
	// The half distribution's purpose: odd first-digit buckets are empty,
	// halving radix sort's message count at fixed volume.
	const n, p, r = 32768, 8, 8
	half := MustGenerate(Half, GenConfig{N: n, Procs: p, RadixBits: r})
	counts := BucketCounts(half, 0, r)
	for d := 1; d < len(counts); d += 2 {
		if counts[d] != 0 {
			t.Fatalf("odd bucket %d non-empty: %d", d, counts[d])
		}
	}
	occupied := 0
	for _, c := range counts {
		if c > 0 {
			occupied++
		}
	}
	if occupied == 0 || occupied > len(counts)/2 {
		t.Errorf("occupied buckets = %d, want at most half of %d", occupied, len(counts))
	}
}

func TestBucketDistributionPreSortedPerProcessor(t *testing.T) {
	// The bucket distribution's partitions hold p ascending-range runs:
	// low sortedness-run count relative to random data.
	const n, p, r = 16384, 8, 8
	bucket := MustGenerate(Bucket, GenConfig{N: n, Procs: p, RadixBits: r})
	random := MustGenerate(Random, GenConfig{N: n, Procs: p, RadixBits: r})
	lo, hi := 0, n/p
	// Top-bits sortedness: compare run counts of the digit sequences.
	digitsOf := func(ks []uint32) []uint32 {
		out := make([]uint32, len(ks))
		for i, k := range ks {
			out[i] = k >> 23 // top byte of the 31-bit key
		}
		return out
	}
	rb := SortednessRuns(digitsOf(bucket[lo:hi]))
	rr := SortednessRuns(digitsOf(random[lo:hi]))
	if rb >= rr {
		t.Errorf("bucket partition runs (%d) should be below random's (%d)", rb, rr)
	}
}

// TestMovedFractionBlockedOwnership is the regression test for the
// ownership inverse: the owner of index i must be the processor whose
// blocked slice [p*n/P, (p+1)*n/P) contains i, including when P does
// not divide n. The pre-fix i*P/n formula assigned boundary indices to
// the previous processor and under-counted moved keys.
func TestMovedFractionBlockedOwnership(t *testing.T) {
	// Brute-force oracle over the same bounds() partition the sorts use.
	ownerOf := func(i, n, p int) int {
		for proc := 0; proc < p; proc++ {
			lo, hi := bounds(n, p, proc)
			if i >= lo && i < hi {
				return proc
			}
		}
		t.Fatalf("index %d unowned (n=%d p=%d)", i, n, p)
		return -1
	}
	for _, tc := range []struct{ n, p int }{{10, 4}, {10007, 8}, {77, 16}, {4096, 64}, {9, 3}} {
		for i := 0; i < tc.n; i++ {
			got := (i*tc.p + tc.p - 1) / tc.n
			if want := ownerOf(i, tc.n, tc.p); got != want {
				t.Fatalf("n=%d p=%d: owner(%d) = %d, want %d", tc.n, tc.p, i, got, want)
			}
		}
	}
	// End-to-end on a non-divisible Local stream: every key's first
	// digit maps back to its own processor, so nothing moves. Under the
	// broken inverse this reported a spurious non-zero fraction.
	const n, p, r = 10007, 8, 8
	local := MustGenerate(Local, GenConfig{N: n, Procs: p, RadixBits: r})
	if f := MovedFraction(local, p, r); f != 0 {
		t.Errorf("local moved fraction = %v at non-divisible n, want 0", f)
	}
	remote := MustGenerate(Remote, GenConfig{N: n, Procs: p, RadixBits: r})
	if f := MovedFraction(remote, p, r); f != 1 {
		t.Errorf("remote moved fraction = %v at non-divisible n, want 1", f)
	}
}

// TestStatsUnderDupHeavy audits the summary helpers against the
// duplicate-heavy generators: bucket counts must cover every key
// exactly once, the imbalance of an all-equal stream is the bucket
// count (all mass in one bucket), and entropy collapses toward 0.
func TestStatsUnderDupHeavy(t *testing.T) {
	const n, p, r = 1 << 14, 8, 8
	dup := MustGenerate(DupHeavy, GenConfig{N: n, Procs: p, RadixBits: r, Seed: 1})
	counts := BucketCounts(dup, 0, r)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != n {
		t.Fatalf("bucket counts sum to %d, want %d", sum, n)
	}
	allEq := MustGenerate(DupHeavy, GenConfig{N: n, Procs: p, RadixBits: r, Seed: 1, DupValues: 1})
	eqCounts := BucketCounts(allEq, 0, r)
	if got, want := Imbalance(eqCounts), float64(len(eqCounts)); got != want {
		t.Errorf("all-equal imbalance = %v, want %v (single occupied bucket)", got, want)
	}
	if e := Entropy(eqCounts); e != 0 {
		t.Errorf("all-equal entropy = %v, want 0", e)
	}
	if e := Entropy(counts); e <= 0 || e >= 1 {
		t.Errorf("dupheavy entropy = %v, want inside (0, 1)", e)
	}
	if runs := SortednessRuns(allEq); runs != 1 {
		t.Errorf("all-equal stream has %d runs, want 1", runs)
	}
}
