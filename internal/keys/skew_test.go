package keys

import (
	"fmt"
	"testing"
)

func TestSkewDistsInRangeAndDeterministic(t *testing.T) {
	for _, d := range SkewDists {
		keys := gen(t, d, 10000, 8, 8)
		if len(keys) != 10000 {
			t.Fatalf("%v: got %d keys", d, len(keys))
		}
		for i, k := range keys {
			if uint64(k) >= MaxKey {
				t.Errorf("%v: key[%d] = %d out of range", d, i, k)
				break
			}
		}
		again := gen(t, d, 10000, 8, 8)
		for i := range keys {
			if keys[i] != again[i] {
				t.Errorf("%v: generation not deterministic at %d", d, i)
				break
			}
		}
	}
}

// TestSkewDistsSeedSensitivity: different seeds must produce
// substantially different streams for every skew generator.
func TestSkewDistsSeedSensitivity(t *testing.T) {
	for _, d := range SkewDists {
		a := MustGenerate(d, GenConfig{N: 4096, Procs: 8, RadixBits: 8, Seed: 1})
		b := MustGenerate(d, GenConfig{N: 4096, Procs: 8, RadixBits: 8, Seed: 2})
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		// Heavy-duplicate streams collide on values by design; the
		// position-wise stream must still be reshuffled.
		if same > len(a)/2 {
			t.Errorf("%v: seeds 1 and 2 agree on %d/%d positions", d, same, len(a))
		}
	}
}

// TestSkewDistsProcsInvariance: Zipf, SelfSim and DupHeavy are single
// sequential streams, so the emitted keys must be byte-identical across
// Procs block boundaries. Adversarial is constructed per processor
// block by design, so its stream legitimately depends on Procs — pinned
// here so an accidental change to either contract is caught.
func TestSkewDistsProcsInvariance(t *testing.T) {
	for _, d := range []Dist{Zipf, SelfSim, DupHeavy} {
		p1 := MustGenerate(d, GenConfig{N: 10000, Procs: 1, RadixBits: 8, Seed: 3})
		p8 := MustGenerate(d, GenConfig{N: 10000, Procs: 8, RadixBits: 8, Seed: 3})
		for i := range p1 {
			if p1[i] != p8[i] {
				t.Errorf("%v: stream depends on Procs at index %d (%d != %d)", d, i, p1[i], p8[i])
				break
			}
		}
	}
	a1 := MustGenerate(Adversarial, GenConfig{N: 1 << 14, Procs: 4, RadixBits: 8, Seed: 3})
	a8 := MustGenerate(Adversarial, GenConfig{N: 1 << 14, Procs: 8, RadixBits: 8, Seed: 3})
	same := 0
	for i := range a1 {
		if a1[i] == a8[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Error("adversarial: identical across Procs, the per-block construction is gone")
	}
}

func TestParseDistSkewRoundTrip(t *testing.T) {
	for _, d := range SkewDists {
		got, err := ParseDist(d.String())
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDist(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDist("no-such-dist"); err == nil {
		t.Error("ParseDist accepted an unknown name")
	}
}

// TestSkewGoldenFirst16 pins the first 16 keys of every skew generator
// at a fixed config, so accidental RNG-stream changes (seed constants,
// draw order, table sizes) are caught even when the distribution shape
// stays plausible.
func TestSkewGoldenFirst16(t *testing.T) {
	golden := map[Dist][16]uint32{
		Zipf:        {1043568552, 1816502142, 1887981930, 40341938, 850100530, 1196235018, 778726061, 129254433, 778726061, 2065550377, 1286532626, 778726061, 1277531636, 1628267794, 778726061, 1235178666},
		SelfSim:     {798455, 3436008, 3458308, 1236999, 498236611, 3435973, 1106, 429496764, 498216215, 0, 797850, 3985999, 138317, 88679790, 687195, 3436158},
		DupHeavy:    {2089059962, 854706190, 992553082, 1717105402, 1789720715, 2089059962, 184020870, 493438910, 184020870, 57728911, 57728911, 1593222137, 360126148, 709162072, 184020870, 709162072},
		Adversarial: {1169712751, 1599374298, 1269390301, 814629496, 1822673857, 1274287101, 1465953251, 185802403, 1979617322, 1205189956, 593090565, 232870026, 289210108, 318168965, 2128456504, 1176286712},
	}
	for _, d := range SkewDists {
		keys := MustGenerate(d, GenConfig{N: 1024, Procs: 8, RadixBits: 8, Seed: 1})
		var got [16]uint32
		copy(got[:], keys[:16])
		if got != golden[d] {
			t.Errorf("%v: first 16 keys changed:\n got %v\nwant %v", d, got, golden[d])
		}
	}
}

// TestZipfSkewShape: the top Zipf rank dominates — with s=1.2 over 1024
// ranks the most frequent value covers well over 10% of the stream —
// and raising s concentrates mass further.
func TestZipfSkewShape(t *testing.T) {
	count := func(s float64) int {
		keys := MustGenerate(Zipf, GenConfig{N: 1 << 16, Procs: 8, RadixBits: 8, Seed: 1, ZipfS: s})
		freq := map[uint32]int{}
		top := 0
		for _, k := range keys {
			freq[k]++
			if freq[k] > top {
				top = freq[k]
			}
		}
		return top
	}
	def := count(0) // default s = 1.2
	if def < (1<<16)/10 {
		t.Errorf("zipf top value covers %d/%d keys, want > 10%%", def, 1<<16)
	}
	if sharp := count(2.5); sharp <= def {
		t.Errorf("raising s should concentrate mass: top %d (s=2.5) <= %d (default)", sharp, def)
	}
}

// TestSelfSimShape: the 80/20 law — about 80% of the keys fall in the
// lowest fifth of the key space.
func TestSelfSimShape(t *testing.T) {
	keys := MustGenerate(SelfSim, GenConfig{N: 1 << 16, Procs: 8, RadixBits: 8, Seed: 1})
	fifth := uint32(MaxKey / 5)
	low := 0
	for _, k := range keys {
		if k < fifth {
			low++
		}
	}
	frac := float64(low) / float64(len(keys))
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("self-similar lowest-fifth mass = %.3f, want ~0.80", frac)
	}
}

// TestDupHeavyShape: exactly min(k, observed) distinct values, spread
// across the key space; DupValues=1 degenerates to all-equal keys.
func TestDupHeavyShape(t *testing.T) {
	keys := MustGenerate(DupHeavy, GenConfig{N: 1 << 14, Procs: 8, RadixBits: 8, Seed: 1})
	distinct := map[uint32]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if len(distinct) != 16 {
		t.Errorf("default dupheavy has %d distinct values, want 16", len(distinct))
	}
	keys = MustGenerate(DupHeavy, GenConfig{N: 1 << 12, Procs: 8, RadixBits: 8, Seed: 1, DupValues: 1})
	for _, k := range keys {
		if k != keys[0] {
			t.Fatal("DupValues=1 should produce all-equal keys")
		}
	}
	keys = MustGenerate(DupHeavy, GenConfig{N: 1 << 14, Procs: 8, RadixBits: 8, Seed: 1, DupValues: 1000})
	distinct = map[uint32]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if len(distinct) != 1000 {
		t.Errorf("dupheavy k=1000: %d distinct values, want 1000 (strata guarantee)", len(distinct))
	}
}

// TestAdversarialHiddenBand verifies the construction does what the
// doc comment claims: a narrow global value band holds about
// N/(S+1) keys — one inter-sample gap per processor — which is the
// mass a splitter-directed exchange dumps on a single processor.
func TestAdversarialHiddenBand(t *testing.T) {
	const n, p, s = 1 << 16, 16, 32
	keys := MustGenerate(Adversarial, GenConfig{N: n, Procs: p, RadixBits: 8, Seed: 1, AdvSamples: s})
	// Reconstruct the band the generator targets.
	m := s / 2
	mid := MaxKey * uint64(2*m+1) / (2 * uint64(s+1))
	w := uint64(1) << 20
	if gapW := MaxKey / uint64(s+1); w > gapW/2 {
		w = gapW / 2
	}
	bandLo, bandHi := mid-w/2, mid+(w+1)/2
	in := 0
	for _, k := range keys {
		if uint64(k) >= bandLo && uint64(k) < bandHi {
			in++
		}
	}
	want := n / (s + 1)
	if in < want*9/10 || in > want*11/10 {
		t.Errorf("hidden band holds %d keys, want ~%d (N/(S+1))", in, want)
	}
	// The band is invisible to the sampler: within each processor block,
	// the count of keys strictly below the band must sit exactly on a
	// sample position boundary (rank m*np/(S+1)).
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(n, p, proc)
		below := 0
		for _, k := range keys[lo:hi] {
			if uint64(k) < bandLo {
				below++
			}
		}
		np := hi - lo
		rankA := m * np / (s + 1)
		if m > 0 {
			rankA++
		}
		if below != rankA {
			t.Errorf("proc %d: %d keys below the band, want %d (sampler-aligned)", proc, below, rankA)
		}
	}
}

func TestSkewGenConfigValidation(t *testing.T) {
	base := GenConfig{N: 1024, Procs: 4, RadixBits: 8}
	for _, tc := range []struct {
		name string
		mut  func(*GenConfig)
	}{
		{"negative ZipfS", func(c *GenConfig) { c.ZipfS = -1 }},
		{"huge ZipfS", func(c *GenConfig) { c.ZipfS = 9 }},
		{"negative DupValues", func(c *GenConfig) { c.DupValues = -1 }},
		{"huge DupValues", func(c *GenConfig) { c.DupValues = 1 << 32 }},
		{"negative AdvSamples", func(c *GenConfig) { c.AdvSamples = -1 }},
		{"huge AdvSamples", func(c *GenConfig) { c.AdvSamples = 1 << 21 }},
	} {
		cfg := base
		tc.mut(&cfg)
		if _, err := Generate(Zipf, cfg); err == nil {
			t.Errorf("%s: validation accepted %+v", tc.name, cfg)
		}
	}
}

// TestAdversarialSmallN: the degenerate paths (tiny partitions, n < P)
// still emit in-range keys.
func TestAdversarialSmallN(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{3, 8}, {8, 8}, {17, 4}, {64, 64}} {
		keys := MustGenerate(Adversarial, GenConfig{N: tc.n, Procs: tc.p, RadixBits: 8, Seed: 1})
		if len(keys) != tc.n {
			t.Fatalf("n=%d p=%d: got %d keys", tc.n, tc.p, len(keys))
		}
		for i, k := range keys {
			if uint64(k) >= MaxKey {
				t.Errorf("n=%d p=%d: key[%d]=%d out of range", tc.n, tc.p, i, k)
			}
		}
	}
}

func ExampleParseDist_skew() {
	for _, name := range []string{"zipf", "selfsim", "dupheavy", "adversarial"} {
		d, _ := ParseDist(name)
		fmt.Println(d.String())
	}
	// Output:
	// zipf
	// selfsim
	// dupheavy
	// adversarial
}
