// Skewed and adversarial key distributions (SkewDists), added on top of
// the paper's eight §3.3 initializations to stress splitter selection
// and duplicate handling: Zipf, SelfSim (80/20), DupHeavy (k distinct
// values) and Adversarial (splitter-defeating). All are deterministic
// given GenConfig; Zipf, SelfSim and DupHeavy are single sequential
// streams and therefore independent of Procs, while Adversarial is
// constructed per processor block by design.
package keys

import (
	"math"
	"sort"
)

// zipfRanks is the fixed rank-table size of the Zipf generator. Keeping
// it independent of N makes the value stream a pure function of
// (Seed, ZipfS), truncated at N.
const zipfRanks = 1024

// fillZipf draws each key from a Zipf(s) rank-frequency law over
// zipfRanks ranks. Rank r (1-based) has weight r^-s; ranks are mapped
// to key values by an independent uniform table, so the popular values
// are scattered across the key space rather than clustered at one end.
//
// The cumulative weight table uses float64, but it is built by plain
// IEEE additions over math.Pow outputs of the portable math package,
// so the stream is reproducible for a given Go toolchain/platform pair;
// the golden-pin test catches accidental stream changes.
func fillZipf(out []uint32, cfg GenConfig) {
	s := cfg.ZipfS
	if s == 0 {
		s = 1.2
	}
	cum := make([]float64, zipfRanks)
	total := 0.0
	for r := 0; r < zipfRanks; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	vals := make([]uint32, zipfRanks)
	h := &splitmix64{x: cfg.Seed ^ 0x21bf5ca1ab1e}
	for r := range vals {
		vals[r] = uint32(h.uniform(MaxKey))
	}
	g := &splitmix64{x: cfg.Seed ^ 0x21bf11235813}
	for i := range out {
		u := float64(g.next()>>11) / (1 << 53) * total
		r := sort.SearchFloat64s(cum, u)
		if r >= zipfRanks {
			r = zipfRanks - 1
		}
		out[i] = vals[r]
	}
}

// fillSelfSim draws each key from a self-similar 80/20 law: starting
// from the full key range, 80% of the probability mass recursively
// falls in the lowest fifth of the remaining range. Integer-only, so
// the stream is identical on every platform.
func fillSelfSim(out []uint32, cfg GenConfig) {
	g := &splitmix64{x: cfg.Seed ^ 0x80802020f00d}
	for i := range out {
		lo, w := uint64(0), MaxKey
		for w >= 5 {
			fifth := w / 5
			if g.uniform(5) < 4 {
				w = fifth
			} else {
				lo += fifth
				w -= fifth
			}
		}
		out[i] = uint32(lo + g.uniform(w))
	}
}

// fillDupHeavy draws each key uniformly from k distinct values, one per
// key-space stratum (so the values are guaranteed distinct and spread).
// k = 1 degenerates to all-equal keys.
func fillDupHeavy(out []uint32, cfg GenConfig) {
	k := cfg.DupValues
	if k == 0 {
		k = 16
	}
	g := &splitmix64{x: cfg.Seed ^ 0xd0d0d0d0beef}
	vals := make([]uint32, k)
	for j := range vals {
		lo := uint64(j) * MaxKey / uint64(k)
		hi := uint64(j+1) * MaxKey / uint64(k)
		vals[j] = uint32(lo + g.uniform(hi-lo))
	}
	for i := range out {
		out[i] = vals[g.uniform(uint64(k))]
	}
}

// fillAdversarial builds the splitter-defeating distribution.
//
// Sample sort selects its per-processor samples at fixed positions of
// the locally sorted partition ((j+1)*np/(S+1), see selectSamples), so
// any mass confined to ranks strictly between two consecutive sample
// positions is invisible to every sample. Each processor therefore
// hides its entire middle inter-sample gap — about np/(S+1) keys — in
// one narrow value band shared by all processors. The band sits in the
// middle of the inter-sample gap in value space too, far from the
// sample-value clusters the splitters are drawn from, so no splitter
// can land inside it: every processor's hidden run lands in a single
// destination partition, whose receive count exceeds the mean by about
// a factor of Procs/(S+1). Radix sort's redistribution writes into the
// globally balanced blocked layout, so its receive counts stay flat on
// the same keys.
//
// The construction mirrors the sampler's clamp S = min(AdvSamples,
// max(1, N/Procs)) and is per-block deterministic: block i depends only
// on (N, Procs, Seed, AdvSamples, i).
func fillAdversarial(out []uint32, cfg GenConfig) {
	p := cfg.Procs
	n := len(out)
	sEff := cfg.AdvSamples
	if sEff == 0 {
		sEff = 128
	}
	if sEff > n/p {
		sEff = n / p
		if sEff < 1 {
			sEff = 1
		}
	}
	// The global hidden band: centered mid-gap between sample m-1 and
	// sample m in value space (m the middle sample index), width 2^20
	// (clamped for tiny ranges) so the low bits stay uniform.
	m := sEff / 2
	mid := MaxKey * uint64(2*m+1) / (2 * uint64(sEff+1))
	w := uint64(1) << 20
	if gapW := MaxKey / uint64(sEff+1); w > gapW/2 {
		w = gapW / 2
	}
	if w == 0 {
		w = 1
	}
	bandLo, bandHi := mid-w/2, mid+(w+1)/2
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(n, p, proc)
		fillAdvBlock(out[lo:hi], cfg.Seed, proc, sEff, m, bandLo, bandHi)
	}
}

// fillAdvBlock fills one processor's partition: uniform cover below and
// above the band, plus the hidden run occupying exactly the ranks
// strictly between sample positions m-1 and m, then shuffles the block
// so the input is not pre-sorted.
func fillAdvBlock(part []uint32, seed uint64, proc, sEff, m int, bandLo, bandHi uint64) {
	np := len(part)
	g := &splitmix64{x: seed ^ 0xadd5a1e50a77ac ^ uint64(proc)*0x9e3779b97f4a7c15}
	count := sEff
	if count > np {
		count = np
	}
	// Sample positions mirror selectSamples: sample j sits at local
	// sorted rank (j+1)*np/(count+1). Hidden ranks are those strictly
	// between samples m-1 and m (when m == 0, the run before sample 0,
	// which no sample observes either).
	rankA := m * np / (count + 1)
	rankB := (m + 1) * np / (count + 1)
	hideLo, hideHi := rankA, rankB
	if m > 0 {
		hideLo = rankA + 1
	}
	if hideHi <= hideLo || count < 2 || bandLo == 0 {
		// Degenerate (tiny partitions, total sampling): plain uniform.
		for i := range part {
			part[i] = uint32(g.uniform(MaxKey))
		}
		return
	}
	// Assign values by sorted rank: cover strata below [0, bandLo) and
	// above [bandHi, MaxKey), hidden run inside the band.
	below := hideLo
	above := np - hideHi
	for i := 0; i < below; i++ {
		sLo := uint64(i) * bandLo / uint64(below)
		sHi := uint64(i+1) * bandLo / uint64(below)
		part[i] = uint32(sLo + g.uniform(sHi-sLo))
	}
	for i := hideLo; i < hideHi; i++ {
		part[i] = uint32(bandLo + g.uniform(bandHi-bandLo))
	}
	span := MaxKey - bandHi
	for i := 0; i < above; i++ {
		sLo := bandHi + uint64(i)*span/uint64(above)
		sHi := bandHi + uint64(i+1)*span/uint64(above)
		part[i+hideHi] = uint32(sLo + g.uniform(sHi-sLo))
	}
	// Fisher-Yates so the emitted block is not already sorted.
	for i := np - 1; i > 0; i-- {
		j := int(g.uniform(uint64(i + 1)))
		part[i], part[j] = part[j], part[i]
	}
}
