// Package keys implements the eight key initialization methods of the
// paper's §3.3: Gauss, Random, Zero, Bucket, Stagger, Half, Remote and
// Local. Keys are 31-bit unsigned integers (MAX = 2^31), and every
// method is deterministic given its configuration, so experiments are
// exactly repeatable.
package keys

import (
	"fmt"
	"strings"
)

// MaxKey is the exclusive upper bound of key values (2^31), as in the
// paper.
const MaxKey = uint64(1) << 31

// Dist names a key distribution.
type Dist int

const (
	// Gauss is the NAS/SPLASH-2 default: each key is the average of four
	// consecutive outputs of the NAS 46-bit linear congruential generator.
	Gauss Dist = iota
	// Random is uniform over [0, 2^31) (the C library random() stand-in).
	Random
	// Zero is Random with every tenth key forced to zero.
	Zero
	// Bucket pre-sorts coarsely: each processor's partition is split into
	// p runs, run j drawn from [j*MAX/p, (j+1)*MAX/p).
	Bucket
	// Stagger gives processor i keys from a single remote value band.
	Stagger
	// Half is Gauss restricted to even keys (halves the message count in
	// radix sort while keeping data volume fixed).
	Half
	// Remote maximizes inter-processor key movement in radix sort: each
	// radix-r digit of a key avoids (even digits) or hits (odd digits)
	// the generating processor's own digit range.
	Remote
	// Local eliminates key movement: every digit of every key falls in
	// the generating processor's own digit range.
	Local
	// Zipf draws keys from a Zipf(s) rank-frequency law over a fixed
	// table of ranks: a few values dominate, with a long duplicate-heavy
	// tail (GenConfig.ZipfS tunes the exponent).
	Zipf
	// SelfSim is a self-similar 80/20 distribution: at every scale, 80%
	// of the keys fall in the lowest fifth of the remaining value range.
	SelfSim
	// DupHeavy draws uniformly from k distinct values
	// (GenConfig.DupValues); k=1 degenerates to all-equal keys.
	DupHeavy
	// Adversarial defeats sample sort's splitter selection: each
	// processor hides a full inter-sample gap of keys inside one narrow
	// global value band that no regularly-positioned sample can observe,
	// so one destination partition receives every processor's hidden run
	// while radix sort's blocked redistribution stays perfectly flat.
	Adversarial
)

// AllDists lists the distributions in the paper's figure order. The
// skewed/adversarial additions live in SkewDists instead, so the paper
// figures (5 and 9) and their goldens are unchanged.
var AllDists = []Dist{Gauss, Random, Zero, Bucket, Stagger, Remote, Half, Local}

// SkewDists lists the adversarial and skewed distributions added on top
// of the paper's eight (§3.3), in figskew order.
var SkewDists = []Dist{Zipf, SelfSim, DupHeavy, Adversarial}

// String returns the lowercase name used in figures and flags.
func (d Dist) String() string {
	switch d {
	case Gauss:
		return "gauss"
	case Random:
		return "random"
	case Zero:
		return "zero"
	case Bucket:
		return "bucket"
	case Stagger:
		return "stagger"
	case Half:
		return "half"
	case Remote:
		return "remote"
	case Local:
		return "local"
	case Zipf:
		return "zipf"
	case SelfSim:
		return "selfsim"
	case DupHeavy:
		return "dupheavy"
	case Adversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// ParseDist resolves a distribution name (case-insensitive).
func ParseDist(s string) (Dist, error) {
	for _, list := range [][]Dist{AllDists, SkewDists} {
		for _, d := range list {
			if strings.EqualFold(s, d.String()) {
				return d, nil
			}
		}
	}
	return 0, fmt.Errorf("keys: unknown distribution %q", s)
}

// GenConfig parameterizes generation.
type GenConfig struct {
	// N is the total key count.
	N int
	// Procs is the number of processors the keys are initially
	// partitioned across (partition i is [i*N/Procs, (i+1)*N/Procs)).
	Procs int
	// RadixBits is the radix size r, which shapes the Remote and Local
	// distributions.
	RadixBits int
	// Seed perturbs the generators; 0 is a valid, fixed default.
	Seed uint64
	// ZipfS is the Zipf exponent s (0 means the default 1.2); only the
	// Zipf distribution reads it.
	ZipfS float64
	// DupValues is the number of distinct values DupHeavy draws from
	// (0 means the default 16).
	DupValues int
	// AdvSamples is the per-processor sample count the Adversarial
	// construction assumes the sorter will take (0 means the default
	// 128, matching sorts.DefaultConfig.SampleSize). The attack is
	// strongest when this matches the sorter's actual SampleSize.
	AdvSamples int
}

func (c GenConfig) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("keys: N must be positive, got %d", c.N)
	}
	if c.Procs <= 0 {
		return fmt.Errorf("keys: Procs must be positive, got %d", c.Procs)
	}
	if c.RadixBits < 1 || c.RadixBits > 16 {
		return fmt.Errorf("keys: RadixBits must be in [1,16], got %d", c.RadixBits)
	}
	if c.ZipfS < 0 || c.ZipfS > 8 {
		return fmt.Errorf("keys: ZipfS must be in [0,8], got %g", c.ZipfS)
	}
	if c.DupValues < 0 || uint64(c.DupValues) > MaxKey {
		return fmt.Errorf("keys: DupValues must be in [0,2^31], got %d", c.DupValues)
	}
	if c.AdvSamples < 0 || c.AdvSamples > 1<<20 {
		return fmt.Errorf("keys: AdvSamples must be in [0,2^20], got %d", c.AdvSamples)
	}
	return nil
}

// nasLCG is the NAS parallel benchmarks' 46-bit linear congruential
// generator: x_{k+1} = a*x_k mod 2^46, a = 5^13, x_0 = 314159265 (the
// paper prints the multiplier as "513", i.e. 5^13).
type nasLCG struct {
	x uint64
}

const (
	nasA    = 1220703125 // 5^13
	nasMod  = uint64(1) << 46
	nasMask = nasMod - 1
)

func newNASLCG(seed uint64) *nasLCG {
	x := (uint64(314159265) + seed) & nasMask
	if x == 0 {
		x = 314159265
	}
	return &nasLCG{x: x}
}

// next returns the next raw 46-bit value.
func (g *nasLCG) next() uint64 {
	g.x = (g.x * nasA) & nasMask
	return g.x
}

// splitmix64 is the uniform generator standing in for the C library
// random(): a standard 64-bit mixer with excellent equidistribution.
type splitmix64 struct {
	x uint64
}

func (s *splitmix64) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a value in [0, bound) without modulo bias beyond
// 2^-32 (bound is always << 2^32 here).
func (s *splitmix64) uniform(bound uint64) uint64 {
	if bound == 0 {
		return 0
	}
	return (s.next() >> 16) % bound
}

// Generate returns N keys initialized with distribution d.
func Generate(d Dist, cfg GenConfig) ([]uint32, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make([]uint32, cfg.N)
	switch d {
	case Gauss:
		fillGauss(out, cfg, false)
	case Half:
		fillGauss(out, cfg, true)
	case Random:
		fillRandom(out, cfg, false)
	case Zero:
		fillRandom(out, cfg, true)
	case Bucket:
		fillBucket(out, cfg)
	case Stagger:
		fillStagger(out, cfg)
	case Remote:
		fillDigitPattern(out, cfg, true)
	case Local:
		fillDigitPattern(out, cfg, false)
	case Zipf:
		fillZipf(out, cfg)
	case SelfSim:
		fillSelfSim(out, cfg)
	case DupHeavy:
		fillDupHeavy(out, cfg)
	case Adversarial:
		fillAdversarial(out, cfg)
	default:
		return nil, fmt.Errorf("keys: unknown distribution %d", int(d))
	}
	return out, nil
}

// MustGenerate is Generate for static experiment configurations.
func MustGenerate(d Dist, cfg GenConfig) []uint32 {
	out, err := Generate(d, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

func fillGauss(out []uint32, cfg GenConfig, evenOnly bool) {
	g := newNASLCG(cfg.Seed)
	for i := range out {
		// Average of four consecutive uniform deviates, scaled to
		// [0, MaxKey): a bell-shaped density centered at MaxKey/2.
		sum := g.next()>>15 + g.next()>>15 + g.next()>>15 + g.next()>>15
		// Each term is 31 bits; the average of four is 31 bits.
		k := uint32(sum / 4)
		if evenOnly {
			k &^= 1
		}
		out[i] = k
	}
}

func fillRandom(out []uint32, cfg GenConfig, zeroTenth bool) {
	g := &splitmix64{x: cfg.Seed ^ 0xa5a5a5a5deadbeef}
	for i := range out {
		out[i] = uint32(g.uniform(MaxKey))
		if zeroTenth && i%10 == 9 {
			// "every tenth key is set to zero"
			out[i] = 0
		}
	}
}

func fillBucket(out []uint32, cfg GenConfig) {
	g := &splitmix64{x: cfg.Seed ^ 0xb0b0b0b0cafef00d}
	p := cfg.Procs
	width := MaxKey / uint64(p)
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(len(out), p, proc)
		part := out[lo:hi]
		// Split this processor's partition into p runs; run j draws from
		// bucket j's value range.
		for j := 0; j < p; j++ {
			rlo, rhi := bounds(len(part), p, j)
			base := uint64(j) * width
			for i := rlo; i < rhi; i++ {
				part[i] = uint32(base + g.uniform(width))
			}
		}
	}
}

func fillStagger(out []uint32, cfg GenConfig) {
	g := &splitmix64{x: cfg.Seed ^ 0x57a99e125107}
	p := cfg.Procs
	width := MaxKey / uint64(p)
	for proc := 0; proc < p; proc++ {
		// Processor i draws all its keys from one band: band 2i+1 for the
		// first half of processors, band 2i-p for the second half.
		var band int
		if proc < p/2 {
			band = 2*proc + 1
		} else {
			band = 2*proc - p
		}
		if band >= p { // degenerate tiny-p cases (p == 1)
			band = p - 1
		}
		base := uint64(band) * width
		lo, hi := bounds(len(out), p, proc)
		for i := lo; i < hi; i++ {
			out[i] = uint32(base + g.uniform(width))
		}
	}
}

// bounds returns the [lo,hi) range of chunk i when n items are split
// into k chunks.
func bounds(n, k, i int) (lo, hi int) {
	lo = i * n / k
	hi = (i + 1) * n / k
	return lo, hi
}

func fillDigitPattern(out []uint32, cfg GenConfig, remote bool) {
	g := &splitmix64{x: cfg.Seed ^ 0x10ca1f1e1d5}
	r := cfg.RadixBits
	p := uint64(cfg.Procs)
	digits := (31 + r - 1) / r // digit positions covering 31 bits
	bucketsPerProc := (uint64(1) << r) / p
	if bucketsPerProc == 0 {
		bucketsPerProc = 1
	}
	for proc := 0; proc < cfg.Procs; proc++ {
		lo, hi := bounds(len(out), cfg.Procs, proc)
		ownLo := uint64(proc) * bucketsPerProc
		for i := lo; i < hi; i++ {
			var key uint64
			var even, odd uint64
			if remote {
				// Even digit positions (1st, 3rd, ...) avoid the own
				// range; odd positions hit it.
				even = g.uniform((uint64(1) << r) - bucketsPerProc)
				if even >= ownLo {
					even += bucketsPerProc
				}
				odd = ownLo + g.uniform(bucketsPerProc)
			} else {
				// Local: every digit in the own range.
				even = ownLo + g.uniform(bucketsPerProc)
				odd = even
			}
			for dpos := 0; dpos < digits; dpos++ {
				d := even
				if dpos%2 == 1 {
					d = odd
				}
				key |= d << (dpos * r)
			}
			out[i] = uint32(key & (MaxKey - 1))
		}
	}
}
