package keys

import (
	"testing"
	"testing/quick"
)

func gen(t *testing.T, d Dist, n, procs, r int) []uint32 {
	t.Helper()
	out, err := Generate(d, GenConfig{N: n, Procs: procs, RadixBits: r})
	if err != nil {
		t.Fatalf("Generate(%v): %v", d, err)
	}
	return out
}

func TestAllDistsInRange(t *testing.T) {
	for _, d := range AllDists {
		keys := gen(t, d, 10000, 8, 8)
		if len(keys) != 10000 {
			t.Errorf("%v: got %d keys", d, len(keys))
		}
		for i, k := range keys {
			if uint64(k) >= MaxKey {
				t.Errorf("%v: key[%d] = %d out of range", d, i, k)
				break
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, d := range AllDists {
		a := gen(t, d, 1000, 4, 8)
		b := gen(t, d, 1000, 4, 8)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%v: generation not deterministic at %d", d, i)
				break
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a, _ := Generate(Random, GenConfig{N: 1000, Procs: 4, RadixBits: 8, Seed: 1})
	b, _ := Generate(Random, GenConfig{N: 1000, Procs: 4, RadixBits: 8, Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/1000 identical keys", same)
	}
}

func TestGaussShape(t *testing.T) {
	keys := gen(t, Gauss, 100000, 8, 8)
	// Mean near MaxKey/2 and mass concentrated in the middle half: the
	// average of four uniforms has std ~ range/(4*sqrt(3)).
	var sum float64
	mid := 0
	for _, k := range keys {
		sum += float64(k)
		if uint64(k) > MaxKey/4 && uint64(k) < 3*MaxKey/4 {
			mid++
		}
	}
	mean := sum / float64(len(keys))
	if mean < float64(MaxKey)*0.45 || mean > float64(MaxKey)*0.55 {
		t.Errorf("gauss mean %v far from MaxKey/2", mean)
	}
	if frac := float64(mid) / float64(len(keys)); frac < 0.90 {
		t.Errorf("gauss middle-half mass = %v, want > 0.90", frac)
	}
}

func TestRandomShape(t *testing.T) {
	keys := gen(t, Random, 100000, 8, 8)
	// Uniform: quarter of the keys in each quarter of the range.
	quarters := [4]int{}
	for _, k := range keys {
		quarters[uint64(k)/(MaxKey/4)]++
	}
	for q, c := range quarters {
		frac := float64(c) / float64(len(keys))
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("random quarter %d holds %v of keys, want ~0.25", q, frac)
		}
	}
}

func TestZeroEveryTenth(t *testing.T) {
	keys := gen(t, Zero, 1000, 8, 8)
	zeros := 0
	for _, k := range keys {
		if k == 0 {
			zeros++
		}
	}
	if zeros < 100 {
		t.Errorf("zero distribution has %d zeros in 1000, want >= 100", zeros)
	}
}

func TestHalfAllEven(t *testing.T) {
	keys := gen(t, Half, 10000, 8, 8)
	for i, k := range keys {
		if k%2 != 0 {
			t.Fatalf("half: key[%d] = %d is odd", i, k)
		}
	}
}

func TestBucketRunsAreRanged(t *testing.T) {
	const n, p = 6400, 8
	keys := gen(t, Bucket, n, p, 8)
	width := MaxKey / p
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(n, p, proc)
		part := keys[lo:hi]
		for j := 0; j < p; j++ {
			rlo, rhi := bounds(len(part), p, j)
			for i := rlo; i < rhi; i++ {
				v := uint64(part[i])
				if v < uint64(j)*width || v >= uint64(j+1)*width {
					t.Fatalf("bucket: proc %d run %d key %d outside its range", proc, j, v)
				}
			}
		}
	}
}

func TestStaggerBands(t *testing.T) {
	const n, p = 8000, 8
	keys := gen(t, Stagger, n, p, 8)
	width := MaxKey / p
	for proc := 0; proc < p; proc++ {
		var band uint64
		if proc < p/2 {
			band = uint64(2*proc + 1)
		} else {
			band = uint64(2*proc - p)
		}
		lo, hi := bounds(n, p, proc)
		for i := lo; i < hi; i++ {
			v := uint64(keys[i])
			if v < band*width || v >= (band+1)*width {
				t.Fatalf("stagger: proc %d key %d outside band %d", proc, v, band)
			}
		}
	}
	// Every processor's band differs from its own index: all keys move.
	for proc := 0; proc < p; proc++ {
		var band int
		if proc < p/2 {
			band = 2*proc + 1
		} else {
			band = 2*proc - p
		}
		if band == proc {
			t.Errorf("stagger: proc %d keeps its own band", proc)
		}
	}
}

func TestLocalKeysStayHome(t *testing.T) {
	const n, p, r = 8000, 8, 8
	keys := gen(t, Local, n, p, r)
	bucketsPerProc := (1 << r) / p
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(n, p, proc)
		for i := lo; i < hi; i++ {
			k := keys[i]
			// Every r-bit digit must fall in proc's own digit range.
			for shift := 0; shift < 31; shift += r {
				d := int(k>>shift) & ((1 << r) - 1)
				dLo, dHi := proc*bucketsPerProc, (proc+1)*bucketsPerProc
				// The top partial digit is truncated by the 31-bit mask;
				// skip ranges that can't hold a full digit.
				if shift+r > 31 {
					continue
				}
				if d < dLo || d >= dHi {
					t.Fatalf("local: proc %d key %#x digit@%d = %d outside [%d,%d)",
						proc, k, shift, d, dLo, dHi)
				}
			}
		}
	}
}

func TestRemoteFirstDigitAvoidsHome(t *testing.T) {
	const n, p, r = 8000, 8, 8
	keys := gen(t, Remote, n, p, r)
	bucketsPerProc := (1 << r) / p
	for proc := 0; proc < p; proc++ {
		lo, hi := bounds(n, p, proc)
		for i := lo; i < hi; i++ {
			d := int(keys[i]) & ((1 << r) - 1)
			dLo, dHi := proc*bucketsPerProc, (proc+1)*bucketsPerProc
			if d >= dLo && d < dHi {
				t.Fatalf("remote: proc %d key %#x first digit %d inside own range [%d,%d)",
					proc, keys[i], d, dLo, dHi)
			}
			// Second digit hits the own range.
			d2 := int(keys[i]>>r) & ((1 << r) - 1)
			if d2 < dLo || d2 >= dHi {
				t.Fatalf("remote: proc %d key %#x second digit %d outside own range",
					proc, keys[i], d2)
			}
		}
	}
}

func TestRemoteSortedWithinProcChunks(t *testing.T) {
	// The paper notes remote data has good locality in the local sort
	// because, by construction, each processor's keys concentrate in few
	// second-digit buckets. Verify the second digit is constant-ish per
	// processor (single bucket range).
	const n, p, r = 1000, 4, 8
	keys := gen(t, Remote, n, p, r)
	bucketsPerProc := (1 << r) / p
	lo, hi := bounds(n, p, 2)
	for i := lo; i < hi; i++ {
		d2 := int(keys[i]>>r) & ((1 << r) - 1)
		if d2/bucketsPerProc != 2 {
			t.Fatalf("remote: proc 2 second digit bucket = %d, want own group", d2/bucketsPerProc)
		}
	}
}

func TestParseDist(t *testing.T) {
	for _, d := range AllDists {
		got, err := ParseDist(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDist(%q) = %v, %v", d.String(), got, err)
		}
	}
	if got, err := ParseDist("GAUSS"); err != nil || got != Gauss {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseDist("bogus"); err == nil {
		t.Error("ParseDist accepted bogus name")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []GenConfig{
		{N: 0, Procs: 4, RadixBits: 8},
		{N: 100, Procs: 0, RadixBits: 8},
		{N: 100, Procs: 4, RadixBits: 0},
		{N: 100, Procs: 4, RadixBits: 20},
	}
	for _, c := range cases {
		if _, err := Generate(Gauss, c); err == nil {
			t.Errorf("accepted invalid config %+v", c)
		}
	}
}

func TestNASLCGPeriodicityBasics(t *testing.T) {
	g := newNASLCG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := g.next()
		if v >= nasMod {
			t.Fatalf("LCG value %d exceeds 2^46", v)
		}
		if seen[v] {
			t.Fatalf("LCG repeated after %d steps", i)
		}
		seen[v] = true
	}
}

func TestBoundsPartition(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%1000 + 1
		k := int(kRaw)%16 + 1
		prevHi := 0
		total := 0
		for i := 0; i < k; i++ {
			lo, hi := bounds(n, k, i)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic on invalid config")
		}
	}()
	MustGenerate(Gauss, GenConfig{})
}
