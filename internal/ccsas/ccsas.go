// Package ccsas implements the cache-coherent shared address space
// programming model on the simulated machine: shared arrays accessed by
// ordinary loads and stores, barriers, pairwise flag synchronization, and
// the binary prefix tree used by the SPLASH-2 radix sort to accumulate
// histograms.
//
// Communication and replication are implicit: processors simply load and
// store shared data, and the machine layer prices the coherence protocol
// transactions that result.
package ccsas

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/trace"
)

// World is the shared-address-space execution context for one parallel
// program: the machine plus the synchronization plumbing.
type World struct {
	M *machine.Machine

	// flagLatencyNs is the time from a flag store by one processor to the
	// spinning waiter observing it: one coherence transfer of the flag
	// line, approximated by the machine's furthest uncontended read
	// latency.
	flagLatencyNs float64
}

// NewWorld builds a world over m.
func NewWorld(m *machine.Machine) *World {
	return &World{
		M:             m,
		flagLatencyNs: m.Topology().FurthestReadLatency(),
	}
}

// Barrier joins the machine-wide barrier.
func (w *World) Barrier(p *machine.Proc) { w.M.Barrier(p) }

// FlagLatency returns the modeled flag propagation latency.
func (w *World) FlagLatency() float64 { return w.flagLatencyNs }

// Flag is a pairwise synchronization flag carrying the setter's virtual
// time, modeling a spin-wait on a shared memory word. Each Flag is
// single-producer single-consumer per episode.
type Flag struct {
	w  *World
	ch chan float64
}

// NewFlag builds a flag in world w.
func NewFlag(w *World) *Flag {
	return &Flag{w: w, ch: make(chan float64, 1)}
}

// Set publishes the flag: one store to the flag line, which the waiter's
// node will fetch.
func (f *Flag) Set(p *machine.Proc) {
	// The store itself is a handful of cycles; the transfer cost is paid
	// by the waiter's observation latency.
	p.Compute(1)
	f.ch <- p.Now()
}

// Wait spins until the flag is set, charging the wait to SYNC plus one
// flag-line transfer.
func (f *Flag) Wait(p *machine.Proc) {
	start := p.Now()
	t := <-f.ch
	p.WaitUntil(t + f.w.flagLatencyNs)
	if waited := p.Now() - start; waited > 0 {
		p.TraceEvent(trace.EvMsgWait, -1, 0, waited)
	}
}

// PrefixTree accumulates per-processor histograms into global bucket
// totals and per-processor ranks using a binary tree of partial sums, the
// way the SPLASH-2 radix sort builds its global histogram with
// fine-grained load-store communication.
//
// For p processors each holding a local histogram h_i of B buckets, one
// Reduce episode computes, for every processor i and bucket b:
//
//	rank[i][b]  = sum of h_j[b] for j < i   (exclusive scan across procs)
//	total[b]    = sum of h_j[b] for all j
//
// The up-sweep combines sibling block sums level by level; the down-sweep
// distributes exclusive prefixes back to the leaves. Both use pairwise
// flag synchronization, not global barriers.
type PrefixTree struct {
	w       *World
	procs   int
	buckets int
	levels  int

	// blockSum[l][k] holds the histogram sum over processors
	// [k*2^l, (k+1)*2^l); blockSum[0][i] is processor i's local histogram.
	blockSum [][]*machine.Array[int32]

	// upReady[l][k] signals that blockSum[l][k] is complete.
	upReady [][]*Flag
	// downReady[l][k] signals that the prefix for block (l,k) is ready in
	// prefixTmp[l][k].
	downReady [][]*Flag
	// prefixTmp[l][k] carries block (l,k)'s exclusive prefix during the
	// down-sweep.
	prefixTmp [][]*machine.Array[int32]
}

// NewPrefixTree builds the tree's shared data structures. procs must be a
// power of two (machine sizes always are).
func NewPrefixTree(w *World, buckets int) *PrefixTree {
	p := w.M.Procs()
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("ccsas: prefix tree needs power-of-two processors, got %d", p))
	}
	levels := 0
	for 1<<levels < p {
		levels++
	}
	t := &PrefixTree{w: w, procs: p, buckets: buckets, levels: levels}
	t.blockSum = make([][]*machine.Array[int32], levels+1)
	t.prefixTmp = make([][]*machine.Array[int32], levels+1)
	t.upReady = make([][]*Flag, levels+1)
	t.downReady = make([][]*Flag, levels+1)
	for l := 0; l <= levels; l++ {
		nBlocks := p >> l
		t.blockSum[l] = make([]*machine.Array[int32], nBlocks)
		t.prefixTmp[l] = make([]*machine.Array[int32], nBlocks)
		t.upReady[l] = make([]*Flag, nBlocks)
		t.downReady[l] = make([]*Flag, nBlocks)
		for k := 0; k < nBlocks; k++ {
			owner := k << l // the lowest-numbered processor of the block owns its node
			t.blockSum[l][k] = machine.NewArrayOnProc[int32](w.M,
				fmt.Sprintf("tree.sum[%d][%d]", l, k), buckets, owner)
			t.prefixTmp[l][k] = machine.NewArrayOnProc[int32](w.M,
				fmt.Sprintf("tree.pre[%d][%d]", l, k), buckets, owner)
			t.upReady[l][k] = NewFlag(w)
			t.downReady[l][k] = NewFlag(w)
		}
	}
	return t
}

// Buckets returns the histogram width the tree was built for.
func (t *PrefixTree) Buckets() int { return t.buckets }

// Reduce runs one accumulation episode for processor p (id == leaf index)
// with local histogram local (length == buckets). It returns the
// exclusive cross-processor rank vector for this leaf and the global
// totals. All processors must call Reduce once per episode.
func (t *PrefixTree) Reduce(p *machine.Proc, local []int32) (rank, total []int32) {
	if len(local) != t.buckets {
		panic(fmt.Sprintf("ccsas: Reduce histogram length %d, want %d", len(local), t.buckets))
	}
	i := p.ID
	b := t.buckets

	// Publish the leaf histogram (stores to this proc's tree node). A
	// flag is set only when a distinct processor will wait on it: block k
	// at any level is awaited by its sibling combiner iff k is odd.
	leaf := t.blockSum[0][i]
	copy(leaf.Data, local)
	leaf.StoreRange(p, 0, b, machine.Private)
	p.Compute(b) // the copy's ALU work
	if i%2 == 1 {
		t.upReady[0][i].Set(p)
	}

	// Up-sweep: processor i participates at level l+1 iff i is a multiple
	// of 2^(l+1); it combines its block with the sibling block owned by
	// i + 2^l.
	for l := 0; l < t.levels; l++ {
		stride := 1 << (l + 1)
		if i%stride != 0 {
			break
		}
		k := i >> l // own block index at level l
		sibling := t.blockSum[l][k+1]
		t.upReady[l][k+1].Wait(p)
		// Read the sibling's vector (produced remotely) and accumulate.
		sibling.LoadRange(p, 0, b, machine.RemoteProduced)
		parent := t.blockSum[l+1][i>>(l+1)]
		own := t.blockSum[l][k]
		for j := 0; j < b; j++ {
			parent.Data[j] = own.Data[j] + sibling.Data[j]
		}
		own.LoadRange(p, 0, b, machine.Private) // own block: cached
		parent.StoreRange(p, 0, b, machine.Private)
		p.Compute(2 * b)
		if kp := i >> (l + 1); kp%2 == 1 {
			t.upReady[l+1][kp].Set(p)
		}
	}

	// Root seeds the down-sweep with a zero prefix for the whole range.
	if i == 0 {
		root := t.prefixTmp[t.levels][0]
		for j := 0; j < b; j++ {
			root.Data[j] = 0
		}
		root.StoreRange(p, 0, b, machine.Private)
		p.Compute(b)
	}

	// Down-sweep: the owner of a block receives its prefix, keeps it for
	// its left child (which it also owns), and sends prefix+leftSum to
	// the right child's owner. Processor i owns block i>>l at level l iff
	// i%2^l == 0. A block's prefix must be awaited only when the block is
	// a right child (odd index); left children's prefixes were written by
	// this same processor one level up.
	for l := t.levels; l >= 1; l-- {
		stride := 1 << l
		if i%stride != 0 {
			continue
		}
		k := i >> l
		parentPre := t.prefixTmp[l][k]
		if k%2 == 1 {
			t.downReady[l][k].Wait(p)
			parentPre.LoadRange(p, 0, b, machine.RemoteProduced)
		} else {
			parentPre.LoadRange(p, 0, b, machine.Private)
		}
		// Left child (same owner): prefix unchanged.
		left := t.prefixTmp[l-1][2*k]
		// Right child: prefix + left block sum.
		right := t.prefixTmp[l-1][2*k+1]
		leftSum := t.blockSum[l-1][2*k]
		for j := 0; j < b; j++ {
			left.Data[j] = parentPre.Data[j]
			right.Data[j] = parentPre.Data[j] + leftSum.Data[j]
		}
		left.StoreRange(p, 0, b, machine.Private)
		right.StoreRange(p, 0, b, machine.ConflictWrite) // right child's owner caches it
		p.Compute(2 * b)
		t.downReady[l-1][2*k+1].Set(p)
	}

	// Leaf level: collect own prefix (odd leaves wait for their parent's
	// owner; even leaves wrote it themselves above).
	myPre := t.prefixTmp[0][i]
	if i%2 == 1 {
		t.downReady[0][i].Wait(p)
		myPre.LoadRange(p, 0, b, machine.RemoteProduced)
	} else {
		myPre.LoadRange(p, 0, b, machine.Private)
	}
	rank = make([]int32, b)
	copy(rank, myPre.Data)
	p.Compute(b)

	// Everyone reads the root total (read-shared after the up-sweep).
	rootSum := t.blockSum[t.levels][0]
	rootSum.LoadRange(p, 0, b, machine.SharedRead)
	total = make([]int32, b)
	copy(total, rootSum.Data)
	p.Compute(b)

	// An episode ends with a barrier (as in SPLASH-2), which also keeps
	// tree reuse across sort passes safe.
	t.w.Barrier(p)
	return rank, total
}
