package ccsas

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func world(t *testing.T, procs int) *World {
	t.Helper()
	m, err := machine.New(machine.Origin2000Scaled(procs))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return NewWorld(m)
}

func TestFlagOrdersTime(t *testing.T) {
	w := world(t, 2)
	f := NewFlag(w)
	res := w.M.Run(func(p *machine.Proc) {
		if p.ID == 0 {
			p.Compute(10000)
			f.Set(p)
		} else {
			f.Wait(p)
			if p.Now() < 10000*w.M.Config().OpNs {
				t.Errorf("waiter released at %v, before setter's work finished", p.Now())
			}
			if p.Stats().Breakdown.Sync == 0 {
				t.Error("waiter charged no sync time")
			}
		}
	})
	_ = res
}

func TestFlagNoWaitWhenLate(t *testing.T) {
	w := world(t, 2)
	f := NewFlag(w)
	w.M.Run(func(p *machine.Proc) {
		if p.ID == 0 {
			f.Set(p) // sets at ~0
		} else {
			p.Compute(100000) // arrives long after
			before := p.Stats().Breakdown.Sync
			f.Wait(p)
			// Flag was set long ago: only the (already elapsed) propagation
			// could matter, which is in the past, so no sync charge.
			if got := p.Stats().Breakdown.Sync - before; got != 0 {
				t.Errorf("late waiter charged %v sync, want 0", got)
			}
		}
	})
}

// reduceAll runs one PrefixTree episode on every processor and collects
// ranks and totals.
func reduceAll(t *testing.T, procs, buckets int, hist func(id int) []int32) (ranks [][]int32, totals [][]int32) {
	t.Helper()
	w := world(t, procs)
	tree := NewPrefixTree(w, buckets)
	ranks = make([][]int32, procs)
	totals = make([][]int32, procs)
	w.M.Run(func(p *machine.Proc) {
		r, tot := tree.Reduce(p, hist(p.ID))
		ranks[p.ID] = r
		totals[p.ID] = tot
	})
	return ranks, totals
}

func TestPrefixTreeSmall(t *testing.T) {
	// 4 procs, 2 buckets. hist[i] = [i+1, 10*(i+1)].
	ranks, totals := reduceAll(t, 4, 2, func(id int) []int32 {
		return []int32{int32(id + 1), int32(10 * (id + 1))}
	})
	// total = [1+2+3+4, 10+20+30+40] = [10, 100]
	for i, tot := range totals {
		if tot[0] != 10 || tot[1] != 100 {
			t.Errorf("proc %d totals = %v, want [10 100]", i, tot)
		}
	}
	// rank[i] = exclusive prefix: [0,0], [1,10], [3,30], [6,60]
	want := [][]int32{{0, 0}, {1, 10}, {3, 30}, {6, 60}}
	for i := range ranks {
		if ranks[i][0] != want[i][0] || ranks[i][1] != want[i][1] {
			t.Errorf("proc %d rank = %v, want %v", i, ranks[i], want[i])
		}
	}
}

func TestPrefixTreeSingleProc(t *testing.T) {
	ranks, totals := reduceAll(t, 1, 3, func(id int) []int32 {
		return []int32{5, 6, 7}
	})
	if ranks[0][0] != 0 || ranks[0][1] != 0 || ranks[0][2] != 0 {
		t.Errorf("single-proc rank = %v, want zeros", ranks[0])
	}
	if totals[0][0] != 5 || totals[0][1] != 6 || totals[0][2] != 7 {
		t.Errorf("single-proc total = %v", totals[0])
	}
}

func TestPrefixTreeMatchesSequentialScan(t *testing.T) {
	// Property: for random histograms, the tree's output equals a
	// sequential exclusive scan.
	f := func(seed uint32) bool {
		const procs, buckets = 8, 16
		hists := make([][]int32, procs)
		s := seed
		for i := range hists {
			hists[i] = make([]int32, buckets)
			for b := range hists[i] {
				s = s*1664525 + 1013904223
				hists[i][b] = int32(s % 1000)
			}
		}
		ranks, totals := reduceAll(t, procs, buckets, func(id int) []int32 { return hists[id] })
		for b := 0; b < buckets; b++ {
			var run int32
			for i := 0; i < procs; i++ {
				if ranks[i][b] != run {
					return false
				}
				run += hists[i][b]
			}
			for i := 0; i < procs; i++ {
				if totals[i][b] != run {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPrefixTreeReusableAcrossEpisodes(t *testing.T) {
	// Radix sort reuses the tree once per pass; values from pass k must
	// not leak into pass k+1.
	w := world(t, 4)
	tree := NewPrefixTree(w, 4)
	w.M.Run(func(p *machine.Proc) {
		for pass := 1; pass <= 3; pass++ {
			h := []int32{int32(pass), 0, int32(p.ID), 1}
			rank, total := tree.Reduce(p, h)
			if total[0] != int32(4*pass) {
				t.Errorf("pass %d proc %d total[0] = %d, want %d", pass, p.ID, total[0], 4*pass)
			}
			if total[2] != 0+1+2+3 {
				t.Errorf("pass %d total[2] = %d, want 6", pass, total[2])
			}
			if rank[3] != int32(p.ID) {
				t.Errorf("pass %d proc %d rank[3] = %d, want %d", pass, p.ID, rank[3], p.ID)
			}
		}
	})
}

func TestPrefixTreeChargesCommunication(t *testing.T) {
	w := world(t, 8)
	tree := NewPrefixTree(w, 64)
	res := w.M.Run(func(p *machine.Proc) {
		h := make([]int32, 64)
		h[p.ID] = 1
		tree.Reduce(p, h)
	})
	// Proc 0 combines at every level: it must have remote memory time.
	if res.PerProc[0].Breakdown.RMem == 0 {
		t.Error("combining processor has no RMem time")
	}
	// Everyone synchronized at least at the final barrier.
	for i, ps := range res.PerProc {
		if ps.Breakdown.Sync == 0 {
			t.Errorf("proc %d has no sync time", i)
		}
	}
}

func TestPrefixTreeDeterministic(t *testing.T) {
	run := func() float64 {
		w := world(t, 8)
		tree := NewPrefixTree(w, 32)
		res := w.M.Run(func(p *machine.Proc) {
			h := make([]int32, 32)
			for b := range h {
				h[b] = int32(p.ID*31 + b)
			}
			tree.Reduce(p, h)
		})
		return res.TimeNs
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic reduce: %v vs %v", a, b)
	}
}

func TestReduceValidatesLength(t *testing.T) {
	w := world(t, 2)
	tree := NewPrefixTree(w, 8)
	defer func() {
		if recover() == nil {
			t.Error("Reduce accepted wrong-length histogram")
		}
	}()
	w.M.Run(func(p *machine.Proc) {
		tree.Reduce(p, make([]int32, 4))
	})
}
