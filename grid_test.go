package repro

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keys"
)

// TestBaselineTimeConcurrentSingleflight hammers BaselineTime from 8
// goroutines (run under -race in CI) and asserts the baseline experiment
// executed exactly once per key: the unsynchronized map it replaces was
// both a data race and a source of duplicated sequential runs.
func TestBaselineTimeConcurrentSingleflight(t *testing.T) {
	var computed atomic.Int64
	h := NewHarness(Options{
		Progress: func(format string, _ ...any) {
			if strings.HasPrefix(format, "baseline") {
				computed.Add(1)
			}
		},
	})
	ns := []int{1 << 12, 1 << 13}
	const workers = 8
	const iters = 4
	times := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, n := range ns {
					v, err := h.BaselineTime(n, keys.Gauss)
					if err != nil {
						t.Error(err)
						return
					}
					times[w] = append(times[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := computed.Load(); got != int64(len(ns)) {
		t.Errorf("baseline experiments ran %d times, want exactly %d (one per key)", got, len(ns))
	}
	if len(h.baseline) != len(ns) {
		t.Errorf("baseline cache holds %d entries, want %d", len(h.baseline), len(ns))
	}
	for w := 1; w < workers; w++ {
		for i, v := range times[w] {
			if v != times[0][i] {
				t.Fatalf("worker %d saw baseline %v at call %d, worker 0 saw %v", w, v, i, times[0][i])
			}
		}
	}
}

// determinismGrid is a small mixed grid covering both algorithms and all
// parallel models.
func determinismGrid() []Experiment {
	var exps []Experiment
	for _, alg := range []Algorithm{Radix, Sample} {
		for _, mo := range Models(alg) {
			exps = append(exps, Experiment{
				Algorithm: alg, Model: mo, N: 1 << 13, Procs: 4, Radix: 7, Dist: keys.Gauss,
			})
		}
	}
	exps = append(exps, Experiment{
		Algorithm: Radix, Model: Seq, N: 1 << 12, Procs: 1, Radix: 8, Dist: keys.Random,
	})
	return exps
}

// TestRunAllParallelSerialDeterminism runs the same experiment grid with
// parallelism 1 and 8 and asserts identical simulated times and
// per-processor breakdowns for every cell: the virtual-time model must
// be independent of host scheduling.
func TestRunAllParallelSerialDeterminism(t *testing.T) {
	exps := determinismGrid()
	serial, err := RunAll(1, exps)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(8, exps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exps {
		s, p := serial[i], parallel[i]
		if s.Experiment != exps[i] {
			t.Errorf("cell %d: outcome out of order: got %+v", i, s.Experiment)
		}
		if s.TimeNs != p.TimeNs {
			t.Errorf("cell %d (%s/%s): TimeNs %v (serial) != %v (parallel)",
				i, exps[i].Algorithm, exps[i].Model, s.TimeNs, p.TimeNs)
		}
		sb, pb := s.Breakdowns(), p.Breakdowns()
		if len(sb) != len(pb) {
			t.Fatalf("cell %d: breakdown lengths differ: %d vs %d", i, len(sb), len(pb))
		}
		for j := range sb {
			if sb[j] != pb[j] {
				t.Errorf("cell %d proc %d: breakdown %+v (serial) != %+v (parallel)", i, j, sb[j], pb[j])
			}
		}
	}
}

// TestHarnessParallelByteIdentical renders the same figures with
// Parallelism 1 and 8 and asserts byte-identical output — the guarantee
// cmd/paperfigs -j relies on.
func TestHarnessParallelByteIdentical(t *testing.T) {
	opts := func(par int) Options {
		return Options{
			Procs: []int{4, 8}, Sizes: SizeClasses[:1],
			RadixSweep: []int{7, 8}, TableRadixes: []int{8},
			Parallelism: par,
		}
	}
	render := func(par int) []string {
		h := NewHarness(opts(par))
		t1, _, err := h.Table1()
		if err != nil {
			t.Fatal(err)
		}
		f3, err := h.Figure3()
		if err != nil {
			t.Fatal(err)
		}
		f5, err := h.Figure5()
		if err != nil {
			t.Fatal(err)
		}
		f6, err := h.Figure6()
		if err != nil {
			t.Fatal(err)
		}
		bt, err := h.Tables23()
		if err != nil {
			t.Fatal(err)
		}
		return []string{
			t1.String(), f3.Table().String(), f5.Table().String(),
			f6.Table().String(), bt.Table2().String(), bt.Table3().String(),
		}
	}
	serial := render(1)
	parallel := render(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("output block %d differs between -j 1 and -j 8:\nserial:\n%s\nparallel:\n%s",
				i, serial[i], parallel[i])
		}
	}
}

// TestRunAllError asserts the earliest failing cell's error is returned.
func TestRunAllError(t *testing.T) {
	exps := []Experiment{
		{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4},
		{Algorithm: Radix, Model: SHMEM, N: -1, Procs: 4},
	}
	if _, err := RunAll(4, exps); err == nil {
		t.Fatal("RunAll with an invalid cell returned nil error")
	}
}

// TestRunAllEmpty covers the degenerate empty grid.
func TestRunAllEmpty(t *testing.T) {
	outs, err := RunAll(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("got %d outcomes for empty grid", len(outs))
	}
}

// TestRunInvalidRadix covers the new Radix range validation.
func TestRunInvalidRadix(t *testing.T) {
	for _, r := range []int{-1, 25} {
		if _, err := Run(Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: r}); err == nil {
			t.Errorf("Run accepted Radix=%d", r)
		}
	}
}

// TestProgressSerialized asserts Progress is never invoked concurrently
// under a parallel grid.
func TestProgressSerialized(t *testing.T) {
	var inFlight atomic.Int64
	var overlapped atomic.Bool
	h := NewHarness(Options{
		Procs: []int{4}, Sizes: SizeClasses[:1], Parallelism: 8,
		Progress: func(string, ...any) {
			if inFlight.Add(1) > 1 {
				overlapped.Store(true)
			}
			inFlight.Add(-1)
		},
	})
	if _, err := h.Figure3(); err != nil {
		t.Fatal(err)
	}
	if overlapped.Load() {
		t.Error("Progress callback ran concurrently")
	}
}
