package repro

import (
	"testing"

	"repro/internal/keys"
)

// run is a test helper executing one experiment.
func runExp(t *testing.T, e Experiment) *Outcome {
	t.Helper()
	out, err := Run(e)
	if err != nil {
		t.Fatalf("Run(%+v): %v", e, err)
	}
	if !out.Verified {
		t.Fatalf("Run(%+v): unverified outcome", e)
	}
	return out
}

func TestRunAllCombinations(t *testing.T) {
	// Every algorithm × model pair executes and verifies on a small size.
	for _, alg := range []Algorithm{Radix, Sample, Psrs} {
		for _, mo := range Models(alg) {
			out := runExp(t, Experiment{
				Algorithm: alg, Model: mo, N: 1 << 13, Procs: 8, Radix: 8,
			})
			if out.TimeNs <= 0 {
				t.Errorf("%s/%s: no simulated time", alg, mo)
			}
		}
	}
}

func TestRunSequentialBaseline(t *testing.T) {
	out := runExp(t, Experiment{Algorithm: Radix, Model: Seq, N: 1 << 13, Procs: 1})
	if out.TimeNs <= 0 {
		t.Error("baseline has no time")
	}
	if _, err := Run(Experiment{Algorithm: Radix, Model: Seq, N: 1 << 13, Procs: 8}); err == nil {
		t.Error("sequential baseline with 8 procs accepted")
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Experiment{
		{Algorithm: Radix, Model: SHMEM, N: 0, Procs: 8},
		{Algorithm: Radix, Model: SHMEM, N: 100, Procs: 0},
		{Algorithm: "bogus", Model: SHMEM, N: 100, Procs: 8},
		{Algorithm: Sample, Model: CCSASNew, N: 100, Procs: 8}, // no buffered sample variant
		{Algorithm: Psrs, Model: CCSASNew, N: 100, Procs: 8},   // no buffered PSRS variant either
		{Algorithm: Radix, Model: SHMEM, N: 100, Procs: 8, Topo: "mesh"},        // unknown interconnect
		{Algorithm: Radix, Model: CCSAS, N: 100, Procs: 24, Topo: "torus"},      // prefix tree needs 2^k procs
		{Algorithm: Radix, Model: CCSASNew, N: 100, Procs: 24, Topo: "fattree"}, // same for the buffered variant
	}
	for _, e := range bad {
		if _, err := Run(e); err == nil {
			t.Errorf("accepted invalid experiment %+v", e)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if a, err := ParseAlgorithm("RADIX"); err != nil || a != Radix {
		t.Errorf("ParseAlgorithm: %v %v", a, err)
	}
	if _, err := ParseAlgorithm("quick"); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if m, err := ParseModel("ccsas-new"); err != nil || m != CCSASNew {
		t.Errorf("ParseModel: %v %v", m, err)
	}
	if _, err := ParseModel("pthread"); err == nil {
		t.Error("accepted unknown model")
	}
	if s, err := SizeByLabel("64m"); err != nil || s.Label != "64M" {
		t.Errorf("SizeByLabel: %v %v", s, err)
	}
	if _, err := SizeByLabel("2G"); err == nil {
		t.Error("accepted unknown size")
	}
}

func TestSizeClassScaling(t *testing.T) {
	for _, s := range SizeClasses {
		if s.PaperN/s.ScaledN != 16 {
			t.Errorf("%s: paper/scaled = %d, want the machine scale factor 16",
				s.Label, s.PaperN/s.ScaledN)
		}
	}
}

func TestMachineConfigPageSizePolicy(t *testing.T) {
	small := MachineConfigFor(Experiment{N: SizeClasses[0].ScaledN, Procs: 16})
	big := MachineConfigFor(Experiment{N: SizeClasses[4].ScaledN, Procs: 16})
	if small.TLB.PageSize >= big.TLB.PageSize {
		t.Errorf("page sizes: small %d, big %d: the 256M class uses larger pages",
			small.TLB.PageSize, big.TLB.PageSize)
	}
	fullSmall := MachineConfigFor(Experiment{N: SizeClasses[0].PaperN, Procs: 16, FullSize: true})
	if fullSmall.TLB.PageSize != 64<<10 {
		t.Errorf("full-size page = %d, want 64K", fullSmall.TLB.PageSize)
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	e := Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 13, Procs: 8, Radix: 8}
	a := runExp(t, e)
	b := runExp(t, e)
	if a.TimeNs != b.TimeNs {
		t.Errorf("non-deterministic: %v vs %v", a.TimeNs, b.TimeNs)
	}
}

func TestSeedChangesKeysNotValidity(t *testing.T) {
	a := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 13, Procs: 8, Seed: 1})
	b := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 13, Procs: 8, Seed: 2})
	if a.TimeNs == b.TimeNs {
		t.Log("different seeds produced identical times (possible but unlikely)")
	}
}

// --- shape assertions: the paper's headline findings at test-scale ---

func TestShapeCCSASNewBeatsOriginalAtScale(t *testing.T) {
	size := SizeClasses[2] // 16M class
	orig := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 16})
	buf := runExp(t, Experiment{Algorithm: Radix, Model: CCSASNew, N: size.ScaledN, Procs: 16})
	shm := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 16})
	if !(shm.TimeNs < buf.TimeNs && buf.TimeNs < orig.TimeNs) {
		t.Errorf("want SHMEM (%v) < CC-SAS-NEW (%v) < CC-SAS (%v) at the 16M class",
			shm.TimeNs, buf.TimeNs, orig.TimeNs)
	}
}

func TestShapeOriginalCCSASWinsSmallest(t *testing.T) {
	// Paper Figure 3 / Table 3: plain CC-SAS is the best radix model for
	// the 1M class on larger processor counts, and CC-SAS-NEW is inferior
	// to the original there.
	size := SizeClasses[0]
	orig := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 32})
	buf := runExp(t, Experiment{Algorithm: Radix, Model: CCSASNew, N: size.ScaledN, Procs: 32})
	shm := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 32})
	if orig.TimeNs >= shm.TimeNs {
		t.Errorf("1M class: CC-SAS (%v) should beat SHMEM (%v)", orig.TimeNs, shm.TimeNs)
	}
	if orig.TimeNs >= buf.TimeNs {
		t.Errorf("1M class: original CC-SAS (%v) should beat CC-SAS-NEW (%v)", orig.TimeNs, buf.TimeNs)
	}
}

func TestShapeStagedVsDirectMPI(t *testing.T) {
	size := SizeClasses[1]
	direct := runExp(t, Experiment{Algorithm: Radix, Model: MPI, N: size.ScaledN, Procs: 16})
	staged := runExp(t, Experiment{Algorithm: Radix, Model: MPISGI, N: size.ScaledN, Procs: 16})
	if staged.TimeNs <= direct.TimeNs {
		t.Errorf("staged MPI (%v) should be slower than direct (%v)", staged.TimeNs, direct.TimeNs)
	}
	// The gap is smaller for sample sort (one communication phase).
	dS := runExp(t, Experiment{Algorithm: Sample, Model: MPI, N: size.ScaledN, Procs: 16})
	sS := runExp(t, Experiment{Algorithm: Sample, Model: MPISGI, N: size.ScaledN, Procs: 16})
	radixGap := staged.TimeNs / direct.TimeNs
	sampleGap := sS.TimeNs / dS.TimeNs
	if sampleGap >= radixGap {
		t.Errorf("sample engine gap (%v) should be smaller than radix gap (%v)", sampleGap, radixGap)
	}
}

func TestShapeSampleVsRadixCrossover(t *testing.T) {
	// Sample sort wins below ~64K keys per processor (scaled: 4K), radix
	// above (paper §4.4). Compare best-of-models at the 1M class (1K
	// keys/proc at 64P... use 16P: 4K/proc boundary; use the 64M class for
	// the radix side: 256K/proc at 16P).
	small := SizeClasses[0]
	// As in the paper's §4.4, each algorithm competes at its own best
	// combination of model and radix size.
	bestOf := func(alg Algorithm, n, procs int) float64 {
		best := -1.0
		for _, mo := range Models(alg) {
			if mo == MPISGI {
				continue
			}
			for _, r := range []int{8, 11} {
				out := runExp(t, Experiment{Algorithm: alg, Model: mo, N: n, Procs: procs, Radix: r})
				if best < 0 || out.TimeNs < best {
					best = out.TimeNs
				}
			}
		}
		return best
	}
	// 1M class on 32 procs: 2K keys/proc — sample territory (paper
	// Table 2: sample wins 1M at 32P and 64P; the scaled machine
	// compresses the margin, see EXPERIMENTS.md).
	radixSmall := bestOf(Radix, small.ScaledN, 32)
	sampleSmall := bestOf(Sample, small.ScaledN, 32)
	if sampleSmall >= radixSmall {
		t.Errorf("2K keys/proc: sample (%v) should beat radix (%v)", sampleSmall, radixSmall)
	}
	// 16M class on 16 procs: 64K keys/proc — radix territory.
	big := SizeClasses[2]
	radixBig := bestOf(Radix, big.ScaledN, 16)
	sampleBig := bestOf(Sample, big.ScaledN, 16)
	if radixBig >= sampleBig {
		t.Errorf("64K keys/proc: radix (%v) should beat sample (%v)", radixBig, sampleBig)
	}
}

func TestShapeLocalDistributionFastest(t *testing.T) {
	size := SizeClasses[1]
	gauss := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 16, Dist: keys.Gauss})
	local := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 16, Dist: keys.Local})
	if local.TimeNs >= gauss.TimeNs {
		t.Errorf("local distribution (%v) should beat gauss (%v)", local.TimeNs, gauss.TimeNs)
	}
}

func TestShapeSuperlinearSpeedupAtScale(t *testing.T) {
	// Cache+TLB capacity effects make large-data-set speedups superlinear
	// (paper §4.2). 64M class on 16 processors exceeds per-proc caches.
	size := SizeClasses[3]
	base := runExp(t, Experiment{Algorithm: Radix, Model: Seq, N: size.ScaledN, Procs: 1})
	par := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 64})
	speedup := base.TimeNs / par.TimeNs
	if speedup <= 64 {
		t.Errorf("64M class on 64P: speedup %v, want superlinear (> 64)", speedup)
	}
}

func TestAblationFlatMemoryRemovesModelGap(t *testing.T) {
	// With flat memory, the CC-SAS scattered-write penalty largely
	// disappears: the gap to SHMEM shrinks dramatically.
	size := SizeClasses[1]
	ccReal := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 16})
	shmReal := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 16})
	ccFlat := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 16, FlatMemory: true})
	shmFlat := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: size.ScaledN, Procs: 16, FlatMemory: true})
	realGap := ccReal.TimeNs / shmReal.TimeNs
	flatGap := ccFlat.TimeNs / shmFlat.TimeNs
	if flatGap >= realGap {
		t.Errorf("flat-memory ablation: gap %v should shrink below the real gap %v", flatGap, realGap)
	}
}

func TestAblationNoContention(t *testing.T) {
	size := SizeClasses[2]
	withC := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 16})
	without := runExp(t, Experiment{Algorithm: Radix, Model: CCSAS, N: size.ScaledN, Procs: 16, NoContention: true})
	if without.TimeNs >= withC.TimeNs {
		t.Errorf("no-contention ablation (%v) should be faster than contended (%v)",
			without.TimeNs, withC.TimeNs)
	}
}

func TestAblationMPIBufferDepth(t *testing.T) {
	// Deeper per-pair windows reduce the sender stalls (paper §4.2:
	// "using deeper buffers alleviates the problem").
	size := SizeClasses[1]
	shallow := runExp(t, Experiment{Algorithm: Radix, Model: MPI, N: size.ScaledN, Procs: 16, MPIBufDepth: 1})
	deep := runExp(t, Experiment{Algorithm: Radix, Model: MPI, N: size.ScaledN, Procs: 16, MPIBufDepth: 32})
	if deep.TimeNs > shallow.TimeNs {
		t.Errorf("deep windows (%v) should not be slower than 1-deep (%v)",
			deep.TimeNs, shallow.TimeNs)
	}
}

func TestFullSizeMachineSmoke(t *testing.T) {
	// The unscaled Origin2000 parameters drive the same programs.
	out := runExp(t, Experiment{
		Algorithm: Radix, Model: SHMEM, N: 1 << 16, Procs: 8, FullSize: true,
	})
	cfg := MachineConfigFor(out.Experiment)
	if cfg.Cache.Size != 4<<20 {
		t.Errorf("full-size cache = %d", cfg.Cache.Size)
	}
	// 64K keys on 8 full-size caches: everything fits, so remote traffic
	// is modest and LMem low.
	if out.TimeNs <= 0 {
		t.Error("no time")
	}
}

func TestPhaseBreakdownsExposedThroughOutcome(t *testing.T) {
	out := runExp(t, Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 14, Procs: 8})
	ps := out.Result.Run.PerProc[0]
	if len(ps.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	for _, name := range []string{"count", "permute", "transfer"} {
		if _, ok := ps.Phases[name]; !ok {
			t.Errorf("missing phase %q", name)
		}
	}
}

func TestOneMessagePerDestExperiment(t *testing.T) {
	out := runExp(t, Experiment{
		Algorithm: Radix, Model: MPI, N: 1 << 14, Procs: 8, MPIOneMessagePerDest: true,
	})
	if out.Result.Model != "mpi-NEW-onemsg" {
		t.Errorf("model label = %q", out.Result.Model)
	}
}
