package repro

// The concurrent experiment scheduler. The paper's evaluation is a large
// grid of independent deterministic simulations — {algorithm × model ×
// size × processors × radix}, where algorithm now spans radix, sample,
// and PSRS — and, just as the paper's sorts exploit
// that permutation work is independent per processor, the harness
// exploits that the grid is independent per cell: cells run on a bounded
// worker pool and results are gathered in submission order, so every
// rendered table and figure is byte-identical to a serial run.
//
// Safety argument (audited; see DESIGN.md §6): each Run builds its own
// Machine, address space, caches and key slices; the internal packages
// hold no package-level mutable state (only read-only tables such as
// keys.AllDists), and every library config (mpi.Config, shmem.Config,
// machine.Config) has value semantics. The only state shared across
// concurrent cells lives in the Harness: the baseline cache (guarded by
// singleflight entries below) and the Progress callback (serialized).

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/keys"
)

// PanicError is a panic recovered from one scheduled cell body,
// converted into a structured error: the index of the cell whose body
// panicked, the recovered panic value, and the goroutine stack captured
// at the recovery point. ForEachIndex recovers every cell panic this
// way, so a panicking cell is reported like any other failing cell
// instead of killing a pool worker (which would leave the submit loop
// blocked forever — the pre-fix deadlock).
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("repro: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// ForEachIndex runs fn(i) for every i in [0, n) on at most par worker
// goroutines and returns when all calls completed. par < 1 selects
// runtime.GOMAXPROCS(0).
//
// A panic in fn is recovered around that single call and returned as a
// *PanicError: the worker survives, every remaining index still runs,
// and the submitting loop cannot deadlock on a dead pool. The par <= 1
// inline path recovers identically, so a panicking body produces the
// same structured errors at any parallelism instead of unwinding the
// caller. The returned slice is sorted by cell index (nil when no cell
// panicked).
//
// This is the harness's cell scheduler, exported so long-running
// services (cmd/simd) can schedule their own bounded grids with the
// same panic containment.
func ForEachIndex(par, n int, fn func(i int)) []*PanicError {
	guard := func(i int) (pe *PanicError) {
		defer func() {
			if r := recover(); r != nil {
				pe = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		fn(i)
		return nil
	}
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	var panics []*PanicError
	if par <= 1 {
		for i := 0; i < n; i++ {
			if pe := guard(i); pe != nil {
				panics = append(panics, pe)
			}
		}
		return panics
	}
	idx := make(chan int)
	var (
		wg      sync.WaitGroup
		panicMu sync.Mutex
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if pe := guard(i); pe != nil {
					panicMu.Lock()
					panics = append(panics, pe)
					panicMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	sort.Slice(panics, func(a, b int) bool { return panics[a].Index < panics[b].Index })
	return panics
}

// RunAll executes the experiments concurrently on at most parallelism
// worker goroutines (parallelism < 1 selects runtime.GOMAXPROCS(0)) and
// returns the outcomes in input order. The simulator's virtual time is a
// pure function of each experiment's inputs — independent of host
// scheduling — so the outcomes are identical at any parallelism. If any
// experiment fails, the error of the earliest failing cell (in input
// order, not completion order) is returned; use RunEach when every
// cell's individual error matters.
func RunAll(parallelism int, exps []Experiment) ([]*Outcome, error) {
	outs, errs := RunEach(parallelism, exps)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunEach is RunAll without the first-error-wins collapse: it returns
// per-cell outcomes and errors, both in input order, with exactly one of
// outs[i]/errs[i] set per cell. Batch services (cmd/simd's /v1/grid) use
// it to report every cell's fate instead of aborting a whole batch on
// the first bad cell. A panicking cell yields a *PanicError in its slot.
func RunEach(parallelism int, exps []Experiment) (outs []*Outcome, errs []error) {
	outs = make([]*Outcome, len(exps))
	errs = make([]error, len(exps))
	for _, pe := range ForEachIndex(parallelism, len(exps), func(i int) {
		outs[i], errs[i] = Run(exps[i])
	}) {
		outs[pe.Index], errs[pe.Index] = nil, pe
	}
	return outs, errs
}

// gridCell is one unit of work submitted to the harness scheduler:
// either one experiment run or one cached sequential-baseline lookup.
type gridCell struct {
	exp      Experiment
	baseline bool // route exp.N/exp.Dist through BaselineTime
}

// expCell submits one experiment.
func expCell(e Experiment) gridCell { return gridCell{exp: e} }

// baselineCell submits one sequential-baseline lookup (deduplicated via
// the harness's singleflight cache).
func baselineCell(n int, dist keys.Dist) gridCell {
	return gridCell{exp: Experiment{N: n, Dist: dist}, baseline: true}
}

// gridResult is the result of one gridCell: out for experiment cells,
// base for baseline cells.
type gridResult struct {
	out  *Outcome
	base float64
}

// runGrid executes the cells through a worker pool of
// h.opts.Parallelism goroutines and returns the results in cell order.
// Every figure/table driver submits its grid here and consumes the
// results in the same deterministic order it submitted them, so the
// rendered output never depends on scheduling. On failure the earliest
// failing cell's error (in cell order, not completion order) is
// returned; a panicking cell counts as failing with a *PanicError.
func (h *Harness) runGrid(cells []gridCell) ([]gridResult, error) {
	results := make([]gridResult, len(cells))
	errs := make([]error, len(cells))
	for _, pe := range ForEachIndex(h.opts.Parallelism, len(cells), func(i int) {
		c := cells[i]
		if c.baseline {
			t, err := h.BaselineTime(c.exp.N, c.exp.Dist)
			results[i], errs[i] = gridResult{base: t}, err
			return
		}
		out, err := h.run(c.exp)
		results[i], errs[i] = gridResult{out: out}, err
	}) {
		results[pe.Index], errs[pe.Index] = gridResult{}, pe
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if h.opts.Trace {
		// Gather traces in cell order, after the whole grid completed, so
		// the harness's trace sequence is deterministic at any
		// Parallelism.
		h.traceMu.Lock()
		for _, r := range results {
			if r.out != nil {
				if tr := r.out.Trace(); tr != nil {
					h.traces = append(h.traces, tr)
				}
			}
		}
		h.traceMu.Unlock()
	}
	return results, nil
}

// gridCursor walks a runGrid result slice in submission order; drivers
// replay their submission loops and take one result per cell.
type gridCursor struct {
	res  []gridResult
	next int
}

func (c *gridCursor) take() gridResult {
	r := c.res[c.next]
	c.next++
	return r
}
