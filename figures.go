package repro

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/keys"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Options configures a Harness run. Zero values select the paper's full
// grid on the scaled machine.
type Options struct {
	// Procs are the processor counts (default 16, 32, 64).
	Procs []int
	// Sizes are the data-set classes (default all five).
	Sizes []SizeClass
	// Seed perturbs key generation.
	Seed uint64
	// RadixSweep are the radix sizes for Figures 6 and 10 (default 6..12).
	RadixSweep []int
	// TableRadixes are the radix candidates swept for Tables 2 and 3
	// (default 8, 11, 12 — the paper's winners; the full 6..14 sweep is
	// available but costly).
	TableRadixes []int
	// FullSize runs on unscaled Origin2000 parameters.
	FullSize bool
	// Parallelism bounds how many experiment cells the harness runs
	// concurrently (default runtime.GOMAXPROCS(0)). Results are always
	// gathered in deterministic cell order and the simulator's virtual
	// time is independent of host scheduling, so tables and figures are
	// byte-identical at any setting; only wall-clock changes.
	Parallelism int
	// Paranoid runs every experiment cell (baselines included) with the
	// paranoid-mode invariant checks enabled; any violation fails the
	// run with a structured error. Outputs are unchanged — tables and
	// figures stay byte-identical — but host time grows severalfold.
	Paranoid bool
	// ParanoidSampleEvery spot-samples the paranoid checks (see
	// Experiment.ParanoidSampleEvery); N > 1 implies Paranoid.
	ParanoidSampleEvery int
	// Trace records a virtual-time event trace for every experiment cell
	// (baselines excluded — they are cached and shared across drivers).
	// Traces accumulate on the harness in deterministic submission order
	// regardless of Parallelism; fetch them with Traces.
	Trace bool
	// Progress, when set, receives one line per completed run. Calls are
	// serialized (never concurrent), but under Parallelism > 1 the order
	// of lines follows completion order, not submission order.
	Progress func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if len(o.Procs) == 0 {
		o.Procs = []int{16, 32, 64}
	}
	if len(o.Sizes) == 0 {
		o.Sizes = SizeClasses
	}
	if len(o.RadixSweep) == 0 {
		o.RadixSweep = []int{6, 7, 8, 9, 10, 11, 12}
	}
	if len(o.TableRadixes) == 0 {
		o.TableRadixes = []int{8, 11, 12}
	}
	if o.Parallelism < 1 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	return o
}

// Harness regenerates the paper's tables and figures. It caches the
// sequential baselines speedups are measured against.
//
// A Harness is safe for concurrent use: its figure/table drivers run
// their experiment grids on a worker pool of opts.Parallelism goroutines
// (see runGrid), the baseline cache is singleflight-guarded, and the
// Progress callback is serialized. Everything else an experiment touches
// (Machine, caches, key slices) is built per Run and shared with nothing.
type Harness struct {
	opts Options

	// mu guards baseline. Each entry is a singleflight slot: the map
	// lookup is cheap under mu, the expensive sequential run happens in
	// the entry's once — one goroutine computes it, others wait on the
	// same entry without duplicating the run.
	mu       sync.Mutex
	baseline map[baselineKey]*baselineEntry

	// progMu serializes the user's Progress callback.
	progMu sync.Mutex

	// statMu guards stats.
	statMu sync.Mutex
	stats  HarnessStats

	// traceMu guards traces, the event traces collected when opts.Trace
	// is set. runGrid appends each grid's traces in cell order after the
	// grid completes, so the sequence is deterministic at any
	// Parallelism.
	traceMu sync.Mutex
	traces  []*trace.Trace

	// runBaseline is the function BaselineTime uses to execute the
	// sequential experiment (nil selects Run). Tests stub it to inject
	// failures into the singleflight slots.
	runBaseline func(Experiment) (*Outcome, error)
}

type baselineKey struct {
	n     int
	dist  keys.Dist
	radix int
	seed  uint64
}

// baselineEntry is one singleflight slot of the baseline cache.
type baselineEntry struct {
	once   sync.Once
	timeNs float64
	err    error
}

// HarnessStats counts the work a harness has executed so far. The JSON
// field names are part of cmd/simd's /statsz response.
type HarnessStats struct {
	// Runs is the number of completed experiment runs, including cached
	// sequential baselines (each baseline counts once, however many
	// drivers consume it).
	Runs int `json:"runs"`
	// SimNs is the total simulated virtual time across those runs.
	SimNs float64 `json:"sim_ns"`
}

// Stats returns a snapshot of the harness's work counters. Diffing two
// snapshots around a figure driver yields that figure's run count and
// simulated time (cmd/paperfigs -benchjson does exactly this).
func (h *Harness) Stats() HarnessStats {
	h.statMu.Lock()
	defer h.statMu.Unlock()
	return h.stats
}

// note records one completed run in the stats counters.
func (h *Harness) note(simNs float64) {
	h.statMu.Lock()
	h.stats.Runs++
	h.stats.SimNs += simNs
	h.statMu.Unlock()
}

// progress emits one serialized Progress line.
func (h *Harness) progress(format string, args ...any) {
	h.progMu.Lock()
	defer h.progMu.Unlock()
	h.opts.Progress(format, args...)
}

// NewHarness builds a harness.
func NewHarness(opts Options) *Harness {
	return &Harness{opts: opts.withDefaults(), baseline: make(map[baselineKey]*baselineEntry)}
}

// sizeN returns the key count used for a size class.
func (h *Harness) sizeN(s SizeClass) int {
	if h.opts.FullSize {
		return s.PaperN
	}
	return s.ScaledN
}

// BaselineTime returns (computing and caching on first use) the
// sequential radix sort time for n keys of the given distribution — the
// paper measures every speedup against this same baseline (radix 8).
//
// BaselineTime is safe for concurrent use and singleflight-deduplicated:
// when several grid cells need the same baseline at once, exactly one
// goroutine runs the sequential experiment and the rest wait for it.
//
// Only successes are cached. A failed run's entry is dropped before
// BaselineTime returns, so the next caller retries instead of being
// served the stale error forever (internal/resultcache applies the same
// errors-are-never-cached rule to its content-addressed store).
func (h *Harness) BaselineTime(n int, dist keys.Dist) (float64, error) {
	k := baselineKey{n: n, dist: dist, radix: 8, seed: h.opts.Seed}
	h.mu.Lock()
	e, ok := h.baseline[k]
	if !ok {
		e = &baselineEntry{}
		h.baseline[k] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		runFn := h.runBaseline
		if runFn == nil {
			runFn = Run
		}
		out, err := runFn(Experiment{
			Algorithm: Radix, Model: Seq, N: n, Procs: 1, Radix: 8,
			Dist: dist, Seed: h.opts.Seed, FullSize: h.opts.FullSize,
			Paranoid: h.opts.Paranoid, ParanoidSampleEvery: h.opts.ParanoidSampleEvery,
		})
		if err != nil {
			e.err = err
			return
		}
		h.note(out.TimeNs)
		h.progress("baseline n=%d dist=%v: %s", n, dist, report.Ms(out.TimeNs))
		e.timeNs = out.TimeNs
	})
	if e.err != nil {
		// Drop the poisoned entry so the next caller retries; the map may
		// already hold a fresh entry from a later caller, so only delete
		// our own.
		h.mu.Lock()
		if h.baseline[k] == e {
			delete(h.baseline, k)
		}
		h.mu.Unlock()
	}
	return e.timeNs, e.err
}

// Traces returns a copy of the event traces collected so far
// (opts.Trace must be set), in the deterministic order the drivers
// submitted their cells. The harness keeps its buffer: Traces is for
// one-shot drivers (cmd/paperfigs) that inspect the full set after a
// run. Long-lived processes should drain with TakeTraces instead, or
// the buffer grows without bound.
func (h *Harness) Traces() []*trace.Trace {
	h.traceMu.Lock()
	defer h.traceMu.Unlock()
	out := make([]*trace.Trace, len(h.traces))
	copy(out, h.traces)
	return out
}

// TakeTraces drains the collected traces, transferring ownership to the
// caller and leaving the harness's buffer empty. Long-lived processes
// (cmd/simd) call this after each traced run so trace memory is bounded
// by in-flight work, not process lifetime.
func (h *Harness) TakeTraces() []*trace.Trace {
	h.traceMu.Lock()
	defer h.traceMu.Unlock()
	out := h.traces
	h.traces = nil
	return out
}

// RunExperiment executes one fully-specified experiment, counting it in
// the harness's stats and progress stream. Unlike the figure drivers, it
// honors the experiment's own Seed, FullSize, Trace and Paranoid fields
// rather than folding in harness options — it is the entry point for
// callers (cmd/simd) whose requests carry those settings per cell. When
// e.Trace is set the trace is retained on the harness; long-lived
// callers should drain it with TakeTraces.
func (h *Harness) RunExperiment(e Experiment) (*Outcome, error) {
	out, err := Run(e)
	if err != nil {
		return nil, err
	}
	h.note(out.TimeNs)
	h.progress("%-6s %-9s n=%-8d p=%-2d r=%-2d %-7v  %s",
		e.Algorithm, e.Model, e.N, e.Procs, e.Radix, e.Dist, report.Ms(out.TimeNs))
	if tr := out.Trace(); tr != nil {
		h.traceMu.Lock()
		h.traces = append(h.traces, tr)
		h.traceMu.Unlock()
	}
	return out, nil
}

// run executes one experiment with harness-wide settings folded in.
func (h *Harness) run(e Experiment) (*Outcome, error) {
	e.Seed = h.opts.Seed
	e.FullSize = h.opts.FullSize
	e.Trace = h.opts.Trace
	e.Paranoid = h.opts.Paranoid
	e.ParanoidSampleEvery = h.opts.ParanoidSampleEvery
	out, err := Run(e)
	if err != nil {
		return nil, err
	}
	h.note(out.TimeNs)
	h.progress("%-6s %-9s n=%-8d p=%-2d r=%-2d %-7v  %s",
		e.Algorithm, e.Model, e.N, e.Procs, e.Radix, e.Dist, report.Ms(out.TimeNs))
	return out, nil
}

// gridKey labels one (size, procs) cell.
func gridKey(size string, procs int) string { return fmt.Sprintf("%s@%dP", size, procs) }

// SpeedupFigure holds one speedup-vs-configuration figure.
type SpeedupFigure struct {
	Title    string
	Variants []string
	Procs    []int
	Sizes    []string
	// Speedup[variant][gridKey(size, procs)].
	Speedup map[string]map[string]float64
}

// Get returns one cell.
func (f *SpeedupFigure) Get(variant, size string, procs int) float64 {
	return f.Speedup[variant][gridKey(size, procs)]
}

// Table renders the figure's series as rows (one per size × procs).
func (f *SpeedupFigure) Table() *report.Table {
	t := &report.Table{Title: f.Title, Header: []string{"size", "procs"}}
	t.Header = append(t.Header, f.Variants...)
	for _, s := range f.Sizes {
		for _, p := range f.Procs {
			row := []string{s, fmt.Sprintf("%d", p)}
			for _, v := range f.Variants {
				row = append(row, report.F(f.Get(v, s, p)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// speedupVariant is one series of a speedup figure: a label and the
// (algorithm, model) pair it runs. Allowing the algorithm to vary per
// series is what lets FigurePSRS put PSRS and sample sort on one grid;
// Topo additionally reshapes the series' interconnect, which is what
// lets FigureTopo sweep the same sorts across every network kind.
type speedupVariant struct {
	Label string
	Alg   Algorithm
	Model Model
	Topo  string
}

// speedupFigureVariants sweeps arbitrary (algorithm, model) series over
// the sizes × processor-counts grid, all against the shared sequential
// radix baseline.
func (h *Harness) speedupFigureVariants(title string, variants []speedupVariant) (*SpeedupFigure, error) {
	f := &SpeedupFigure{
		Title:   title,
		Procs:   h.opts.Procs,
		Speedup: make(map[string]map[string]float64),
	}
	for _, v := range variants {
		f.Variants = append(f.Variants, v.Label)
		f.Speedup[v.Label] = make(map[string]float64)
	}
	var cells []gridCell
	for _, s := range h.opts.Sizes {
		f.Sizes = append(f.Sizes, s.Label)
		n := h.sizeN(s)
		cells = append(cells, baselineCell(n, keys.Gauss))
		for _, p := range h.opts.Procs {
			for _, v := range variants {
				cells = append(cells, expCell(Experiment{
					Algorithm: v.Alg, Model: v.Model, N: n, Procs: p, Radix: 8, Dist: keys.Gauss,
					Topo: v.Topo,
				}))
			}
		}
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	cur := &gridCursor{res: res}
	for _, s := range h.opts.Sizes {
		base := cur.take().base
		for _, p := range h.opts.Procs {
			for _, v := range variants {
				f.Speedup[v.Label][gridKey(s.Label, p)] = base / cur.take().out.TimeNs
			}
		}
	}
	return f, nil
}

// speedupFigure sweeps a set of models of a single algorithm.
func (h *Harness) speedupFigure(title string, alg Algorithm,
	variants []struct {
		Label string
		Model Model
	}) (*SpeedupFigure, error) {
	vs := make([]speedupVariant, len(variants))
	for i, v := range variants {
		vs[i] = speedupVariant{Label: v.Label, Alg: alg, Model: v.Model}
	}
	return h.speedupFigureVariants(title, vs)
}

// Table1 reproduces the sequential radix sort times for the Gauss
// distribution (paper Table 1).
func (h *Harness) Table1() (*report.Table, []float64, error) {
	t := &report.Table{
		Title:  "Table 1: sequential radix sort time, Gauss keys (simulated)",
		Header: []string{"size", "keys", "time"},
	}
	var cells []gridCell
	for _, s := range h.opts.Sizes {
		cells = append(cells, baselineCell(h.sizeN(s), keys.Gauss))
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, nil, err
	}
	var times []float64
	for i, s := range h.opts.Sizes {
		base := res[i].base
		times = append(times, base)
		t.AddRow(s.Label, fmt.Sprintf("%d", h.sizeN(s)), report.Ms(base))
	}
	return t, times, nil
}

// Figure1 compares radix sort under the two MPI implementations
// (SGI-style staged vs the authors' direct "NEW").
func (h *Harness) Figure1() (*SpeedupFigure, error) {
	return h.speedupFigure("Figure 1: radix sort speedups, SGI vs NEW MPI", Radix,
		[]struct {
			Label string
			Model Model
		}{{"SGI", MPISGI}, {"NEW", MPI}})
}

// Figure2 is Figure1 for sample sort.
func (h *Harness) Figure2() (*SpeedupFigure, error) {
	return h.speedupFigure("Figure 2: sample sort speedups, SGI vs NEW MPI", Sample,
		[]struct {
			Label string
			Model Model
		}{{"SGI", MPISGI}, {"NEW", MPI}})
}

// Figure3 compares radix sort across programming models, including the
// improved CC-SAS-NEW.
func (h *Harness) Figure3() (*SpeedupFigure, error) {
	return h.speedupFigure("Figure 3: radix sort speedups across models", Radix,
		[]struct {
			Label string
			Model Model
		}{{"SHMEM", SHMEM}, {"CC-SAS", CCSAS}, {"MPI", MPI}, {"CC-SAS-NEW", CCSASNew}})
}

// Figure7 compares sample sort across programming models.
func (h *Harness) Figure7() (*SpeedupFigure, error) {
	return h.speedupFigure("Figure 7: sample sort speedups across models", Sample,
		[]struct {
			Label string
			Model Model
		}{{"SHMEM", SHMEM}, {"CC-SAS", CCSAS}, {"MPI", MPI}})
}

// FigurePSRS puts PSRS and the splitter-based sample sort on one
// speedup grid across the three programming models — a beyond-paper
// section (DESIGN.md §11): the two algorithms share every phase except
// pivot selection (gather/broadcast through the root vs group splitter
// election) and the finish (multiway merge vs second local radix sort),
// so the grid isolates exactly those two communication shapes.
func (h *Harness) FigurePSRS() (*SpeedupFigure, error) {
	return h.speedupFigureVariants("Figure P: PSRS vs sample sort speedups across models",
		[]speedupVariant{
			{Label: "PSRS-SHMEM", Alg: Psrs, Model: SHMEM},
			{Label: "PSRS-CC-SAS", Alg: Psrs, Model: CCSAS},
			{Label: "PSRS-MPI", Alg: Psrs, Model: MPI},
			{Label: "SMPL-SHMEM", Alg: Sample, Model: SHMEM},
			{Label: "SMPL-CC-SAS", Alg: Sample, Model: CCSAS},
			{Label: "SMPL-MPI", Alg: Sample, Model: MPI},
		})
}

// FigureTopoKinds is the fixed interconnect order of FigureTopo: the
// paper's hypercube first, then the beyond-paper network shapes.
var FigureTopoKinds = []string{
	topology.KindHypercube,
	topology.KindFatTree,
	topology.KindTorus,
	topology.KindDragonfly,
	topology.KindNUMA2,
}

// FigureTopo sweeps the three sorts across the three programming models
// on every interconnect kind — one speedup figure per network, same
// grid and sequential baseline everywhere (a 1-processor machine is a
// single node under every kind, so the baseline is topology-invariant).
// This is the beyond-paper scale study (DESIGN.md §12): does the CC-SAS
// vs MPI ranking survive when the Origin2000 hypercube is replaced by a
// modern fat-tree, torus, dragonfly, or two-tier chiplet NUMA?
func (h *Harness) FigureTopo() ([]*SpeedupFigure, error) {
	var figs []*SpeedupFigure
	for _, kind := range FigureTopoKinds {
		vs := make([]speedupVariant, 0, 9)
		for _, av := range []struct {
			tag string
			alg Algorithm
		}{{"RDX", Radix}, {"SMPL", Sample}, {"PSRS", Psrs}} {
			for _, mv := range []struct {
				tag string
				mo  Model
			}{{"SHMEM", SHMEM}, {"CC-SAS", CCSAS}, {"MPI", MPI}} {
				vs = append(vs, speedupVariant{
					Label: av.tag + "-" + mv.tag,
					Alg:   av.alg, Model: mv.mo, Topo: kind,
				})
			}
		}
		f, err := h.speedupFigureVariants(
			fmt.Sprintf("Figure T (%s): radix/sample/PSRS speedups across models", kind), vs)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// BreakdownFigure holds per-processor time decompositions for several
// program variants (paper Figures 4 and 8).
type BreakdownFigure struct {
	Title  string
	Panels []BreakdownPanel
}

// BreakdownPanel is one variant's per-processor decomposition.
type BreakdownPanel struct {
	Name    string
	PerProc []machine.Breakdown
}

// Mean returns the panel's average breakdown across processors.
func (p *BreakdownPanel) Mean() machine.Breakdown {
	var sum machine.Breakdown
	for _, b := range p.PerProc {
		sum.Add(b)
	}
	n := float64(len(p.PerProc))
	return machine.Breakdown{
		Busy: sum.Busy / n, LMem: sum.LMem / n, RMem: sum.RMem / n, Sync: sum.Sync / n,
	}
}

// Chart renders the panels as stacked per-category charts of the mean
// breakdown, in microseconds.
func (f *BreakdownFigure) Chart() string {
	sb := &report.StackedBreakdown{
		Title:      f.Title,
		Categories: []string{"BUSY", "LMEM", "RMEM", "SYNC"},
	}
	for _, p := range f.Panels {
		m := p.Mean()
		sb.Labels = append(sb.Labels, p.Name)
		sb.Values = append(sb.Values, []float64{m.Busy / 1e3, m.LMem / 1e3, m.RMem / 1e3, m.Sync / 1e3})
	}
	return sb.String()
}

// breakdownFigure runs the given variants at the paper's breakdown
// configuration: the 64M-size class on the largest processor count.
func (h *Harness) breakdownFigure(title string, alg Algorithm, models []Model) (*BreakdownFigure, error) {
	size, err := SizeByLabel("64M")
	if err != nil {
		return nil, err
	}
	procs := h.opts.Procs[len(h.opts.Procs)-1]
	f := &BreakdownFigure{Title: title}
	var cells []gridCell
	for _, mo := range models {
		cells = append(cells, expCell(Experiment{
			Algorithm: alg, Model: mo, N: h.sizeN(size), Procs: procs, Radix: 8, Dist: keys.Gauss,
		}))
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	for i, mo := range models {
		f.Panels = append(f.Panels, BreakdownPanel{Name: string(mo), PerProc: res[i].out.Breakdowns()})
	}
	return f, nil
}

// Figure4 reproduces the radix sort per-processor time breakdowns.
func (h *Harness) Figure4() (*BreakdownFigure, error) {
	return h.breakdownFigure("Figure 4: radix sort time breakdown (64M class)",
		Radix, []Model{CCSAS, CCSASNew, MPI, SHMEM})
}

// Figure8 reproduces the sample sort per-processor time breakdowns.
func (h *Harness) Figure8() (*BreakdownFigure, error) {
	return h.breakdownFigure("Figure 8: sample sort time breakdown (64M class)",
		Sample, []Model{CCSAS, MPI, SHMEM})
}

// RelativeFigure holds execution times relative to a reference variant
// (paper Figures 5, 6, 9 and 10).
type RelativeFigure struct {
	Title     string
	Reference string
	Variants  []string
	Sizes     []string
	// Relative[variant][size] = time(variant)/time(reference).
	Relative map[string]map[string]float64
}

// Get returns one cell.
func (f *RelativeFigure) Get(variant, size string) float64 {
	return f.Relative[variant][size]
}

// Table renders the figure.
func (f *RelativeFigure) Table() *report.Table {
	t := &report.Table{Title: f.Title, Header: append([]string{"variant"}, f.Sizes...)}
	for _, v := range f.Variants {
		row := []string{v}
		for _, s := range f.Sizes {
			row = append(row, report.F(f.Get(v, s)))
		}
		t.AddRow(row...)
	}
	return t
}

// distFigure sweeps key distributions for one algorithm/model at the
// largest processor count, reporting times relative to Gauss.
func (h *Harness) distFigure(title string, alg Algorithm, model Model) (*RelativeFigure, error) {
	procs := h.opts.Procs[len(h.opts.Procs)-1]
	f := &RelativeFigure{
		Title:     title,
		Reference: keys.Gauss.String(),
		Relative:  make(map[string]map[string]float64),
	}
	for _, d := range keys.AllDists {
		f.Variants = append(f.Variants, d.String())
		f.Relative[d.String()] = make(map[string]float64)
	}
	var cells []gridCell
	for _, s := range h.opts.Sizes {
		f.Sizes = append(f.Sizes, s.Label)
		n := h.sizeN(s)
		for _, d := range keys.AllDists {
			cells = append(cells, expCell(Experiment{
				Algorithm: alg, Model: model, N: n, Procs: procs, Radix: 8, Dist: d,
			}))
		}
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	cur := &gridCursor{res: res}
	for _, s := range h.opts.Sizes {
		ref := 0.0
		for _, d := range keys.AllDists {
			t := cur.take().out.TimeNs
			if d == keys.Gauss {
				ref = t
			}
			f.Relative[d.String()][s.Label] = t
		}
		for _, d := range keys.AllDists {
			f.Relative[d.String()][s.Label] /= ref
		}
	}
	return f, nil
}

// Figure5 reproduces the radix sort key-distribution study (SHMEM, max
// processor count).
func (h *Harness) Figure5() (*RelativeFigure, error) {
	return h.distFigure("Figure 5: radix sort time by key distribution (SHMEM), relative to Gauss",
		Radix, SHMEM)
}

// Figure9 reproduces the sample sort key-distribution study (CC-SAS).
func (h *Harness) Figure9() (*RelativeFigure, error) {
	return h.distFigure("Figure 9: sample sort time by key distribution (CC-SAS), relative to Gauss",
		Sample, CCSAS)
}

// FigureSkew is the beyond-paper skewed-workload study (DESIGN.md §14,
// paperfigs -exp figskew): Gauss plus the four skew distributions
// (zipf, selfsim, dupheavy, adversarial) across the three algorithms at
// their §4 headline models, largest size and processor count of the
// grid. Each column is one program, normalized by that program's own
// Gauss time, so a cell directly reads "how much does this skew cost
// this algorithm" — the splitter-sensitivity story the paper's eight
// benign distributions cannot show.
func (h *Harness) FigureSkew() (*RelativeFigure, error) {
	procs := h.opts.Procs[len(h.opts.Procs)-1]
	size := h.opts.Sizes[len(h.opts.Sizes)-1]
	n := h.sizeN(size)
	programs := []struct {
		name  string
		alg   Algorithm
		model Model
	}{
		{"radix/shmem", Radix, SHMEM},
		{"sample/ccsas", Sample, CCSAS},
		{"psrs/ccsas", Psrs, CCSAS},
	}
	dists := append([]keys.Dist{keys.Gauss}, keys.SkewDists...)
	f := &RelativeFigure{
		Title: fmt.Sprintf("figskew: skewed workloads at the %s class, %dP, relative to each program's Gauss time",
			size.Label, procs),
		Reference: keys.Gauss.String(),
		Relative:  make(map[string]map[string]float64),
	}
	for _, d := range dists {
		f.Variants = append(f.Variants, d.String())
		f.Relative[d.String()] = make(map[string]float64)
	}
	var cells []gridCell
	for _, p := range programs {
		f.Sizes = append(f.Sizes, p.name)
		for _, d := range dists {
			cells = append(cells, expCell(Experiment{
				Algorithm: p.alg, Model: p.model, N: n, Procs: procs, Radix: 8, Dist: d,
			}))
		}
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	cur := &gridCursor{res: res}
	for _, p := range programs {
		ref := 0.0
		for _, d := range dists {
			t := cur.take().out.TimeNs
			if d == keys.Gauss {
				ref = t
			}
			f.Relative[d.String()][p.name] = t
		}
		for _, d := range dists {
			f.Relative[d.String()][p.name] /= ref
		}
	}
	return f, nil
}

// radixFigure sweeps radix sizes relative to radix 8 at the largest
// processor count.
func (h *Harness) radixFigure(title string, alg Algorithm, model Model) (*RelativeFigure, error) {
	procs := h.opts.Procs[len(h.opts.Procs)-1]
	f := &RelativeFigure{
		Title:     title,
		Reference: "radix 8",
		Relative:  make(map[string]map[string]float64),
	}
	for _, r := range h.opts.RadixSweep {
		name := fmt.Sprintf("r=%d", r)
		f.Variants = append(f.Variants, name)
		f.Relative[name] = make(map[string]float64)
	}
	var cells []gridCell
	for _, s := range h.opts.Sizes {
		f.Sizes = append(f.Sizes, s.Label)
		n := h.sizeN(s)
		for _, r := range h.opts.RadixSweep {
			cells = append(cells, expCell(Experiment{
				Algorithm: alg, Model: model, N: n, Procs: procs, Radix: r, Dist: keys.Gauss,
			}))
		}
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	cur := &gridCursor{res: res}
	for _, s := range h.opts.Sizes {
		times := make(map[int]float64)
		for _, r := range h.opts.RadixSweep {
			times[r] = cur.take().out.TimeNs
		}
		ref, ok := times[8]
		if !ok {
			// Normalize to the first swept radix when 8 is not in the sweep.
			ref = times[h.opts.RadixSweep[0]]
		}
		for _, r := range h.opts.RadixSweep {
			f.Relative[fmt.Sprintf("r=%d", r)][s.Label] = times[r] / ref
		}
	}
	return f, nil
}

// Figure6 reproduces the radix-size study for radix sort (SHMEM).
func (h *Harness) Figure6() (*RelativeFigure, error) {
	return h.radixFigure("Figure 6: radix sort time by radix size (SHMEM), relative to radix 8",
		Radix, SHMEM)
}

// Figure10 reproduces the radix-size study for sample sort (CC-SAS).
func (h *Harness) Figure10() (*RelativeFigure, error) {
	return h.radixFigure("Figure 10: sample sort time by radix size (CC-SAS), relative to radix 8",
		Sample, CCSAS)
}

// BestCell is one Table 2/3 entry: the best time over models and radix
// candidates, and which combination won.
type BestCell struct {
	TimeNs float64
	Model  Model
	Radix  int
}

// BestTables holds Tables 2 and 3: Best[algorithm][size][procs].
type BestTables struct {
	Sizes []string
	Procs []int
	Best  map[Algorithm]map[string]map[int]BestCell
}

// Tables23 sweeps models × radix candidates to find the best combination
// per cell, reproducing Tables 2 and 3 together.
func (h *Harness) Tables23() (*BestTables, error) {
	bt := &BestTables{
		Procs: h.opts.Procs,
		Best:  map[Algorithm]map[string]map[int]BestCell{Radix: {}, Sample: {}},
	}
	// The paper's Table 2 picks the best over the three programming
	// models (CC-SAS there means the better of original and NEW).
	variants := map[Algorithm][]Model{
		Radix:  {CCSAS, CCSASNew, MPI, SHMEM},
		Sample: {CCSAS, MPI, SHMEM},
	}
	var cells []gridCell
	for _, s := range h.opts.Sizes {
		bt.Sizes = append(bt.Sizes, s.Label)
		n := h.sizeN(s)
		for _, alg := range []Algorithm{Radix, Sample} {
			for _, p := range h.opts.Procs {
				for _, mo := range variants[alg] {
					for _, r := range h.opts.TableRadixes {
						cells = append(cells, expCell(Experiment{
							Algorithm: alg, Model: mo, N: n, Procs: p, Radix: r, Dist: keys.Gauss,
						}))
					}
				}
			}
		}
	}
	res, err := h.runGrid(cells)
	if err != nil {
		return nil, err
	}
	cur := &gridCursor{res: res}
	for _, s := range h.opts.Sizes {
		for _, alg := range []Algorithm{Radix, Sample} {
			if bt.Best[alg][s.Label] == nil {
				bt.Best[alg][s.Label] = make(map[int]BestCell)
			}
			for _, p := range h.opts.Procs {
				// Ties resolve to the earliest candidate in sweep order,
				// exactly as the serial loop did.
				best := BestCell{TimeNs: -1}
				for _, mo := range variants[alg] {
					for _, r := range h.opts.TableRadixes {
						out := cur.take().out
						if best.TimeNs < 0 || out.TimeNs < best.TimeNs {
							best = BestCell{TimeNs: out.TimeNs, Model: mo, Radix: r}
						}
					}
				}
				bt.Best[alg][s.Label][p] = best
			}
		}
	}
	return bt, nil
}

// Table2 renders the best execution times (paper Table 2).
func (bt *BestTables) Table2() *report.Table {
	t := &report.Table{
		Title:  "Table 2: best execution time (simulated), Gauss keys",
		Header: []string{"size"},
	}
	for _, alg := range []Algorithm{Radix, Sample} {
		for _, p := range bt.Procs {
			t.Header = append(t.Header, fmt.Sprintf("%s %dP", alg, p))
		}
	}
	for _, s := range bt.Sizes {
		row := []string{s}
		for _, alg := range []Algorithm{Radix, Sample} {
			for _, p := range bt.Procs {
				row = append(row, report.Ms(bt.Best[alg][s][p].TimeNs))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Table3 renders the winning model and radix per cell (paper Table 3).
func (bt *BestTables) Table3() *report.Table {
	t := &report.Table{
		Title:  "Table 3: best model and radix size per configuration",
		Header: []string{"size"},
	}
	for _, alg := range []Algorithm{Radix, Sample} {
		for _, p := range bt.Procs {
			t.Header = append(t.Header, fmt.Sprintf("%s %dP", alg, p))
		}
	}
	for _, s := range bt.Sizes {
		row := []string{s}
		for _, alg := range []Algorithm{Radix, Sample} {
			for _, p := range bt.Procs {
				c := bt.Best[alg][s][p]
				row = append(row, fmt.Sprintf("%s %d", c.Model, c.Radix))
			}
		}
		t.AddRow(row...)
	}
	return t
}
