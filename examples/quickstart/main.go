// Quickstart: sort one million (scaled-class) keys with the paper's
// recommended combination — radix sort under the SHMEM model — and print
// the simulated result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/keys"
)

func main() {
	// The 16M size class on 16 processors of the scaled Origin2000.
	size, err := repro.SizeByLabel("16M")
	if err != nil {
		log.Fatal(err)
	}

	out, err := repro.Run(repro.Experiment{
		Algorithm: repro.Radix,
		Model:     repro.SHMEM,
		N:         size.ScaledN,
		Procs:     16,
		Radix:     8,
		Dist:      keys.Gauss,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d keys on %d simulated processors\n",
		size.ScaledN, out.Experiment.Procs)
	fmt.Printf("simulated time: %.3f ms (verified: %v)\n",
		out.TimeNs/1e6, out.Verified)
	fmt.Printf("first keys: %v\n", out.Result.Sorted[:8])
	fmt.Printf("last keys:  %v\n", out.Result.Sorted[len(out.Result.Sorted)-8:])

	// Compare against the sequential baseline for the speedup.
	base, err := repro.Run(repro.Experiment{
		Algorithm: repro.Radix, Model: repro.Seq,
		N: size.ScaledN, Procs: 1, Radix: 8, Dist: keys.Gauss,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential baseline: %.3f ms -> speedup %.1f\n",
		base.TimeNs/1e6, base.TimeNs/out.TimeNs)
}
