// Modelcomparison: the paper's central question — how does the same
// parallel radix sort perform under CC-SAS, MPI and SHMEM on one
// cache-coherent DSM machine? This example runs all radix variants
// across processor counts on one data size and prints the speedup table.
//
// Run with: go run ./examples/modelcomparison
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	size, err := repro.SizeByLabel("16M")
	if err != nil {
		log.Fatal(err)
	}
	n := size.ScaledN

	base, err := repro.Run(repro.Experiment{
		Algorithm: repro.Radix, Model: repro.Seq, N: n, Procs: 1, Dist: keys.Gauss,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential radix sort of %d keys: %.3f ms\n\n", n, base.TimeNs/1e6)

	models := []repro.Model{repro.SHMEM, repro.CCSAS, repro.CCSASNew, repro.MPI, repro.MPISGI}
	t := &report.Table{
		Title:  fmt.Sprintf("Radix sort speedups, %s class (%d keys), Gauss", size.Label, n),
		Header: []string{"procs"},
	}
	for _, m := range models {
		t.Header = append(t.Header, string(m))
	}
	for _, procs := range []int{4, 16, 64} {
		row := []string{fmt.Sprintf("%d", procs)}
		for _, m := range models {
			out, err := repro.Run(repro.Experiment{
				Algorithm: repro.Radix, Model: m, N: n, Procs: procs, Dist: keys.Gauss,
			})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.F(base.TimeNs/out.TimeNs))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)
	fmt.Println("The paper's finding: SHMEM leads for large data sets; the original")
	fmt.Println("CC-SAS program collapses under scattered-remote-write coherence")
	fmt.Println("traffic; local buffering (ccsas-new) recovers most of the gap; the")
	fmt.Println("staged vendor-style MPI (mpi-sgi) trails the direct-copy rewrite.")
}
