// Indexbuild: the paper's introduction motivates parallel sorting as "a
// core utility for database systems in organizing and indexing data".
// This example plays that role: it bulk-builds a sorted index over a
// synthetic record table on the simulated DSM machine, compares the
// paper's two algorithms for the job, and then serves point lookups
// from the index.
//
// Run with: go run ./examples/indexbuild
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	size, err := repro.SizeByLabel("4M")
	if err != nil {
		log.Fatal(err)
	}
	n := size.ScaledN
	const procs = 16

	// "Records" keyed by a skewed (Gauss) attribute, as a loaded OLTP
	// table might be.
	fmt.Printf("bulk-building a sorted index over %d records on %d processors\n\n", n, procs)

	t := &report.Table{
		Title:  "Index build: algorithm comparison (simulated)",
		Header: []string{"algorithm/model", "radix", "build time"},
	}
	type cand struct {
		alg   repro.Algorithm
		model repro.Model
		radix int
	}
	var best *repro.Outcome
	for _, c := range []cand{
		{repro.Radix, repro.SHMEM, 8},
		{repro.Radix, repro.CCSAS, 8},
		{repro.Sample, repro.CCSAS, 11},
	} {
		out, err := repro.Run(repro.Experiment{
			Algorithm: c.alg, Model: c.model, N: n, Procs: procs,
			Radix: c.radix, Dist: keys.Gauss,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%s/%s", c.alg, c.model), fmt.Sprintf("%d", c.radix),
			report.Ms(out.TimeNs))
		if best == nil || out.TimeNs < best.TimeNs {
			best = out
		}
	}
	fmt.Println(t)

	// The winner's output is the index: serve some lookups.
	index := best.Result.Sorted
	fmt.Printf("index built by %s/%s in %s; serving lookups:\n",
		best.Experiment.Algorithm, best.Experiment.Model, report.Ms(best.TimeNs))
	for _, probe := range []uint32{0, index[n/4], index[n/2], index[n-1], 1 << 30} {
		i := sort.Search(len(index), func(j int) bool { return index[j] >= probe })
		status := "miss"
		if i < len(index) && index[i] == probe {
			status = "hit"
		}
		fmt.Printf("  key %10d -> position %8d (%s)\n", probe, i, status)
	}
}
