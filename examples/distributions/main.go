// Distributions: how the eight key initialization methods of the
// paper's §3.3 affect both sorting algorithms. Reproduces the spirit of
// Figures 5 and 9 on one configuration.
//
// Run with: go run ./examples/distributions
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	size, err := repro.SizeByLabel("4M")
	if err != nil {
		log.Fatal(err)
	}
	n := size.ScaledN
	const procs = 16

	t := &report.Table{
		Title: fmt.Sprintf("Execution time by key distribution (%s class, %dP), relative to Gauss",
			size.Label, procs),
		Header: []string{"distribution", "radix/shmem", "sample/ccsas"},
	}

	radixRef, sampleRef := 0.0, 0.0
	for _, d := range keys.AllDists {
		radix, err := repro.Run(repro.Experiment{
			Algorithm: repro.Radix, Model: repro.SHMEM, N: n, Procs: procs, Dist: d,
		})
		if err != nil {
			log.Fatal(err)
		}
		sample, err := repro.Run(repro.Experiment{
			Algorithm: repro.Sample, Model: repro.CCSAS, N: n, Procs: procs, Dist: d,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d == keys.Gauss {
			radixRef, sampleRef = radix.TimeNs, sample.TimeNs
		}
		t.AddRow(d.String(),
			report.F(radix.TimeNs/radixRef),
			report.F(sample.TimeNs/sampleRef))
	}
	fmt.Println(t)
	fmt.Println("local is fastest (no key movement); realistic distributions behave")
	fmt.Println("like Gauss until per-processor data outgrows the cache, where the")
	fmt.Println("remote/local patterns' spatial locality in the local sort pays off.")
}
