// Breakdown: the paper's per-processor execution-time decomposition
// (BUSY / LMEM / RMEM / SYNC, Figures 4 and 8), rendered as stacked text
// charts for every radix-sort variant on one configuration.
//
// Run with: go run ./examples/breakdown
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/keys"
	"repro/internal/report"
)

func main() {
	size, err := repro.SizeByLabel("64M")
	if err != nil {
		log.Fatal(err)
	}
	n := size.ScaledN
	const procs = 16

	sb := &report.StackedBreakdown{
		Title: fmt.Sprintf("Radix sort mean per-processor time (µs), %s class on %dP",
			size.Label, procs),
		Categories: []string{"BUSY", "LMEM", "RMEM", "SYNC"},
		Width:      56,
	}
	for _, m := range []repro.Model{repro.CCSAS, repro.CCSASNew, repro.MPI, repro.SHMEM} {
		out, err := repro.Run(repro.Experiment{
			Algorithm: repro.Radix, Model: m, N: n, Procs: procs, Dist: keys.Gauss,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum [4]float64
		bds := out.Breakdowns()
		for _, b := range bds {
			sum[0] += b.Busy
			sum[1] += b.LMem
			sum[2] += b.RMem
			sum[3] += b.Sync
		}
		k := float64(len(bds)) * 1e3 // mean, in µs
		sb.Labels = append(sb.Labels, string(m))
		sb.Values = append(sb.Values, []float64{sum[0] / k, sum[1] / k, sum[2] / k, sum[3] / k})
	}
	fmt.Println(sb)
	fmt.Println("As in the paper's Figure 4: the original CC-SAS program is dominated")
	fmt.Println("by memory time from its scattered remote writes; the explicit models")
	fmt.Println("and the buffered CC-SAS keep memory time low with bulk transfers.")
}
