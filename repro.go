// Package repro is a reproduction of "Parallel Sorting on Cache-coherent
// DSM Multiprocessors" (Shan & Singh, SC 1999): parallel radix sort and
// sample sort under the CC-SAS, MPI and SHMEM programming models,
// executed on a deterministic simulator of an SGI Origin2000-class
// CC-NUMA machine.
//
// The public API has two layers:
//
//   - Run executes one Experiment (algorithm × model × size × processors
//     × radix × key distribution) and returns a verified, timed Outcome.
//
//   - Harness drives the paper's full evaluation: Table1 through Table3
//     and Figure1 through Figure10 regenerate the same rows and series
//     the paper reports (on the scaled machine by default; see DESIGN.md
//     for the scaling argument).
package repro

import (
	"fmt"
	"strings"

	"repro/internal/keys"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/shmem"
	"repro/internal/sorts"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Algorithm selects the sorting algorithm.
type Algorithm string

const (
	// Radix is the parallel radix sort.
	Radix Algorithm = "radix"
	// Sample is the parallel sample sort (splitter-based, group splitter
	// election, second local radix sort).
	Sample Algorithm = "sample"
	// Psrs is Parallel Sorting by Regular Sampling: root-side pivot
	// gather/broadcast, partition exchange, local multiway merge.
	Psrs Algorithm = "psrs"
)

// Model selects the programming model / implementation variant.
type Model string

const (
	// Seq is the sequential baseline (radix only).
	Seq Model = "seq"
	// CCSAS is the load-store shared-address-space program (for radix,
	// the original SPLASH-2 scattered-write version).
	CCSAS Model = "ccsas"
	// CCSASNew is the paper's improved, locally-buffered CC-SAS radix.
	CCSASNew Model = "ccsas-new"
	// MPI is message passing with the authors' direct-copy library (NEW).
	MPI Model = "mpi"
	// MPISGI is message passing with the vendor-style staged-copy
	// library.
	MPISGI Model = "mpi-sgi"
	// SHMEM is the one-sided put/get model.
	SHMEM Model = "shmem"
)

// Models lists the parallel models applicable to each algorithm.
func Models(a Algorithm) []Model {
	if a == Radix {
		return []Model{CCSAS, CCSASNew, MPI, MPISGI, SHMEM}
	}
	// Sample sort and PSRS have no buffered CC-SAS variant.
	return []Model{CCSAS, MPI, MPISGI, SHMEM}
}

// ParseModel resolves a model name.
func ParseModel(s string) (Model, error) {
	for _, m := range []Model{Seq, CCSAS, CCSASNew, MPI, MPISGI, SHMEM} {
		if strings.EqualFold(s, string(m)) {
			return m, nil
		}
	}
	return "", fmt.Errorf("repro: unknown model %q", s)
}

// ParseTopology resolves an interconnect name against the registered
// network kinds ("" stays "", selecting the default Origin2000
// hypercube).
func ParseTopology(s string) (string, error) {
	if s == "" {
		return "", nil
	}
	for _, k := range topology.Kinds() {
		if strings.EqualFold(s, k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("repro: unknown topology %q (known: %s)",
		s, strings.Join(topology.Kinds(), ", "))
}

// ParseAlgorithm resolves an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{Radix, Sample, Psrs} {
		if strings.EqualFold(s, string(a)) {
			return a, nil
		}
	}
	return "", fmt.Errorf("repro: unknown algorithm %q", s)
}

// SizeClass maps a paper data-set label to its key counts: the paper's
// count and the scaled count used on the scaled machine (÷16, matching
// the cache scaled ÷16 by machine.ScaleFactor; every capacity crossover
// lands in the same place relative to the cache).
type SizeClass struct {
	Label   string
	PaperN  int
	ScaledN int
}

// SizeClasses are the paper's five data-set sizes. Scaled counts divide
// by machine.ScaleFactor (16), matching the scaled machine's cache.
var SizeClasses = []SizeClass{
	{"1M", 1 << 20, 1 << 16},
	{"4M", 1 << 22, 1 << 18},
	{"16M", 1 << 24, 1 << 20},
	{"64M", 1 << 26, 1 << 22},
	{"256M", 1 << 28, 1 << 24},
}

// SizeByLabel returns the size class with the given label.
func SizeByLabel(label string) (SizeClass, error) {
	for _, s := range SizeClasses {
		if strings.EqualFold(s.Label, label) {
			return s, nil
		}
	}
	return SizeClass{}, fmt.Errorf("repro: unknown size class %q", label)
}

// Experiment specifies one sorting run.
type Experiment struct {
	Algorithm Algorithm
	Model     Model
	// N is the key count (use SizeClasses for paper-comparable sizes).
	N int
	// Procs is the processor count (power of two; 16/32/64 in the paper).
	Procs int
	// Radix is the digit size in bits (default 8).
	Radix int
	// Dist is the key distribution (default Gauss).
	Dist keys.Dist
	// Topo selects the machine's interconnect by registered network kind
	// ("" = the Origin2000 hypercube; see topology.Kinds and the -topo
	// flags of the cmd drivers).
	Topo string
	// Seed perturbs key generation.
	Seed uint64
	// SampleSize overrides sample sort's per-processor sample count
	// (0 = the default 128). The Adversarial key distribution mirrors
	// this value so its splitter-defeating construction targets the
	// sampler actually used; key generation for the other distributions
	// ignores it, and the same value always produces the same keys for
	// every algorithm, so cross-algorithm comparisons stay apples to
	// apples.
	SampleSize int
	// FullSize runs on the unscaled Origin2000 machine parameters.
	FullSize bool
	// MPIBufDepth overrides the per-pair window depth (0 = default) for
	// the buffer-depth ablation.
	MPIBufDepth int
	// MPIOneMessagePerDest selects the NAS-IS-style radix MPI permutation
	// (one message per destination, receiver reorganizes) instead of the
	// paper's per-chunk messages.
	MPIOneMessagePerDest bool
	// Ablation flags (see DESIGN.md §4).
	FlatMemory   bool
	NoContention bool
	// Paranoid shadows every simulated access with the reference models
	// and invariant checks of internal/check (DESIGN.md §9). Outputs are
	// byte-identical to a normal run; the host slows down severalfold,
	// and Run fails with a structured error if any check is violated.
	Paranoid bool
	// ParanoidSampleEvery spot-samples the paranoid checks: 0 or 1 keeps
	// the full per-access shadow, N > 1 (which implies Paranoid) runs the
	// stateless oracles on every Nth priced event while keeping the fast
	// batched kernels. See machine.Config.ParanoidSampleEvery.
	ParanoidSampleEvery int
	// Trace records a deterministic virtual-time event trace of the run
	// (see DESIGN.md §7); the trace is attached to the Outcome.
	Trace bool
}

// Label is the canonical human-readable name of the experiment, used to
// label traces and figure rows.
func (e Experiment) Label() string {
	l := fmt.Sprintf("%s/%s n=%d p=%d r=%d", e.Algorithm, e.Model, e.N, e.Procs, e.Radix)
	if e.Topo != "" && e.Topo != topology.KindHypercube {
		l += " topo=" + e.Topo
	}
	return l
}

// MachineConfigFor returns the machine configuration the harness uses
// for an experiment: the scaled Origin2000 by default, with the paper's
// page-size policy (the authors used 64 KB pages up to 64M keys and
// 256 KB pages at 256M; scaled, that is 1 KB up to the 64M class and
// 4 KB for the 256M class).
func MachineConfigFor(e Experiment) machine.Config {
	if e.FullSize {
		cfg := machine.Origin2000(e.Procs)
		cfg.Topology.Kind = e.Topo
		cfg.TLB.PageSize = 64 << 10
		if e.N >= SizeClasses[4].PaperN {
			cfg.TLB.PageSize = 256 << 10
		}
		cfg.FlatMemory = e.FlatMemory
		cfg.NoContention = e.NoContention
		cfg.Paranoid = e.Paranoid
		cfg.ParanoidSampleEvery = e.ParanoidSampleEvery
		return cfg
	}
	cfg := machine.Origin2000Scaled(e.Procs)
	cfg.Topology.Kind = e.Topo
	cfg.TLB.PageSize = (64 << 10) / machine.ScaleFactor
	if e.N >= SizeClasses[4].ScaledN {
		cfg.TLB.PageSize = (256 << 10) / machine.ScaleFactor
	}
	cfg.FlatMemory = e.FlatMemory
	cfg.NoContention = e.NoContention
	cfg.Paranoid = e.Paranoid
	cfg.ParanoidSampleEvery = e.ParanoidSampleEvery
	return cfg
}

// Outcome is one executed experiment.
type Outcome struct {
	Experiment Experiment
	// Result carries the sorted output and per-processor stats.
	Result *sorts.Result
	// TimeNs is the simulated execution time.
	TimeNs float64
	// Verified is true when the output was checked to be an ascending
	// permutation of the input.
	Verified bool
}

// Trace returns the run's virtual-time event trace, or nil when the
// experiment was not run with Trace set.
func (o *Outcome) Trace() *trace.Trace { return o.Result.Run.Trace }

// Breakdowns returns the per-processor BUSY/LMEM/RMEM/SYNC split.
func (o *Outcome) Breakdowns() []machine.Breakdown {
	out := make([]machine.Breakdown, len(o.Result.Run.PerProc))
	for i, ps := range o.Result.Run.PerProc {
		out[i] = ps.Breakdown
	}
	return out
}

// Run executes one experiment: generates the keys, builds the machine,
// runs the selected program, and verifies the output.
func Run(e Experiment) (*Outcome, error) {
	if e.Radix == 0 {
		e.Radix = 8
	}
	if e.Radix < 1 || e.Radix > 24 {
		return nil, fmt.Errorf("repro: Radix must be in [1, 24] bits, got %d", e.Radix)
	}
	if e.N <= 0 {
		return nil, fmt.Errorf("repro: N must be positive, got %d", e.N)
	}
	if e.Procs <= 0 {
		return nil, fmt.Errorf("repro: Procs must be positive, got %d", e.Procs)
	}
	if (e.Model == CCSAS || e.Model == CCSASNew) && e.Procs&(e.Procs-1) != 0 {
		// The SPLASH-2 binary prefix tree is structurally a complete
		// binary tree over the processors.
		return nil, fmt.Errorf("repro: %s needs a power-of-two processor count, got %d", e.Model, e.Procs)
	}
	if e.SampleSize < 0 || e.SampleSize > 1<<20 {
		return nil, fmt.Errorf("repro: SampleSize must be in [0, 2^20], got %d", e.SampleSize)
	}
	in, err := keys.Generate(e.Dist, keys.GenConfig{
		N: e.N, Procs: e.Procs, RadixBits: e.Radix, Seed: e.Seed,
		AdvSamples: e.SampleSize,
	})
	if err != nil {
		return nil, err
	}
	m, err := machine.New(MachineConfigFor(e))
	if err != nil {
		return nil, err
	}
	if e.Trace {
		m.EnableTracing()
	}
	cfg := sorts.Config{Radix: e.Radix, SampleSize: e.SampleSize}
	switch e.Model {
	case MPISGI:
		cfg.MPI = mpi.DefaultStaged()
	default:
		cfg.MPI = mpi.DefaultDirect()
	}
	cfg.Shmem = shmem.DefaultConfig()
	if !e.FullSize {
		// Fixed software costs scale with the machine (DESIGN.md §1).
		cfg.MPI = cfg.MPI.Scaled(float64(machine.ScaleFactor))
		cfg.Shmem = cfg.Shmem.Scaled(float64(machine.ScaleFactor))
	}
	if e.MPIBufDepth > 0 {
		cfg.MPI.BufDepth = e.MPIBufDepth
	}
	cfg.MPIOneMessagePerDest = e.MPIOneMessagePerDest

	var res *sorts.Result
	switch {
	case e.Model == Seq:
		if e.Procs != 1 {
			return nil, fmt.Errorf("repro: the sequential baseline needs Procs=1, got %d", e.Procs)
		}
		res, err = sorts.SeqRadix(m, in, cfg)
	case e.Algorithm == Radix && e.Model == CCSAS:
		res, err = sorts.RadixCCSAS(m, in, cfg, false)
	case e.Algorithm == Radix && e.Model == CCSASNew:
		res, err = sorts.RadixCCSAS(m, in, cfg, true)
	case e.Algorithm == Radix && (e.Model == MPI || e.Model == MPISGI):
		res, err = sorts.RadixMPI(m, in, cfg)
	case e.Algorithm == Radix && e.Model == SHMEM:
		res, err = sorts.RadixSHMEM(m, in, cfg)
	case e.Algorithm == Sample && e.Model == CCSAS:
		res, err = sorts.SampleCCSAS(m, in, cfg)
	case e.Algorithm == Sample && (e.Model == MPI || e.Model == MPISGI):
		res, err = sorts.SampleMPI(m, in, cfg)
	case e.Algorithm == Sample && e.Model == SHMEM:
		res, err = sorts.SampleSHMEM(m, in, cfg)
	case e.Algorithm == Psrs && e.Model == CCSAS:
		res, err = sorts.PsrsCCSAS(m, in, cfg)
	case e.Algorithm == Psrs && (e.Model == MPI || e.Model == MPISGI):
		res, err = sorts.PsrsMPI(m, in, cfg)
	case e.Algorithm == Psrs && e.Model == SHMEM:
		res, err = sorts.PsrsSHMEM(m, in, cfg)
	default:
		return nil, fmt.Errorf("repro: no program for algorithm %q under model %q", e.Algorithm, e.Model)
	}
	if err != nil {
		return nil, err
	}
	if err := verifySorted(in, res.Sorted); err != nil {
		return nil, fmt.Errorf("repro: %s/%s output invalid: %w", e.Algorithm, e.Model, err)
	}
	if ck := m.Checker(); ck != nil {
		if cerr := ck.Err(); cerr != nil {
			return nil, fmt.Errorf("repro: paranoid run of %s detected model violations: %w", e.Label(), cerr)
		}
	}
	if tr := res.Run.Trace; tr != nil {
		tr.Label = e.Label()
		// Receive balance of the main redistribution (RecvCounts): how
		// evenly the splitter-directed exchange (sample/PSRS) or the
		// blocked exchange (radix) spread the keys. partition.imbalance
		// is max/mean; 1.0 is perfectly flat.
		if len(res.RecvCounts) > 0 {
			maxKeys, sum := 0, 0
			for _, c := range res.RecvCounts {
				sum += c
				if c > maxKeys {
					maxKeys = c
				}
			}
			mean := float64(sum) / float64(len(res.RecvCounts))
			tr.AddMetric("partition.max_keys", float64(maxKeys))
			tr.AddMetric("partition.mean_keys", mean)
			if mean > 0 {
				tr.AddMetric("partition.imbalance", float64(maxKeys)/mean)
			} else {
				tr.AddMetric("partition.imbalance", 0)
			}
		}
	}
	// Return the machine's slab arena to the process-wide pool so the
	// next grid cell reuses it. Sorted aliases arena memory — detach it
	// first so the Outcome outlives the release.
	sorted := make([]uint32, len(res.Sorted))
	copy(sorted, res.Sorted)
	res.Sorted = sorted
	m.Release()
	return &Outcome{Experiment: e, Result: res, TimeNs: res.TimeNs(), Verified: true}, nil
}

// verifySorted checks out is an ascending permutation of in, in O(n)
// using a counting comparison over 16-bit halves.
func verifySorted(in, out []uint32) error {
	if len(in) != len(out) {
		return fmt.Errorf("length %d, want %d", len(out), len(in))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			return fmt.Errorf("not ascending at index %d: %d > %d", i, out[i-1], out[i])
		}
	}
	// Permutation check: XOR/sum fingerprints over the multiset.
	var sumIn, sumOut uint64
	var xorIn, xorOut uint32
	for i := range in {
		sumIn += uint64(in[i])
		xorIn ^= in[i] * 2654435761
		sumOut += uint64(out[i])
		xorOut ^= out[i] * 2654435761
	}
	if sumIn != sumOut || xorIn != xorOut {
		return fmt.Errorf("output is not a permutation of the input")
	}
	return nil
}
