package repro

// Regression tests for the long-lived-server hardening fixes: the
// poisoned baseline error cache, the panic deadlock in the cell
// scheduler, and the unbounded harness trace buffer. Each test fails
// against the pre-fix code (stale error forever / hang / growth) and
// pins the fixed behavior at serial and parallel settings.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/keys"
)

// TestBaselineErrorNotCached: a failed sequential baseline must not
// poison its singleflight slot — the first call reports the injected
// error, the second call re-attempts and succeeds.
func TestBaselineErrorNotCached(t *testing.T) {
	injected := errors.New("injected baseline failure")
	h := NewHarness(Options{})
	failures := 1
	h.runBaseline = func(e Experiment) (*Outcome, error) {
		if failures > 0 {
			failures--
			return nil, injected
		}
		return Run(e)
	}
	if _, err := h.BaselineTime(1<<12, keys.Gauss); !errors.Is(err, injected) {
		t.Fatalf("first BaselineTime error = %v, want the injected failure", err)
	}
	if len(h.baseline) != 0 {
		t.Fatalf("failed baseline left %d poisoned cache entries", len(h.baseline))
	}
	v, err := h.BaselineTime(1<<12, keys.Gauss)
	if err != nil {
		t.Fatalf("second BaselineTime still fails: %v (the error was cached)", err)
	}
	if v <= 0 {
		t.Fatalf("second BaselineTime = %v, want a positive time", v)
	}
	// And the success is cached normally: no further run.
	h.runBaseline = func(Experiment) (*Outcome, error) {
		t.Error("cached success was recomputed")
		return nil, errors.New("unreachable")
	}
	if v2, err := h.BaselineTime(1<<12, keys.Gauss); err != nil || v2 != v {
		t.Fatalf("third BaselineTime = %v, %v; want cached %v", v2, err, v)
	}
}

// TestBaselineErrorConcurrentRetry: every waiter of a failed flight
// sees the error, and the key stays retryable under concurrency.
func TestBaselineErrorConcurrentRetry(t *testing.T) {
	injected := errors.New("injected baseline failure")
	h := NewHarness(Options{})
	var mu sync.Mutex
	failures := 1
	h.runBaseline = func(e Experiment) (*Outcome, error) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			return nil, injected
		}
		return Run(e)
	}
	const workers = 8
	var wg sync.WaitGroup
	sawErr := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := h.BaselineTime(1<<12, keys.Gauss); err != nil {
				if !errors.Is(err, injected) {
					t.Errorf("worker %d: unexpected error %v", w, err)
				}
				sawErr[w] = true
			}
		}(w)
	}
	wg.Wait()
	// However the flights interleaved, a retry after the dust settles
	// must succeed.
	if _, err := h.BaselineTime(1<<12, keys.Gauss); err != nil {
		t.Fatalf("BaselineTime still failing after all workers done: %v", err)
	}
	if len(h.baseline) != 1 {
		t.Errorf("baseline cache holds %d entries, want 1 (the final success)", len(h.baseline))
	}
}

// panicErrorFrom digs the *PanicError out of an error.
func panicErrorFrom(t *testing.T, err error) *PanicError {
	t.Helper()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PanicError", err, err)
	}
	return pe
}

// TestForEachIndexPanicNoDeadlock is the deadlock regression: a body
// that panics must come back as a structured error at 1 and 8 workers —
// before the fix the panicking worker died, the submit loop blocked
// forever on the work channel, and this test hung.
func TestForEachIndexPanicNoDeadlock(t *testing.T) {
	for _, par := range []int{1, 8} {
		par := par
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			const n = 64
			ran := make([]bool, n)
			done := make(chan []*PanicError, 1)
			go func() {
				done <- ForEachIndex(par, n, func(i int) {
					ran[i] = true
					if i == 5 || i == 23 {
						panic(fmt.Sprintf("cell %d exploded", i))
					}
				})
			}()
			var panics []*PanicError
			select {
			case panics = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("ForEachIndex deadlocked on a panicking body")
			}
			if len(panics) != 2 {
				t.Fatalf("got %d panic errors, want 2: %v", len(panics), panics)
			}
			// Sorted by cell index, each carrying value and stack.
			for i, want := range []int{5, 23} {
				pe := panics[i]
				if pe.Index != want {
					t.Errorf("panic %d has index %d, want %d", i, pe.Index, want)
				}
				if !strings.Contains(pe.Error(), fmt.Sprintf("cell %d exploded", want)) {
					t.Errorf("panic error lost its value: %v", pe.Error())
				}
				if !strings.Contains(pe.Error(), "bugfix_test.go") {
					t.Errorf("panic error carries no useful stack: %v", pe.Error())
				}
			}
			// Every other cell still ran: the pool survived the panics.
			for i, ok := range ran {
				if !ok {
					t.Errorf("cell %d never ran after an earlier panic", i)
				}
			}
		})
	}
}

// TestRunGridPanicStructuredError: a panic inside a harness grid cell
// (injected via the baseline hook) surfaces as that cell's error from
// the figure driver instead of hanging or unwinding, at -j 1 and -j 8.
func TestRunGridPanicStructuredError(t *testing.T) {
	for _, par := range []int{1, 8} {
		h := NewHarness(Options{Sizes: SizeClasses[:1], Procs: []int{4}, Parallelism: par})
		h.runBaseline = func(Experiment) (*Outcome, error) { panic("baseline exploded") }
		done := make(chan error, 1)
		go func() {
			_, _, err := h.Table1()
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("par=%d: Table1 with panicking cell returned nil error", par)
			}
			pe := panicErrorFrom(t, err)
			if pe.Index != 0 || !strings.Contains(pe.Error(), "baseline exploded") {
				t.Errorf("par=%d: panic error = index %d, %q", par, pe.Index, pe.Error())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("par=%d: Table1 deadlocked on a panicking cell", par)
		}
	}
}

// TestRunEachPerCellErrors: RunEach reports each cell's own fate with
// no first-error-wins collapse, in input order.
func TestRunEachPerCellErrors(t *testing.T) {
	exps := []Experiment{
		{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4},
		{Algorithm: Radix, Model: SHMEM, N: -1, Procs: 4},       // invalid N
		{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 2},
		{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: 30}, // invalid radix
	}
	for _, par := range []int{1, 8} {
		outs, errs := RunEach(par, exps)
		if len(outs) != len(exps) || len(errs) != len(exps) {
			t.Fatalf("par=%d: got %d outs / %d errs for %d cells", par, len(outs), len(errs), len(exps))
		}
		for _, i := range []int{0, 2} {
			if errs[i] != nil || outs[i] == nil {
				t.Errorf("par=%d: valid cell %d: out=%v err=%v", par, i, outs[i], errs[i])
			}
		}
		for i, want := range map[int]string{1: "N must be positive", 3: "Radix must be in"} {
			if outs[i] != nil || errs[i] == nil || !strings.Contains(errs[i].Error(), want) {
				t.Errorf("par=%d: invalid cell %d: out=%v err=%v", par, i, outs[i], errs[i])
			}
		}
	}
}

// TestGridEarliestCellOrderErrorWins pins runGrid's multi-error rule:
// the earliest failing cell in CELL order wins even when a later cell's
// failure completes first in wall-clock. Cell 0 is a baseline that
// fails slowly (injected); cell 1 is an experiment cell that fails
// validation instantly.
func TestGridEarliestCellOrderErrorWins(t *testing.T) {
	errSlow := errors.New("slow early failure")
	for _, par := range []int{1, 8} {
		h := NewHarness(Options{Parallelism: par})
		h.runBaseline = func(Experiment) (*Outcome, error) {
			time.Sleep(100 * time.Millisecond)
			return nil, errSlow
		}
		cells := []gridCell{
			baselineCell(1<<12, keys.Gauss),
			expCell(Experiment{Algorithm: Radix, Model: SHMEM, N: -1, Procs: 4}),
		}
		_, err := h.runGrid(cells)
		if !errors.Is(err, errSlow) {
			t.Errorf("par=%d: runGrid error = %v, want the slow cell-0 failure (cell order, not completion order)", par, err)
		}
	}
}

// TestGridInterleaveDeterministic: baseline and experiment cells
// interleave in exact submission order in the result slice, with equal
// values at -j 1 and -j 8.
func TestGridInterleaveDeterministic(t *testing.T) {
	build := func() []gridCell {
		return []gridCell{
			baselineCell(1<<12, keys.Gauss),
			expCell(Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: 8}),
			baselineCell(1<<13, keys.Gauss),
			expCell(Experiment{Algorithm: Sample, Model: CCSAS, N: 1 << 13, Procs: 4, Radix: 8}),
			baselineCell(1<<12, keys.Gauss), // repeat: singleflight, same value
		}
	}
	type snap struct {
		base float64
		time float64
	}
	run := func(par int) []snap {
		h := NewHarness(Options{Parallelism: par})
		res, err := h.runGrid(build())
		if err != nil {
			t.Fatal(err)
		}
		var out []snap
		for i, r := range res {
			s := snap{base: r.base}
			if r.out != nil {
				s.time = r.out.TimeNs
			}
			// Cell parity: even indexes are baselines, odd are experiments.
			if i%2 == 0 && (r.base <= 0 || r.out != nil) {
				t.Errorf("par=%d cell %d: want baseline result, got %+v", par, i, r)
			}
			if i%2 == 1 && (r.out == nil || r.base != 0) {
				t.Errorf("par=%d cell %d: want experiment result, got %+v", par, i, r)
			}
			out = append(out, s)
		}
		if res[0].base != res[4].base {
			t.Errorf("par=%d: repeated baseline cells disagree: %v vs %v", par, res[0].base, res[4].base)
		}
		return out
	}
	j1 := run(1)
	j8 := run(8)
	for i := range j1 {
		if j1[i] != j8[i] {
			t.Errorf("cell %d differs between -j 1 and -j 8: %+v vs %+v", i, j1[i], j8[i])
		}
	}
}

// TestTakeTracesDrains pins the trace-buffer ownership rule: TakeTraces
// hands each buffered trace out exactly once and clears the buffer, so
// a long-lived process can run traced cells forever in bounded memory;
// Traces keeps observing whatever is still buffered.
func TestTakeTracesDrains(t *testing.T) {
	h := NewHarness(Options{})
	e := Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: 8, Trace: true}
	if _, err := h.RunExperiment(e); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Traces()); got != 1 {
		t.Fatalf("after one traced run, Traces() has %d entries, want 1", got)
	}
	taken := h.TakeTraces()
	if len(taken) != 1 || taken[0] == nil {
		t.Fatalf("TakeTraces returned %d traces, want 1", len(taken))
	}
	if got := len(h.Traces()); got != 0 {
		t.Errorf("after drain, Traces() still sees %d entries", got)
	}
	if again := h.TakeTraces(); len(again) != 0 {
		t.Errorf("second TakeTraces returned %d traces, want 0", len(again))
	}
	// New runs refill the (drained) buffer.
	if _, err := h.RunExperiment(e); err != nil {
		t.Fatal(err)
	}
	if got := len(h.TakeTraces()); got != 1 {
		t.Errorf("buffer did not refill after drain: %d", got)
	}
}

// TestRunExperimentHonorsRequestFields: unlike the figure drivers,
// RunExperiment must run the experiment exactly as given — its own
// Seed, not the harness Options' — while still counting Stats.
func TestRunExperimentHonorsRequestFields(t *testing.T) {
	h := NewHarness(Options{Seed: 999})
	e := Experiment{Algorithm: Radix, Model: SHMEM, N: 1 << 12, Procs: 4, Radix: 8, Seed: 7}
	got, err := h.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeNs != want.TimeNs {
		t.Errorf("RunExperiment TimeNs %v != direct Run %v (harness overrode the seed?)", got.TimeNs, want.TimeNs)
	}
	if got.Experiment.Seed != 7 {
		t.Errorf("outcome seed = %d, want the request's 7", got.Experiment.Seed)
	}
	st := h.Stats()
	if st.Runs != 1 || st.SimNs != got.TimeNs {
		t.Errorf("Stats = %+v, want 1 run of %v ns", st, got.TimeNs)
	}
}
